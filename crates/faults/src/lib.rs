//! Deterministic fault injection for tenblock's disk touchpoints.
//!
//! Every out-of-core path (tile stores, serve spill, plan cache, bench
//! records) threads a [`FaultPolicy`] through its reads, writes, renames,
//! and syncs. The default policy is a no-op costing one `Option` check
//! per operation; a seeded policy makes a chosen operation class fail
//! with a chosen errno, deliver a short read, flip a byte, or simulate a
//! process crash (everything after the trigger point fails, and cleanup
//! that a dead process could not have run is skipped) at the Nth
//! matching operation. Equal seeds and triggers reproduce the exact same
//! failure, the same way `crates/fuzz` reproduces a case from its seed —
//! `tenblock chaos` drives a pinned matrix of these policies and asserts
//! recovery.
//!
//! The crate is zero-dependency and knows nothing about tensors: it
//! decides *what happens to an I/O operation*, and the callers own how
//! to apply that decision to their file handles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The operation classes a policy can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Reading payload bytes from an existing file.
    Read,
    /// Writing payload bytes to a file.
    Write,
    /// Renaming a file (the commit point of an atomic write).
    Rename,
    /// `sync_all` on a file or directory handle.
    Sync,
}

impl FaultOp {
    /// Stable name used by the chaos matrix and scenario reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Rename => "rename",
            FaultOp::Sync => "sync",
        }
    }
}

/// What happens when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with this raw OS errno (e.g. 5 = `EIO`,
    /// 28 = `ENOSPC`, 4 = `EINTR`).
    Errno(i32),
    /// Deliver only a seeded prefix of the requested bytes. Readers see
    /// the `UnexpectedEof` a truncated file would produce; writers
    /// accept a partial chunk (their `write_all` loop continues).
    ShortRead,
    /// Corrupt one byte at a seeded offset within the buffer.
    FlipByte,
    /// Simulate a crash: a seeded prefix of the triggering write lands,
    /// then every subsequent operation fails and [`FaultPolicy::crashed`]
    /// reports `true` so callers skip cleanup a dead process could not
    /// have run.
    Crash,
}

impl FaultAction {
    /// Stable name used by the chaos matrix and scenario reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Errno(_) => "errno",
            FaultAction::ShortRead => "short-read",
            FaultAction::FlipByte => "flip-byte",
            FaultAction::Crash => "crash",
        }
    }
}

/// When the fault fires, counted over operations matching the policy's
/// [`FaultOp`] (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly at matching operation `n`.
    Nth(u64),
    /// Fire at every `n`th matching operation (`n >= 1`).
    EveryNth(u64),
}

/// The decision for one I/O operation. Callers apply it to their own
/// file handle.
#[derive(Debug)]
pub enum IoOutcome {
    /// Perform the operation normally.
    Ok,
    /// Deliver/accept only the first `n` bytes (`n < len`).
    Short(usize),
    /// Perform the operation but flip the byte at this buffer offset.
    Corrupt(usize),
    /// Fail with this error without touching the file.
    Err(std::io::Error),
}

#[derive(Debug)]
struct Inner {
    op: FaultOp,
    action: FaultAction,
    trigger: Trigger,
    /// `Some(k)`: the fault heals after firing `k` times (transient);
    /// `None`: it fires forever once (or whenever) triggered.
    heals_after: Option<u64>,
    seed: u64,
    /// Matching operations observed so far.
    counter: AtomicU64,
    /// Faults actually fired so far.
    fired: AtomicU64,
    crashed: AtomicBool,
}

/// A seeded, deterministic fault policy. Cheap to clone (an `Arc`);
/// [`FaultPolicy::none`] is a no-op and allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy(Option<Arc<Inner>>);

impl FaultPolicy {
    /// The no-op policy: every operation proceeds normally.
    pub fn none() -> Self {
        FaultPolicy(None)
    }

    /// A permanent fault: once `trigger` fires, `action` applies (and for
    /// [`Trigger::Nth`] keeps applying only at that one operation;
    /// [`FaultAction::Crash`] always persists).
    pub fn new(op: FaultOp, action: FaultAction, trigger: Trigger, seed: u64) -> Self {
        FaultPolicy(Some(Arc::new(Inner {
            op,
            action,
            trigger,
            heals_after: None,
            seed,
            counter: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })))
    }

    /// A transient fault: fires at most `heals_after` times, then the
    /// site behaves normally — the shape a retry loop must survive.
    pub fn transient(
        op: FaultOp,
        action: FaultAction,
        trigger: Trigger,
        seed: u64,
        heals_after: u64,
    ) -> Self {
        FaultPolicy(Some(Arc::new(Inner {
            op,
            action,
            trigger,
            heals_after: Some(heals_after),
            seed,
            counter: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        })))
    }

    /// Whether this is the allocation-free no-op policy.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Whether a simulated crash has occurred. Callers skip temp-file
    /// cleanup when true — a dead process could not have run it.
    pub fn crashed(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|i| i.crashed.load(Ordering::Acquire))
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.fired.load(Ordering::Relaxed))
    }

    /// Decides the fate of one operation of class `op` touching `len`
    /// bytes (0 for renames/syncs). Deterministic in (seed, operation
    /// index); thread-safe.
    pub fn before(&self, op: FaultOp, len: usize) -> IoOutcome {
        let Some(inner) = self.0.as_ref() else {
            return IoOutcome::Ok;
        };
        if inner.crashed.load(Ordering::Acquire) {
            return IoOutcome::Err(crash_error());
        }
        if op != inner.op {
            return IoOutcome::Ok;
        }
        let n = inner.counter.fetch_add(1, Ordering::AcqRel);
        let fires = match inner.trigger {
            Trigger::Nth(at) => n == at,
            Trigger::EveryNth(every) => every > 0 && (n + 1) % every == 0,
        };
        if !fires {
            return IoOutcome::Ok;
        }
        if let Some(budget) = inner.heals_after {
            if inner.fired.load(Ordering::Acquire) >= budget {
                return IoOutcome::Ok; // healed
            }
        }
        inner.fired.fetch_add(1, Ordering::AcqRel);
        let draw = splitmix64(inner.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match inner.action {
            FaultAction::Errno(errno) => IoOutcome::Err(std::io::Error::from_raw_os_error(errno)),
            FaultAction::ShortRead => {
                if len == 0 {
                    IoOutcome::Err(crash_error())
                } else {
                    IoOutcome::Short((draw % len as u64) as usize)
                }
            }
            FaultAction::FlipByte => {
                if len == 0 {
                    IoOutcome::Err(crash_error())
                } else {
                    IoOutcome::Corrupt((draw % len as u64) as usize)
                }
            }
            FaultAction::Crash => {
                inner.crashed.store(true, Ordering::Release);
                if op == FaultOp::Write && len > 0 {
                    // A seeded prefix of the triggering write lands, then
                    // the "process" is gone.
                    IoOutcome::Short((draw % len as u64) as usize)
                } else {
                    IoOutcome::Err(crash_error())
                }
            }
        }
    }
}

/// The error a simulated crash produces for operations after the
/// trigger point.
pub fn crash_error() -> std::io::Error {
    std::io::Error::other("simulated crash (fault injection)")
}

/// Whether an I/O error is worth retrying: interrupted/timed-out
/// syscalls, not corrupt data or missing files. The shared
/// classification for every retry loop in the workspace.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    ) || matches!(
        e.raw_os_error(),
        Some(4 /* EINTR */) | Some(11 /* EAGAIN */)
    )
}

/// Capped exponential backoff with seeded jitter: delay for attempt `k`
/// is uniform in `[0, min(base << k, cap)]`, so equal seeds replay the
/// same schedule. Yields `None` once `max_retries` attempts are spent.
#[derive(Debug, Clone)]
pub struct Backoff {
    state: u64,
    base: Duration,
    cap: Duration,
    attempt: u32,
    max_retries: u32,
}

impl Backoff {
    /// A seeded schedule of at most `max_retries` delays.
    pub fn new(seed: u64, max_retries: u32, base: Duration, cap: Duration) -> Self {
        Backoff {
            state: seed,
            base,
            cap,
            attempt: 0,
            max_retries,
        }
    }

    /// The sensible default for disk retries: 3 attempts, 1 ms base,
    /// 50 ms cap.
    pub fn for_io(seed: u64) -> Self {
        Backoff::new(seed, 3, Duration::from_millis(1), Duration::from_millis(50))
    }

    /// Next jittered delay, or `None` when the retry budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_retries {
            return None;
        }
        let ceiling = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt += 1;
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let draw = splitmix64(self.state);
        let nanos = ceiling.as_nanos().max(1) as u64;
        Some(Duration::from_nanos(draw % nanos))
    }

    /// Attempts spent so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// One SplitMix64 output for `x` (the same mixer as `crates/fuzz`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_policy_never_interferes() {
        let p = FaultPolicy::none();
        assert!(p.is_noop());
        for op in [
            FaultOp::Read,
            FaultOp::Write,
            FaultOp::Rename,
            FaultOp::Sync,
        ] {
            assert!(matches!(p.before(op, 100), IoOutcome::Ok));
        }
        assert!(!p.crashed());
        assert_eq!(p.fired(), 0);
    }

    #[test]
    fn nth_trigger_fires_once_at_the_right_op() {
        let p = FaultPolicy::new(FaultOp::Write, FaultAction::Errno(5), Trigger::Nth(2), 7);
        assert!(matches!(p.before(FaultOp::Write, 10), IoOutcome::Ok));
        // Non-matching ops don't advance the counter.
        assert!(matches!(p.before(FaultOp::Read, 10), IoOutcome::Ok));
        assert!(matches!(p.before(FaultOp::Write, 10), IoOutcome::Ok));
        match p.before(FaultOp::Write, 10) {
            IoOutcome::Err(e) => assert_eq!(e.raw_os_error(), Some(5)),
            other => panic!("expected errno, got {other:?}"),
        }
        assert!(matches!(p.before(FaultOp::Write, 10), IoOutcome::Ok));
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn every_nth_keeps_firing_until_healed() {
        let p = FaultPolicy::transient(
            FaultOp::Read,
            FaultAction::Errno(4),
            Trigger::EveryNth(2),
            1,
            2,
        );
        let mut errs = 0;
        for _ in 0..10 {
            if let IoOutcome::Err(e) = p.before(FaultOp::Read, 8) {
                assert!(is_transient(&e));
                errs += 1;
            }
        }
        assert_eq!(errs, 2, "fault heals after its budget");
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn short_and_flip_are_seeded_and_bounded() {
        for seed in [1u64, 2, 99] {
            let mk = |action| FaultPolicy::new(FaultOp::Read, action, Trigger::Nth(0), seed);
            let a = mk(FaultAction::ShortRead);
            let b = mk(FaultAction::ShortRead);
            match (a.before(FaultOp::Read, 64), b.before(FaultOp::Read, 64)) {
                (IoOutcome::Short(x), IoOutcome::Short(y)) => {
                    assert_eq!(x, y, "same seed, same cut");
                    assert!(x < 64);
                }
                other => panic!("expected short reads, got {other:?}"),
            }
            let c = mk(FaultAction::FlipByte);
            match c.before(FaultOp::Read, 64) {
                IoOutcome::Corrupt(off) => assert!(off < 64),
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_poisons_everything_after_the_trigger() {
        let p = FaultPolicy::new(FaultOp::Write, FaultAction::Crash, Trigger::Nth(1), 3);
        assert!(matches!(p.before(FaultOp::Write, 16), IoOutcome::Ok));
        assert!(matches!(p.before(FaultOp::Write, 16), IoOutcome::Short(_)));
        assert!(p.crashed());
        for op in [
            FaultOp::Read,
            FaultOp::Write,
            FaultOp::Rename,
            FaultOp::Sync,
        ] {
            assert!(matches!(p.before(op, 16), IoOutcome::Err(_)));
        }
    }

    #[test]
    fn crash_on_rename_fails_before_the_commit_point() {
        let p = FaultPolicy::new(FaultOp::Rename, FaultAction::Crash, Trigger::Nth(0), 3);
        assert!(matches!(p.before(FaultOp::Write, 16), IoOutcome::Ok));
        assert!(matches!(p.before(FaultOp::Rename, 0), IoOutcome::Err(_)));
        assert!(p.crashed());
    }

    #[test]
    fn backoff_is_seeded_capped_and_bounded() {
        let schedule = |seed| {
            let mut b = Backoff::new(seed, 5, Duration::from_millis(1), Duration::from_millis(8));
            let mut out = Vec::new();
            while let Some(d) = b.next_delay() {
                out.push(d);
            }
            out
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "equal seeds replay the same schedule");
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|d| *d <= Duration::from_millis(8)));
        assert_ne!(a, schedule(43));
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&std::io::Error::from_raw_os_error(4)));
        assert!(is_transient(&std::io::Error::from_raw_os_error(11)));
        assert!(is_transient(&std::io::Error::from(
            std::io::ErrorKind::TimedOut
        )));
        assert!(!is_transient(&std::io::Error::from_raw_os_error(5)));
        assert!(!is_transient(&std::io::Error::from_raw_os_error(28)));
        assert!(!is_transient(&crash_error()));
    }
}
