//! Workspace static-analysis driver.
//!
//! v2 of the lint: instead of a line-oriented scan with ad-hoc lexical
//! state, every `.rs` file is lexed once ([`crate::lexer`]), parsed
//! into `fn` items ([`crate::items`]), and linked into a conservative
//! call graph ([`crate::callgraph`]); the rule passes
//! ([`crate::passes`]) run over that shared model. Still zero
//! dependencies — no `syn`, in the spirit of the `shims/` philosophy.
//!
//! Enforced rules:
//!
//! * `no-unwrap` — no `.unwrap()`/`.expect()` in non-test serve/core
//!   code; production paths return typed errors.
//! * `pub-fn-doc` — every `pub fn` in `crates/core` carries a doc
//!   comment.
//! * `no-lock-unwrap` — no `lock().unwrap()` outside the shims; poison
//!   recovery belongs in `sync.rs`.
//! * `panic-reach` — declared boundary roots (ingest parsing, tile
//!   store validation, kernel entries, the serve request loop) must not
//!   transitively reach a panic site; findings carry the witness chain.
//!   Replaces v1's file-scoped `no-panic-ingest`.
//! * `lock-discipline` — no file/socket I/O (direct or transitive)
//!   while a `sync.rs` guard is live; lock order is registry →
//!   scheduler → plan-cache.
//! * `kernel-contract` — every `KernelKind` variant is registered in
//!   `ALL`, named in `as_str`, dispatched in `build_validated`, and its
//!   kernel ships a write-set derivation, an obs span, and a fuzz hook.
//! * `index-overflow` — block-coordinate/tile-extent multiplies in
//!   `crates/tensor` use `checked_mul` or carry a waiver.
//! * `atomic-persist` — persistence modules publish durable files only
//!   through the temp-file + rename protocol (`persist::atomic_write`
//!   / `AtomicFile`); direct `fs::write`/`File::create` is a finding.
//!
//! A finding can be waived in place with a trailing
//! `// lint: allow(<rule>[, <rule>…])` comment; waived findings are
//! reported but do not fail the lint. [`to_json`] renders the stable
//! machine-readable schema, and the baseline helpers ([`baseline_json`],
//! [`parse_baseline_keys`], [`diff_baseline`]) implement the CI gate:
//! new findings fail, disappeared baseline entries warn.

use crate::passes::{self, Workspace};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect()` in non-test serve/core code.
    NoUnwrap,
    /// Every `pub fn` in `crates/core` has a doc comment.
    PubFnDoc,
    /// No `lock().unwrap()` outside the shims.
    NoLockUnwrap,
    /// Boundary roots must not transitively reach a panic site.
    PanicReach,
    /// No I/O under a `sync.rs` guard; global lock order.
    LockDiscipline,
    /// Every `KernelKind` variant fully wired.
    KernelContract,
    /// Coordinate/extent multiplies in `crates/tensor` are checked.
    IndexOverflow,
    /// Durable artifacts are published via temp-file + rename only.
    AtomicPersist,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::NoUnwrap,
        Rule::PubFnDoc,
        Rule::NoLockUnwrap,
        Rule::PanicReach,
        Rule::LockDiscipline,
        Rule::KernelContract,
        Rule::IndexOverflow,
        Rule::AtomicPersist,
    ];

    /// Stable rule name, as used in `lint: allow(...)` waivers and the
    /// JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::PubFnDoc => "pub-fn-doc",
            Rule::NoLockUnwrap => "no-lock-unwrap",
            Rule::PanicReach => "panic-reach",
            Rule::LockDiscipline => "lock-discipline",
            Rule::KernelContract => "kernel-contract",
            Rule::IndexOverflow => "index-overflow",
            Rule::AtomicPersist => "atomic-persist",
        }
    }
}

/// One hop of a call-chain witness (panic-reachability, transitive
/// I/O-under-lock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Qualified function name (`Owner::fn` or free `fn`).
    pub func: String,
    /// File defining the function, workspace-relative.
    pub file: String,
    /// Line of the call into the next hop (last hop: the site itself).
    pub line: usize,
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// File path relative to the linted root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Containing function (qualified), when the finding sits in one.
    pub func: Option<String>,
    /// The offending line (trimmed), or a synthesized description for
    /// structural findings.
    pub excerpt: String,
    /// Witness chain from a boundary root to the site (may be empty).
    pub chain: Vec<ChainHop>,
    /// Whether a `lint: allow(...)` waiver covers this finding.
    pub waived: bool,
}

impl Finding {
    /// Stable identity for baseline matching. Deliberately excludes the
    /// line number so unrelated edits above a legacy finding don't read
    /// as "new finding" in CI.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.rule.name(),
            self.file,
            self.func.as_deref().unwrap_or(""),
            self.excerpt
        )
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            if self.waived { ", waived" } else { "" },
            self.excerpt
        )?;
        if self.chain.len() > 1 {
            for hop in &self.chain {
                write!(f, "\n    via {}:{}: {}", hop.file, hop.line, hop.func)?;
            }
        }
        Ok(())
    }
}

/// Result of a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, waived or not, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings that fail the lint (not waived).
    pub fn failing(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings covered by a waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// Whether the lint passes (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.failing().next().is_none()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} file(s) scanned, {} finding(s) ({} waived)",
            self.files_scanned,
            self.failing().count(),
            self.waived().count()
        )
    }
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// VCS metadata, and hidden directories.
fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints `(path, source)` pairs directly — the testable core of
/// [`lint_workspace`]. Paths should be workspace-relative.
pub fn lint_sources(sources: &[(String, String)]) -> LintReport {
    let ws = Workspace::from_sources(sources);
    let mut findings = Vec::new();
    findings.extend(passes::line_rules::run(&ws));
    findings.extend(passes::panic_reach::run(&ws));
    findings.extend(passes::lock_discipline::run(&ws));
    findings.extend(passes::kernel_contract::run(&ws));
    findings.extend(passes::index_overflow::run(&ws));
    findings.extend(passes::atomic_persist::run(&ws));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    LintReport {
        findings,
        files_scanned: sources.len(),
    }
}

/// Lints every `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut sources = Vec::new();
    for path in rust_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(lint_sources(&sources))
}

// ---------------------------------------------------------------------
// JSON output + baseline gate (hand-rolled: the crate stays
// dependency-free).
// ---------------------------------------------------------------------

/// Escapes a string for JSON.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the stable machine-readable report schema (version 1):
///
/// ```json
/// {"version":1,"files_scanned":N,"findings":[
///   {"rule":"…","path":"…","line":N,"func":"…"|null,"excerpt":"…",
///    "waived":bool,"key":"…","chain":[{"func":"…","path":"…","line":N}]}
/// ]}
/// ```
pub fn to_json(report: &LintReport) -> String {
    let mut out = String::from("{\"version\":1,");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"func\":{},\"excerpt\":\"{}\",\"waived\":{},\"key\":\"{}\",\"chain\":[",
            f.rule.name(),
            esc(&f.file),
            f.line,
            match &f.func {
                Some(n) => format!("\"{}\"", esc(n)),
                None => "null".to_string(),
            },
            esc(&f.excerpt),
            f.waived,
            esc(&f.key()),
        ));
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"func\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                esc(&hop.func),
                esc(&hop.file),
                hop.line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the baseline file for the current report: the keys of every
/// finding (waived ones included — they stay visible until the waiver
/// is removed and the baseline shrunk).
pub fn baseline_json(report: &LintReport) -> String {
    let mut keys: Vec<String> = report.findings.iter().map(|f| f.key()).collect();
    keys.sort();
    keys.dedup();
    let mut out = String::from("{\"version\":1,\"entries\":[");
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n  {{\"key\":\"{}\"}}", esc(k)));
    }
    out.push_str("\n]}\n");
    out
}

/// Extracts the entry keys from a baseline file. Tolerant by design: it
/// scans for `"key":"…"` pairs and un-escapes the values, so hand edits
/// that keep that shape keep working.
pub fn parse_baseline_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = text.as_bytes();
    let needle = b"\"key\"";
    let mut i = 0usize;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        i += needle.len();
        // Skip `:` and whitespace to the opening quote.
        while i < bytes.len() && (bytes[i] as char).is_whitespace() || bytes.get(i) == Some(&b':') {
            i += 1;
        }
        if bytes.get(i) != Some(&b'"') {
            continue;
        }
        i += 1;
        let mut val = String::new();
        while i < bytes.len() {
            match bytes[i] {
                b'"' => break,
                b'\\' => {
                    match bytes.get(i + 1) {
                        Some(b'n') => val.push('\n'),
                        Some(b't') => val.push('\t'),
                        Some(b'r') => val.push('\r'),
                        Some(&c) => val.push(c as char),
                        None => {}
                    }
                    i += 2;
                    continue;
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = &text[i..];
                    let c = s.chars().next().unwrap_or('\u{fffd}');
                    val.push(c);
                    i += c.len_utf8();
                    continue;
                }
            }
        }
        keys.insert(val);
        i += 1;
    }
    keys
}

/// Result of diffing a report against the checked-in baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Unwaived findings not present in the baseline — these fail CI.
    pub new: Vec<Finding>,
    /// Baseline keys no longer matched by any finding — newly fixed;
    /// warn so the baseline gets shrunk.
    pub fixed: Vec<String>,
}

/// Diffs `report` against `baseline` keys.
pub fn diff_baseline(report: &LintReport, baseline: &BTreeSet<String>) -> BaselineDiff {
    let current: BTreeSet<String> = report.findings.iter().map(|f| f.key()).collect();
    BaselineDiff {
        new: report
            .failing()
            .filter(|f| !baseline.contains(&f.key()))
            .cloned()
            .collect(),
        fixed: baseline.difference(&current).cloned().collect(),
    }
}

/// Test helper: builds a [`Workspace`] from `(path, source)` literals.
#[cfg(test)]
pub mod test_util {
    use crate::passes::Workspace;

    /// Builds a workspace from static `(path, source)` pairs.
    pub fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            &files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn report_aggregates_across_passes_in_order() {
        let report = lint_sources(&sources(&[
            (
                "crates/core/src/a.rs",
                "pub fn undocumented(o: Option<u32>) -> u32 { o.unwrap() }\n",
            ),
            (
                "crates/tensor/src/bcoo.rs",
                "fn block_id(a: usize, nb: usize) -> usize { a * nb }\n",
            ),
        ]));
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.name()).collect();
        assert_eq!(rules, vec!["no-unwrap", "pub-fn-doc", "index-overflow"]);
        assert_eq!(report.files_scanned, 2);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_schema_is_stable() {
        let report = lint_sources(&sources(&[(
            "crates/core/src/a.rs",
            "/// D.\npub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
        )]));
        let json = to_json(&report);
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"rule\":\"no-unwrap\""));
        assert!(json.contains("\"path\":\"crates/core/src/a.rs\""));
        assert!(json.contains("\"line\":2"));
        assert!(json.contains("\"func\":\"f\""));
        assert!(json.contains("\"waived\":false"));
        assert!(json.contains("\"chain\":[]"));
        assert!(json.contains("\"key\":\"no-unwrap|crates/core/src/a.rs|f|"));
    }

    #[test]
    fn panic_reach_chain_appears_in_json() {
        let report = lint_sources(&sources(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns(t: &str) -> u32 { helper(t) }\nfn helper(t: &str) -> u32 { t.parse().unwrap() }\n",
        )]));
        let json = to_json(&report);
        assert!(json.contains("\"rule\":\"panic-reach\""));
        assert!(json.contains("\"chain\":[{\"func\":\"read_tns\""));
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let report = lint_sources(&sources(&[(
            "crates/core/src/a.rs",
            "pub fn undocumented() {}\n",
        )]));
        let baseline = parse_baseline_keys(&baseline_json(&report));
        assert_eq!(baseline.len(), 1);
        // Same findings → nothing new, nothing fixed.
        let d = diff_baseline(&report, &baseline);
        assert!(d.new.is_empty() && d.fixed.is_empty());
        // Empty report → baseline entry is newly fixed.
        let clean = lint_sources(&sources(&[("crates/core/src/a.rs", "fn private() {}\n")]));
        let d = diff_baseline(&clean, &baseline);
        assert!(d.new.is_empty());
        assert_eq!(d.fixed.len(), 1);
        // New finding against empty baseline → fails.
        let d = diff_baseline(&report, &BTreeSet::new());
        assert_eq!(d.new.len(), 1);
    }

    #[test]
    fn baseline_key_survives_line_drift() {
        let before = lint_sources(&sources(&[(
            "crates/core/src/a.rs",
            "pub fn undocumented() {}\n",
        )]));
        let after = lint_sources(&sources(&[(
            "crates/core/src/a.rs",
            "// a new comment shifting everything down\n\npub fn undocumented() {}\n",
        )]));
        assert_eq!(before.findings[0].key(), after.findings[0].key());
        assert_ne!(before.findings[0].line, after.findings[0].line);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let keys = parse_baseline_keys("{\"entries\":[{\"key\":\"x\\\"y\"}]}");
        assert!(keys.contains("x\"y"));
    }

    #[test]
    fn waived_finding_does_not_fail() {
        let report = lint_sources(&sources(&[(
            "crates/core/src/a.rs",
            "/// D.\npub fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint: allow(no-unwrap)\n",
        )]));
        assert_eq!(report.findings.len(), 1);
        assert!(report.is_clean());
    }

    #[test]
    fn display_includes_chain_hops() {
        let report = lint_sources(&sources(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns(t: &str) -> u32 { helper(t) }\nfn helper(t: &str) -> u32 { t.parse().unwrap() }\n",
        )]));
        let text = format!("{report}");
        assert!(text.contains("via crates/tensor/src/io.rs"), "{text}");
    }
}
