//! Zero-dependency, line-oriented workspace lint.
//!
//! In the spirit of the `shims/` philosophy (exactly the surface we need,
//! no `syn`), this is a token scan over the workspace's `.rs` files with
//! just enough state to strip strings/comments and to recognize trailing
//! `#[cfg(test)]` modules. Enforced rules:
//!
//! * [`Rule::NoUnwrap`] — no `.unwrap()` / `.expect(` in non-test
//!   `crates/serve` and `crates/core` code; production paths return typed
//!   errors.
//! * [`Rule::PubFnDoc`] — every `pub fn` in `crates/core` carries a doc
//!   comment.
//! * [`Rule::NoLockUnwrap`] — no `lock().unwrap()` outside the shims; a
//!   poisoned lock must be recovered (`unwrap_or_else(|p| p.into_inner())`)
//!   so one panicking thread cannot cascade.
//! * [`Rule::NoPanicIngest`] — no `panic!` / `assert!` / `assert_eq!` /
//!   `assert_ne!` in the input-boundary files (`crates/tensor/src/io.rs`,
//!   `crates/serve/src/proto.rs`): ingest code faces untrusted bytes and
//!   must return typed errors, never abort a worker.
//!
//! A finding can be waived in place with a trailing
//! `// lint: allow(<rule>)` comment; waived findings are reported but do
//! not fail the lint. The scan keeps just enough lexical state across
//! lines (block comments, multi-line strings, raw strings) that literals
//! are never mistaken for code.

use std::io;
use std::path::{Path, PathBuf};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in non-test serve/core code.
    NoUnwrap,
    /// Every `pub fn` in `crates/core` has a doc comment.
    PubFnDoc,
    /// No `lock().unwrap()` outside the shims.
    NoLockUnwrap,
    /// No panicking macros in the input-boundary (ingest) files.
    NoPanicIngest,
}

impl Rule {
    /// Stable rule name, as used in `lint: allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::PubFnDoc => "pub-fn-doc",
            Rule::NoLockUnwrap => "no-lock-unwrap",
            Rule::NoPanicIngest => "no-panic-ingest",
        }
    }
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// File path relative to the linted root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
    /// Whether a `lint: allow(...)` waiver covers this finding.
    pub waived: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            if self.waived { ", waived" } else { "" },
            self.excerpt
        )
    }
}

/// Result of a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, waived or not, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings that fail the lint (not waived).
    pub fn failing(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings covered by a waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// Whether the lint passes (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.failing().next().is_none()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} file(s) scanned, {} finding(s) ({} waived)",
            self.files_scanned,
            self.failing().count(),
            self.waived().count()
        )
    }
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// VCS metadata, and hidden directories.
fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Cross-line lexical state for [`strip_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Lex {
    /// Plain code.
    #[default]
    Code,
    /// Inside a `/* */` block comment.
    BlockComment,
    /// Inside a `"..."` string literal (may span lines).
    Str,
    /// Inside an `r##"..."##` raw string with this many `#`s.
    RawStr(usize),
}

/// If a raw string literal starts at byte `i` (`r"`, `r#"`, `br##"`, …),
/// returns the index of its opening quote and the number of `#`s.
fn raw_string_at(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((j, hashes))
}

/// Strips string literals (keeping quotes), char literals, and comments
/// from one line; `lex` carries block-comment / multi-line-string / raw
/// string state across lines.
fn strip_code(line: &str, lex: &mut Lex) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match *lex {
            Lex::BlockComment => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    *lex = Lex::Code;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Lex::Str => match bytes[i] {
                b'\\' => i += 2, // escape (a trailing \ continues the line)
                b'"' => {
                    out.push('"');
                    *lex = Lex::Code;
                    i += 1;
                }
                _ => i += 1,
            },
            Lex::RawStr(hashes) => {
                let closes = bytes[i] == b'"'
                    && bytes.len() - i > hashes
                    && bytes[i + 1..i + 1 + hashes].iter().all(|&b| b == b'#');
                if closes {
                    out.push('"');
                    *lex = Lex::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            Lex::Code => {
                if let Some((quote, hashes)) = raw_string_at(bytes, i) {
                    out.push('"');
                    *lex = Lex::RawStr(hashes);
                    i = quote + 1;
                    continue;
                }
                match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => break, // line comment
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        *lex = Lex::BlockComment;
                        i += 2;
                    }
                    b'"' => {
                        out.push('"');
                        *lex = Lex::Str;
                        i += 1;
                    }
                    b'\'' if bytes.get(i + 2) == Some(&b'\'') && bytes[i + 1] != b'\\' => {
                        // Simple char literal 'x' (lifetimes lack the closing ').
                        i += 3;
                    }
                    b'\'' if bytes.get(i + 1) == Some(&b'\\') => {
                        // Escaped char literal '\n', '\'', '\\' …
                        i += 2;
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i += 1;
                    }
                    c => {
                        out.push(c as char);
                        i += 1;
                    }
                }
            }
        }
    }
    out
}

/// Extracts waived rule names from a `lint: allow(a, b)` marker, if any.
fn waivers(raw_line: &str) -> Vec<&str> {
    let Some(pos) = raw_line.find("lint: allow(") else {
        return Vec::new();
    };
    let rest = &raw_line[pos + "lint: allow(".len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end].split(',').map(str::trim).collect()
}

/// Per-file lint context derived from its workspace-relative path.
struct FileScope {
    /// Under `shims/` — exempt from every rule.
    in_shims: bool,
    /// Under a `tests/` directory — test code throughout.
    test_file: bool,
    /// Under `crates/serve/src` or `crates/core/src` (no-unwrap scope).
    unwrap_scope: bool,
    /// Under `crates/core/src` (pub-fn-doc scope).
    core_src: bool,
    /// An input-boundary file (no-panic-ingest scope): code that parses
    /// untrusted bytes or dispatches untrusted requests.
    ingest_scope: bool,
}

impl FileScope {
    fn of(rel: &str) -> FileScope {
        let test_file = rel.split('/').any(|c| c == "tests");
        FileScope {
            in_shims: rel.starts_with("shims/"),
            test_file,
            unwrap_scope: rel.starts_with("crates/serve/src") || rel.starts_with("crates/core/src"),
            core_src: rel.starts_with("crates/core/src"),
            ingest_scope: rel == "crates/tensor/src/io.rs" || rel == "crates/serve/src/proto.rs",
        }
    }
}

/// Whether `code` invokes the macro `name` (`name` includes the `!(`):
/// an occurrence not preceded by an identifier character, so `assert!(`
/// does not match inside `debug_assert!(`.
fn calls_macro(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(name) {
        let at = start + pos;
        let preceded = code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        start = at + name.len();
    }
    false
}

/// Whether the raw lines before `idx` document the item at `idx`
/// (a `///` doc comment or `#[doc]`, possibly behind other attributes).
fn has_doc_comment(raw: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw[i].trim();
        if t.starts_with("///") || t.starts_with("#[doc") || t.starts_with("#![doc") {
            return true;
        }
        // Skip other attributes (possibly multi-line: a continuation line
        // ends with `]` or `)]`).
        if t.starts_with("#[") || t.ends_with(")]") || t.ends_with("]") && !t.contains('[') {
            continue;
        }
        return false;
    }
    false
}

/// Lints one file's contents; `rel` is the workspace-relative path.
fn lint_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let scope = FileScope::of(rel);
    if scope.in_shims {
        return;
    }
    let raw: Vec<&str> = text.lines().collect();

    let mut lex = Lex::default();
    let mut depth: i64 = 0;
    let mut cfg_test_pending = false;
    let mut test_depth: Option<i64> = None;

    for (idx, raw_line) in raw.iter().enumerate() {
        let code = strip_code(raw_line, &mut lex);
        let trimmed = code.trim();

        // --- test-region tracking: a `#[cfg(test)]` item (the trailing
        // `mod tests` convention) opens a region that ends when its brace
        // closes.
        let depth_before = depth;
        depth += code.matches('{').count() as i64;
        depth -= code.matches('}').count() as i64;
        if raw_line.trim().starts_with("#[cfg(test)]") {
            cfg_test_pending = true;
        } else if cfg_test_pending && code.contains('{') {
            test_depth = Some(depth_before);
            cfg_test_pending = false;
        }
        let in_test = scope.test_file || test_depth.is_some();

        let waived_rules = waivers(raw_line);
        let mut push = |rule: Rule| {
            findings.push(Finding {
                rule,
                file: rel.to_string(),
                line: idx + 1,
                excerpt: raw_line.trim().chars().take(120).collect(),
                waived: waived_rules.contains(&rule.name()),
            });
        };

        if !in_test {
            if scope.unwrap_scope && (code.contains(".unwrap()") || code.contains(".expect(")) {
                push(Rule::NoUnwrap);
            }
            if code.contains("lock().unwrap()") {
                push(Rule::NoLockUnwrap);
            }
            if scope.core_src && trimmed.starts_with("pub fn ") && !has_doc_comment(&raw, idx) {
                push(Rule::PubFnDoc);
            }
            if scope.ingest_scope
                && ["panic!(", "assert!(", "assert_eq!(", "assert_ne!("]
                    .iter()
                    .any(|m| calls_macro(&code, m))
            {
                push(Rule::NoPanicIngest);
            }
        }

        if let Some(d) = test_depth {
            if depth <= d {
                test_depth = None;
            }
        }
    }
}

/// Lints every `.rs` file under `root` (the workspace directory).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        lint_file(&rel, &text, &mut report.findings);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        lint_file(rel, text, &mut findings);
        findings
    }

    #[test]
    fn unwrap_flagged_only_in_scoped_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/serve/src/a.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/a.rs", src).len(), 1);
        assert!(lint_source("crates/tensor/src/a.rs", src).is_empty());
        assert!(lint_source("src/cli.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or_else(|p| p.into_inner()); y.unwrap_or(0); }\n";
        assert!(lint_source("crates/serve/src/a.rs", src).is_empty());
    }

    #[test]
    fn expect_is_flagged_but_expect_err_is_not() {
        let hit = lint_source("crates/serve/src/a.rs", "fn f() { x.expect(\"msg\"); }\n");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, Rule::NoUnwrap);
        let ok = lint_source("crates/serve/src/a.rs", "fn f() { x.expect_err(\"m\"); }\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn g() { x.unwrap(); let _ = m.lock().unwrap(); }\n\
                   }\n";
        assert!(lint_source("crates/serve/src/a.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_back_in_scope() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn g() { x.unwrap(); }\n\
                   }\n\
                   fn f() { y.unwrap(); }\n";
        let findings = lint_source("crates/serve/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn tests_directories_are_exempt() {
        let src = "fn f() { x.unwrap(); m.lock().unwrap(); }\n";
        assert!(lint_source("tests/a.rs", src).is_empty());
        assert!(lint_source("crates/serve/tests/a.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap() in comment\n\
                   /* lock().unwrap() in block\n\
                   still comment .unwrap()\n\
                   */ fn g() {}\n";
        assert!(lint_source("crates/serve/src/a.rs", src).is_empty());
    }

    #[test]
    fn multiline_string_literals_are_not_scanned_as_code() {
        // The forbidden pattern sits inside a string spanning three lines
        // (like the CLI's USAGE const).
        let src = "const HELP: &str =\n\
                   \"first line\n\
                   mentions lock().unwrap() here\n\
                   and x.unwrap() too\";\n\
                   fn f() {}\n";
        assert!(lint_source("crates/serve/src/a.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_with_braces_do_not_break_test_tracking() {
        // Braces and quotes inside an r#"..."# literal must not skew the
        // brace depth that scopes the trailing test module.
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn g() { let t = r#\"{\"a\":\"}}}\",\"b\":1}\"#; }\n\
                   fn h() { x.unwrap(); }\n\
                   }\n";
        assert!(lint_source("crates/serve/src/a.rs", src).is_empty());
    }

    #[test]
    fn lock_unwrap_flagged_everywhere_but_shims() {
        let src = "fn f() { let g = m.lock().unwrap(); }\n";
        let f = lint_source("crates/obs/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoLockUnwrap);
        assert!(lint_source("shims/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn pub_fn_without_doc_flagged_in_core_only() {
        let undocumented = "pub fn naked() {}\n";
        let f = lint_source("crates/core/src/kernel.rs", undocumented);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PubFnDoc);
        assert!(lint_source("crates/serve/src/a.rs", undocumented).is_empty());

        let documented = "/// Does things.\npub fn clothed() {}\n";
        assert!(lint_source("crates/core/src/kernel.rs", documented).is_empty());
        let attr_between = "/// Doc.\n#[inline]\npub fn fast() {}\n";
        assert!(lint_source("crates/core/src/kernel.rs", attr_between).is_empty());
    }

    #[test]
    fn panics_flagged_only_in_ingest_files() {
        let src = "fn f(n: usize) { assert!(n > 0); panic!(\"no\"); }\n";
        let f = lint_source("crates/tensor/src/io.rs", src);
        assert_eq!(f.len(), 1, "one finding per offending line");
        assert_eq!(f[0].rule, Rule::NoPanicIngest);
        assert_eq!(lint_source("crates/serve/src/proto.rs", src).len(), 1);
        // Panicking constructors elsewhere are a different rule's business.
        assert!(lint_source("crates/tensor/src/coo.rs", src).is_empty());
        assert!(lint_source("crates/serve/src/registry.rs", src).is_empty());
    }

    #[test]
    fn ingest_rule_ignores_tests_debug_asserts_and_waived_lines() {
        let in_tests = "fn f() {}\n\
                        #[cfg(test)]\n\
                        mod tests {\n\
                        fn g() { assert_eq!(1, 1); panic!(\"boom\"); }\n\
                        }\n";
        assert!(lint_source("crates/tensor/src/io.rs", in_tests).is_empty());
        let debug = "fn f(n: usize) { debug_assert!(n > 0); }\n";
        assert!(lint_source("crates/tensor/src/io.rs", debug).is_empty());
        let waived =
            "fn f() { assert_ne!(a, b); } // checked above — lint: allow(no-panic-ingest)\n";
        let f = lint_source("crates/serve/src/proto.rs", waived);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn waiver_marks_finding_without_failing() {
        let src = "fn f() { x.unwrap(); } // invariant: x is Some — lint: allow(no-unwrap)\n";
        let findings = lint_source("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
        let report = LintReport {
            findings,
            files_scanned: 1,
        };
        assert!(report.is_clean());
        assert_eq!(report.waived().count(), 1);
    }

    #[test]
    fn waiver_for_a_different_rule_does_not_apply() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-lock-unwrap)\n";
        let findings = lint_source("crates/core/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].waived);
    }

    #[test]
    fn lint_workspace_walks_and_reports() {
        let dir = std::env::temp_dir().join(format!("tenblock_lint_{}", std::process::id()));
        let serve = dir.join("crates/serve/src");
        std::fs::create_dir_all(&serve).unwrap();
        std::fs::create_dir_all(dir.join("target")).unwrap();
        std::fs::write(serve.join("bad.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        std::fs::write(dir.join("target/skip.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        let report = lint_workspace(&dir).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.failing().count(), 1);
        assert!(report.to_string().contains("crates/serve/src/bad.rs:1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
