//! A lightweight item parser over the token stream: extracts `fn` items
//! with their impl context, visibility, receiver, doc status, and body
//! token range, plus the `#[cfg(test)]` regions that scope every rule.
//!
//! This is not a Rust parser. It walks the token stream once, tracking
//! brace depth and a stack of contexts (`mod`, `impl`, test regions),
//! and records just enough structure for the passes: *who* is this
//! function (name, owning impl type, implemented trait), *where* is it
//! (file line, body token span), and *what scope* is it in (test or
//! production). Everything the passes then do — call extraction, panic
//! sites, guard scopes — reads the recorded body spans.

use crate::lexer::{Token, TokenKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` type the fn sits in, when inside an `impl` block
    /// (`impl Foo { … }` or `impl Trait for Foo { … }` → `Foo`).
    pub owner: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body: `tokens[body.0]` is the opening
    /// `{`, `tokens[body.1]` the matching `}`. Bodiless fns (trait
    /// declarations) are not recorded.
    pub body: (usize, usize),
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Whether the fn is `pub` (any visibility spec counts).
    pub is_pub: bool,
    /// Whether the fn sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Whether a doc comment (or `#[doc]`) immediately precedes it.
    pub has_doc: bool,
}

impl FnItem {
    /// `Owner::name` when owned, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Context pushed for each `{` that opens a tracked construct.
#[derive(Debug, Clone)]
enum Scope {
    /// A brace we don't care about (fn bodies, blocks, match arms…).
    Plain,
    /// An `impl` block: (type, trait).
    Impl(String, Option<String>),
    /// A `#[cfg(test)]`-gated item's brace (mod or fn or impl).
    Test,
}

/// Parses the `fn` items of one file's token stream.
pub fn parse_items(tokens: &[Token]) -> Vec<FnItem> {
    let mut items = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Attribute state, reset at each item keyword: did a `#[cfg(test)]`
    // or a doc comment/`#[doc(...)]` occur since the last item boundary?
    let mut pending_cfg_test = false;
    let mut pending_doc = false;
    let mut pending_pub = false;

    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Doc => {
                pending_doc = true;
                i += 1;
            }
            TokenKind::Punct("#") => {
                // Attribute: #[...] or #![...]; scan the bracket group.
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].kind.is_punct("!") {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].kind.is_punct("[") {
                    let close = match_bracket(tokens, j, "[", "]");
                    let attr = &tokens[j + 1..close.min(tokens.len())];
                    if is_cfg_test(attr) {
                        pending_cfg_test = true;
                    }
                    if attr.first().is_some_and(|t| t.kind.is_ident("doc")) {
                        pending_doc = true;
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            TokenKind::Punct("{") => {
                scopes.push(if pending_cfg_test {
                    Scope::Test
                } else {
                    Scope::Plain
                });
                pending_cfg_test = false;
                pending_doc = false;
                pending_pub = false;
                i += 1;
            }
            TokenKind::Punct("}") => {
                scopes.pop();
                i += 1;
            }
            TokenKind::Ident(word) => match word.as_str() {
                "pub" => {
                    pending_pub = true;
                    // Skip a `pub(crate)`-style restriction group.
                    if tokens.get(i + 1).is_some_and(|t| t.kind.is_punct("(")) {
                        i = match_bracket(tokens, i + 1, "(", ")") + 1;
                    } else {
                        i += 1;
                    }
                }
                "impl" => {
                    let (ty, tr, brace) = parse_impl_header(tokens, i);
                    match brace {
                        Some(b) => {
                            scopes.push(if pending_cfg_test {
                                Scope::Test
                            } else {
                                match ty {
                                    Some(ty) => Scope::Impl(ty, tr),
                                    None => Scope::Plain,
                                }
                            });
                            pending_cfg_test = false;
                            pending_doc = false;
                            pending_pub = false;
                            i = b + 1;
                        }
                        None => i += 1,
                    }
                }
                "fn" => {
                    let in_test = scopes.iter().any(|s| matches!(s, Scope::Test));
                    let (owner, trait_name) = scopes
                        .iter()
                        .rev()
                        .find_map(|s| match s {
                            Scope::Impl(t, tr) => Some((Some(t.clone()), tr.clone())),
                            _ => None,
                        })
                        .unwrap_or((None, None));
                    if let Some(mut item) = parse_fn(tokens, i) {
                        item.owner = owner;
                        item.trait_name = trait_name;
                        item.in_test = in_test || pending_cfg_test;
                        item.is_pub = pending_pub;
                        item.has_doc = pending_doc;
                        let body_open = item.body.0;
                        let has_body = body_open != usize::MAX;
                        if has_body {
                            // The fn body's brace enters the scope stack as
                            // Plain (or Test if the fn itself was gated);
                            // nested fns inside it are still found.
                            scopes.push(if pending_cfg_test || item.in_test {
                                Scope::Test
                            } else {
                                Scope::Plain
                            });
                            items.push(item);
                            i = body_open + 1;
                        } else {
                            // Bodiless declarations (trait requirements)
                            // are still recorded: passes skip them, but
                            // the contract pass can see the trait shape.
                            items.push(item);
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    pending_cfg_test = false;
                    pending_doc = false;
                    pending_pub = false;
                }
                _ => {
                    // Any other item-ish keyword clears the attr state
                    // only when it starts a new line-of-thought; being
                    // conservative, leave doc/cfg pending so attributes
                    // survive `pub const unsafe extern "C" fn`-style
                    // modifier chains.
                    if matches!(
                        word.as_str(),
                        "struct" | "enum" | "trait" | "mod" | "use" | "static" | "type" | "macro"
                    ) {
                        pending_doc = false;
                        // cfg(test) stays pending: it gates the next brace
                        // (e.g. `mod tests {`).
                    }
                    i += 1;
                }
            },
            _ => i += 1,
        }
    }
    items
}

/// Whether attribute tokens (between `[` and `]`) are `cfg(test)` or a
/// `cfg(all(test, …))`-style conjunction mentioning `test`.
fn is_cfg_test(attr: &[Token]) -> bool {
    attr.first().is_some_and(|t| t.kind.is_ident("cfg"))
        && attr.iter().any(|t| t.kind.is_ident("test"))
}

/// Finds the matching close bracket for `tokens[open]`; returns the index
/// of the closer, or `tokens.len()` when unbalanced.
pub fn match_bracket(tokens: &[Token], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind.is_punct(op) {
            depth += 1;
        } else if tokens[i].kind.is_punct(cl) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Parses `impl …` from the `impl` keyword: returns (type, trait, index
/// of the opening `{`). `impl<T> Trait for Type<T> where … {`.
fn parse_impl_header(
    tokens: &[Token],
    at: usize,
) -> (Option<String>, Option<String>, Option<usize>) {
    let mut i = at + 1;
    // Skip generic params.
    if tokens.get(i).is_some_and(|t| t.kind.is_punct("<")) {
        i = skip_angles(tokens, i);
    }
    // Collect path segments until `for`, `where`, or `{`.
    let mut first_path: Option<String> = None; // trait or the type itself
    let mut second_path: Option<String> = None; // type, when `for` appears
    let mut saw_for = false;
    let mut last_ident: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct("{") => {
                let (target, _) = (last_ident.take(), ());
                let path = if saw_for {
                    &mut second_path
                } else {
                    &mut first_path
                };
                if path.is_none() {
                    *path = target;
                }
                let (ty, tr) = if saw_for {
                    (second_path, first_path)
                } else {
                    (first_path, None)
                };
                return (ty, tr, Some(i));
            }
            TokenKind::Punct(";") => return (None, None, None), // impl Trait for Type;
            TokenKind::Ident(w) if w == "for" => {
                if first_path.is_none() {
                    first_path = last_ident.take();
                }
                saw_for = true;
                last_ident = None;
                i += 1;
            }
            TokenKind::Ident(w) if w == "where" => {
                let path = if saw_for {
                    &mut second_path
                } else {
                    &mut first_path
                };
                if path.is_none() {
                    *path = last_ident.take();
                }
                i += 1;
            }
            TokenKind::Ident(w) => {
                last_ident = Some(w.clone());
                i += 1;
            }
            TokenKind::Punct("<") => i = skip_angles(tokens, i),
            _ => i += 1,
        }
    }
    (None, None, None)
}

/// Public alias of [`skip_angles`] for the call-graph's turbofish
/// handling: returns the index just past the `>` closing the group
/// opened at `tokens[at]`.
pub fn match_bracket_angle(tokens: &[Token], at: usize) -> usize {
    skip_angles(tokens, at)
}

/// Skips a `<…>` group starting at `tokens[at]` (a `<`), tolerant of
/// nested angles; returns the index just past the matching `>`.
fn skip_angles(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i64;
    let mut i = at;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct("<") => depth += 1,
            TokenKind::Punct(">") => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // `->` inside fn-pointer types would confuse a naive scan;
            // the merged token dodges it. `>>` lexes as two `>`s. A `{`
            // means we overran (malformed) — bail.
            TokenKind::Punct("{") => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a `fn` at `tokens[at]` (the `fn` keyword). Returns the item with
/// `owner`/`trait_name`/`in_test`/`is_pub`/`has_doc` left default. The
/// body span is `(usize::MAX, usize::MAX)` for bodiless declarations.
fn parse_fn(tokens: &[Token], at: usize) -> Option<FnItem> {
    let name_tok = tokens.get(at + 1)?;
    let name = name_tok.kind.ident()?.to_string();
    let line = tokens[at].line;
    let mut i = at + 2;
    if tokens.get(i).is_some_and(|t| t.kind.is_punct("<")) {
        i = skip_angles(tokens, i);
    }
    if !tokens.get(i).is_some_and(|t| t.kind.is_punct("(")) {
        return None;
    }
    let params_close = match_bracket(tokens, i, "(", ")");
    // Receiver: the first tokens of the params are some prefix of
    // `& 'a mut self` / `mut self` / `self`.
    let mut has_self = false;
    for t in &tokens[i + 1..params_close.min(tokens.len())] {
        match &t.kind {
            TokenKind::Punct("&") | TokenKind::Lifetime(_) => continue,
            TokenKind::Ident(w) if w == "mut" => continue,
            TokenKind::Ident(w) if w == "self" => {
                has_self = true;
                break;
            }
            _ => break,
        }
    }
    // Find the body `{` or a terminating `;` (skipping the return type
    // and where clause; `->` and generic bounds may contain idents but
    // no stray `{` before the body except in `where T: Fn() -> X` —
    // angle groups are skipped, and `Fn() -> impl` braces don't occur in
    // this codebase's signatures).
    let mut j = params_close + 1;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct("{") => {
                let close = match_bracket(tokens, j, "{", "}");
                return Some(FnItem {
                    name,
                    owner: None,
                    trait_name: None,
                    line,
                    body: (j, close),
                    has_self,
                    is_pub: false,
                    in_test: false,
                    has_doc: false,
                });
            }
            TokenKind::Punct(";") => {
                return Some(FnItem {
                    name,
                    owner: None,
                    trait_name: None,
                    line,
                    body: (usize::MAX, usize::MAX),
                    has_self,
                    is_pub: false,
                    in_test: false,
                    has_doc: false,
                })
            }
            TokenKind::Punct("<") => j = skip_angles(tokens, j),
            // An array return type (`-> &[f64; 16]`) contains a `;` that
            // must not read as a bodiless declaration — skip the group.
            TokenKind::Punct("[") => j = match_bracket(tokens, j, "[", "]") + 1,
            TokenKind::Punct("(") => j = match_bracket(tokens, j, "(", ")") + 1,
            _ => j += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn free_and_method_fns() {
        let src = "
            pub fn free(x: u32) -> u32 { x }
            struct S;
            impl S {
                fn method(&self) -> u32 { 1 }
                pub fn assoc() -> S { S }
            }
            impl Clone for S {
                fn clone(&self) -> S { S }
            }
        ";
        let items = items_of(src);
        let names: Vec<String> = items.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "S::method", "S::assoc", "S::clone"]);
        assert!(items[0].is_pub && !items[1].is_pub && items[2].is_pub);
        assert!(!items[0].has_self && items[1].has_self && !items[2].has_self);
        assert_eq!(items[3].trait_name.as_deref(), Some("Clone"));
        assert_eq!(items[1].trait_name, None);
    }

    #[test]
    fn impl_headers_with_generics_and_paths() {
        let src = "
            impl<'m> RowWindow for DenseWindow<'m> {
                fn window(&self, r: usize) -> &[f64] { self.x }
            }
            impl std::fmt::Display for Finding {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            impl<T: Clone> Holder<T> where T: Send {
                fn get(&self) -> T { self.t.clone() }
            }
        ";
        let items = items_of(src);
        assert_eq!(items[0].owner.as_deref(), Some("DenseWindow"));
        assert_eq!(items[0].trait_name.as_deref(), Some("RowWindow"));
        assert_eq!(items[1].owner.as_deref(), Some("Finding"));
        assert_eq!(items[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(items[2].owner.as_deref(), Some("Holder"));
        assert_eq!(items[2].trait_name, None);
    }

    #[test]
    fn cfg_test_regions_scope_items() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            fn prod2() {}
            #[cfg(test)]
            fn gated() {}
        ";
        let items = items_of(src);
        let by_name = |n: &str| items.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("case").in_test);
        assert!(!by_name("prod2").in_test);
        assert!(by_name("gated").in_test);
    }

    #[test]
    fn doc_detection() {
        let src = "
            /// Documented.
            pub fn a() {}
            #[inline]
            /// Documented behind attr.
            pub fn b() {}
            pub fn naked() {}
            #[doc = \"explicit\"]
            pub fn c() {}
        ";
        let items = items_of(src);
        let by_name = |n: &str| items.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("a").has_doc);
        assert!(by_name("b").has_doc);
        assert!(!by_name("naked").has_doc);
        assert!(by_name("c").has_doc);
    }

    #[test]
    fn bodies_span_the_right_tokens() {
        let src = "fn f() { let x = \"}}}\"; g(); } fn g() {}";
        let toks = lex(src);
        let items = parse_items(&toks);
        assert_eq!(items.len(), 2);
        let (open, close) = items[0].body;
        assert!(toks[open].kind.is_punct("{") && toks[close].kind.is_punct("}"));
        // `g` must NOT be inside f's body span bounds incorrectly: check
        // the second item's fn line exists and body is after f's close.
        assert!(items[1].body.0 > close);
        // Trait declarations without bodies are recorded bodiless.
        let decl = items_of("trait T { fn required(&self) -> u32; }");
        assert_eq!(decl.len(), 1);
        assert_eq!(decl[0].body.0, usize::MAX);
    }

    #[test]
    fn nested_fns_are_found() {
        let src = "fn outer() { fn inner() { x.unwrap(); } inner(); }";
        let items = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "inner");
    }

    #[test]
    fn array_return_type_does_not_hide_the_body() {
        // The `;` inside `-> &[f64; 16]` must not read as a bodiless
        // declaration (regression: reg_chunk was invisible to panic-reach).
        let src = "fn reg_chunk(row: &[f64], col: usize) -> &[f64; 16] { row[col..col + 16].try_into().unwrap() }";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_ne!(items[0].body.0, usize::MAX, "body must be found");
        // Same for a `;` hidden in a parenthesized type.
        let items = items_of("fn g() -> ([u8; 4], u32) { h() }");
        assert_eq!(items.len(), 1);
        assert_ne!(items[0].body.0, usize::MAX);
    }

    #[test]
    fn generic_fn_with_where_clause() {
        let src = "pub fn read_file<T: BinCodec, P: AsRef<Path>>(path: P) -> Result<T, BinError> where T: Sized { body() }";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "read_file");
        assert!(items[0].is_pub);
        assert!(!items[0].has_self);
    }
}
