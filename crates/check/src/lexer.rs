//! A token-level Rust lexer shared by every static-analysis pass.
//!
//! The PR 3 lint was line-oriented: each rule re-derived just enough
//! lexical state (strings, comments) to avoid false positives, and the
//! cross-line corner cases — a lifetime `'a` vs a char literal `'}'`,
//! raw-string hashes `r##"..."##`, *nested* block comments — were handled
//! slightly differently in each place. This module lexes a whole file
//! once into a [`Token`] stream with line numbers, and every pass (the
//! ported style rules, panic-reachability, lock-discipline, the kernel
//! contract, index-overflow) consumes the same stream.
//!
//! The lexer is deliberately smaller than rustc's: it does not
//! distinguish keywords from identifiers (passes match on the ident
//! text), merges only the multi-char operators the passes care about
//! (`::`, `->`, `=>`, `..`), and keeps string-literal *content* (the
//! kernel-contract pass matches obs span names like `"mttkrp/BCOO"`).
//! It never errors: unterminated literals lex to end-of-file, because a
//! lint must degrade gracefully on code mid-edit.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token classes relevant to the passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `KernelKind`, …).
    Ident(String),
    /// Lifetime (`'a`, `'static`) — text excludes the quote.
    Lifetime(String),
    /// String literal (plain, raw, byte, or byte-raw); the unescaped-ish
    /// content is kept verbatim as written between the quotes.
    Str(String),
    /// Char or byte-char literal (`'x'`, `b'\n'`); content not kept.
    Char,
    /// Numeric literal, text kept (`0x1f`, `1e-9`, `16usize`).
    Num(String),
    /// Punctuation. Single chars, plus the merged pairs `::`, `->`,
    /// `=>`, `..` (and `..=` lexes as `..` then `=`).
    Punct(&'static str),
    /// A doc comment (`///`, `//!`, `/** */`); content not kept.
    Doc,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// Whether this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == name)
    }
}

/// Punctuation characters emitted as single-char tokens.
const SINGLE: &str = "{}()[]<>,;#!?&|+-*/%^=@.:$'\"\\~";

/// Lexes `text` into tokens. Whitespace and non-doc comments vanish;
/// everything else becomes a [`Token`] carrying its starting line.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        bytes: text.as_bytes(),
        text,
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'t> {
    bytes: &'t [u8],
    text: &'t str,
    i: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'t> Lexer<'t> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b if b.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_string() => {}
                b'b' if self.peek(1) == Some(b'\'') => {
                    // Byte-char literal b'x'.
                    self.i += 1;
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.i += 1;
                    self.string_literal();
                }
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b if b.is_ascii_digit() => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.out.push(Token { kind, line });
    }

    /// Advances past `n` bytes, counting newlines.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.bytes.get(self.i) == Some(&b'\n') {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn line_comment(&mut self) {
        let doc = matches!(self.peek(2), Some(b'/') | Some(b'!'))
            // `////…` dividers are plain comments, not docs.
            && self.peek(3) != Some(b'/');
        let line = self.line;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        if doc {
            self.push(TokenKind::Doc, line);
        }
    }

    /// Block comments nest, per the Rust grammar — the seed lexer got
    /// `/* /* */ */` wrong and resumed code one `*/` early.
    fn block_comment(&mut self) {
        let doc = matches!(self.peek(2), Some(b'*') | Some(b'!')) && self.peek(3) != Some(b'/');
        let line = self.line;
        self.advance(2);
        let mut depth = 1usize;
        while self.i < self.bytes.len() && depth > 0 {
            if self.bytes[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.bytes[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        if doc {
            self.push(TokenKind::Doc, line);
        }
    }

    /// Tries to lex a raw (or byte-raw) string at the cursor; returns
    /// `false` (consuming nothing) if the cursor isn't at one.
    fn raw_string(&mut self) -> bool {
        let mut j = self.i;
        if self.bytes[j] == b'b' {
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'"') {
            return false;
        }
        let line = self.line;
        self.advance(j + 1 - self.i); // past the opening quote
        let start = self.i;
        loop {
            match self.bytes.get(self.i) {
                None => break, // unterminated: content runs to EOF
                Some(b'"') => {
                    let after = &self.bytes[self.i + 1..];
                    if after.len() >= hashes && after[..hashes].iter().all(|&b| b == b'#') {
                        let content = self.text[start..self.i].to_string();
                        self.advance(1 + hashes);
                        self.push(TokenKind::Str(content), line);
                        return true;
                    }
                    self.advance(1);
                }
                _ => self.advance(1),
            }
        }
        let content = self.text[start..].to_string();
        self.push(TokenKind::Str(content), line);
        true
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.advance(1); // opening quote
        let start = self.i;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.advance(2.min(self.bytes.len() - self.i)),
                b'"' => {
                    let content = self.text[start..self.i].to_string();
                    self.advance(1);
                    self.push(TokenKind::Str(content), line);
                    return;
                }
                _ => self.advance(1),
            }
        }
        let content = self.text[start..].to_string();
        self.push(TokenKind::Str(content), line);
    }

    /// A `'` is a lifetime, a char literal, or (after an escape or an
    /// exotic char) still a char literal. The seed scanner disambiguated
    /// per-line and mistook `'}'` for a lifetime when the closing quote
    /// sat on the next line of a multi-byte char; lexing bytes directly
    /// makes the distinction exact:
    ///
    /// * `'` ident-start, then ident chars, **no** closing `'` → lifetime;
    /// * anything else → char literal up to the closing `'`.
    fn quote(&mut self) {
        let line = self.line;
        if let Some(b) = self.peek(1) {
            if (b == b'_' || b.is_ascii_alphabetic()) && self.peek(2) != Some(b'\'') {
                // Lifetime: consume ident chars after the quote.
                self.advance(1);
                let start = self.i;
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.advance(1);
                }
                let name = self.text[start..self.i].to_string();
                self.push(TokenKind::Lifetime(name), line);
                return;
            }
        }
        self.char_literal();
    }

    /// Char literal starting at the cursor's `'`.
    fn char_literal(&mut self) {
        let line = self.line;
        self.advance(1); // opening quote
        if self.peek(0) == Some(b'\\') {
            self.advance(2.min(self.bytes.len() - self.i));
            // Multi-char escapes (\u{..}, \x7f): scan to the close quote.
            while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
                self.advance(1);
            }
            self.advance(1);
        } else {
            // One (possibly multi-byte) char, then the close quote.
            while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
                self.advance(1);
            }
            self.advance(1);
        }
        self.push(TokenKind::Char, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.advance(1);
            } else if b == b'.'
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                && !self.text[start..self.i].contains('.')
            {
                // `1.5` continues the number; `1..n` and `1.method()` don't.
                self.advance(1);
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes.get(self.i - 1), Some(b'e') | Some(b'E'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                // Exponent sign: 1e-9.
                self.advance(1);
            } else {
                break;
            }
        }
        let text = self.text[start..self.i].to_string();
        self.push(TokenKind::Num(text), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.advance(1);
        }
        let text = self.text[start..self.i].to_string();
        self.push(TokenKind::Ident(text), line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let b = self.bytes[self.i];
        let merged: Option<&'static str> = match (b, self.peek(1)) {
            (b':', Some(b':')) => Some("::"),
            (b'-', Some(b'>')) => Some("->"),
            (b'=', Some(b'>')) => Some("=>"),
            (b'.', Some(b'.')) => Some(".."),
            _ => None,
        };
        if let Some(p) = merged {
            self.advance(2);
            self.push(TokenKind::Punct(p), line);
            return;
        }
        self.advance(1);
        let s: &'static str = match b {
            b'{' => "{",
            b'}' => "}",
            b'(' => "(",
            b')' => ")",
            b'[' => "[",
            b']' => "]",
            b'<' => "<",
            b'>' => ">",
            b',' => ",",
            b';' => ";",
            b'#' => "#",
            b'!' => "!",
            b'?' => "?",
            b'&' => "&",
            b'|' => "|",
            b'+' => "+",
            b'-' => "-",
            b'*' => "*",
            b'/' => "/",
            b'%' => "%",
            b'^' => "^",
            b'=' => "=",
            b'@' => "@",
            b'.' => ".",
            b':' => ":",
            b'$' => "$",
            b'~' => "~",
            _ => "?",
        };
        debug_assert!(SINGLE.contains(b as char) || s == "?");
        self.push(TokenKind::Punct(s), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_stream() {
        use TokenKind::*;
        assert_eq!(
            kinds("fn f(x: u32) -> u32 { x.unwrap() }"),
            vec![
                Ident("fn".into()),
                Ident("f".into()),
                Punct("("),
                Ident("x".into()),
                Punct(":"),
                Ident("u32".into()),
                Punct(")"),
                Punct("->"),
                Ident("u32".into()),
                Punct("{"),
                Ident("x".into()),
                Punct("."),
                Ident("unwrap".into()),
                Punct("("),
                Punct(")"),
                Punct("}"),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        // `'a` (lifetime) vs `'a'` (char) vs `'}'` (punct-char literal):
        // the seed lexer's per-line heuristic confused the last two.
        use TokenKind::*;
        assert_eq!(
            kinds("<'a> 'a' '}' '\\'' b'x'"),
            vec![
                Punct("<"),
                Lifetime("a".into()),
                Punct(">"),
                Char,
                Char,
                Char,
                Char
            ]
        );
        // A lifetime in a where-clause followed by code with quotes.
        assert_eq!(
            kinds("impl<'t> X<'t> { }"),
            vec![
                Ident("impl".into()),
                Punct("<"),
                Lifetime("t".into()),
                Punct(">"),
                Ident("X".into()),
                Punct("<"),
                Lifetime("t".into()),
                Punct(">"),
                Punct("{"),
                Punct("}"),
            ]
        );
    }

    #[test]
    fn strings_raw_strings_and_hashes() {
        let toks = lex(r####"let s = r#"inner "quoted" {}"# ; let t = "a\"b";"####);
        let strs: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec!["inner \"quoted\" {}".to_string(), "a\\\"b".into()]
        );
        // Raw string whose content contains a `"#` that must NOT close
        // an `r##`-delimited literal.
        let toks = lex("r##\"has \"# inside\"## trailing");
        assert_eq!(toks[0].kind, TokenKind::Str("has \"# inside".into()));
        assert!(toks[1].kind.is_ident("trailing"));
        // Byte strings and byte-raw strings.
        let toks = lex(r#"b"bytes" br"raw" x"#);
        assert_eq!(toks[0].kind, TokenKind::Str("bytes".into()));
        assert_eq!(toks[1].kind, TokenKind::Str("raw".into()));
        assert!(toks[2].kind.is_ident("x"));
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers() {
        let src = "a\nlet s = r#\"line2\nline3 \"}}{{\"\nline4\"#;\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.kind.is_ident("b")).unwrap();
        assert_eq!(b.line, 5);
        // No brace tokens leaked out of the raw string.
        assert!(!toks.iter().any(|t| t.kind.is_punct("{")));
    }

    #[test]
    fn nested_block_comments() {
        // The unwrap is inside the outer comment even after the inner
        // `*/` — nesting must be honored.
        let src = "/* outer /* inner */ still.unwrap() */ real";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn doc_comments_are_tokens_plain_comments_vanish() {
        let src = "/// docs\n// plain\n//! inner doc\n//// divider\nfn f() {}";
        let toks = lex(src);
        let docs = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Doc))
            .count();
        assert_eq!(docs, 2);
        assert_eq!(toks[0].line, 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        use TokenKind::*;
        assert_eq!(
            kinds("0..n 1.5 0x1f 1e-9 2usize"),
            vec![
                Num("0".into()),
                Punct(".."),
                Ident("n".into()),
                Num("1.5".into()),
                Num("0x1f".into()),
                Num("1e-9".into()),
                Num("2usize".into()),
            ]
        );
    }

    #[test]
    fn merged_punct_and_macro_bang() {
        use TokenKind::*;
        assert_eq!(
            kinds("a::b => c -> d..e panic!(x)"),
            vec![
                Ident("a".into()),
                Punct("::"),
                Ident("b".into()),
                Punct("=>"),
                Ident("c".into()),
                Punct("->"),
                Ident("d".into()),
                Punct(".."),
                Ident("e".into()),
                Ident("panic".into()),
                Punct("!"),
                Punct("("),
                Ident("x".into()),
                Punct(")"),
            ]
        );
    }

    #[test]
    fn macro_bodies_lex_through() {
        // Tokens inside macro invocations are ordinary tokens.
        let src = "assert_eq!(v[0], r#\"x\"#); vec![1, 2]";
        let ids = idents(src);
        assert_eq!(ids, vec!["assert_eq", "v", "vec"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        assert!(!lex("let s = \"never closed").is_empty());
        assert!(!lex("let s = r#\"never closed").is_empty());
        assert!(!lex("let c = '").is_empty());
        // An unterminated comment swallows the rest of the input — no
        // tokens is the correct (non-panicking) outcome.
        assert!(lex("/* never closed").is_empty());
        assert!(!lex("x /* never closed").is_empty());
    }
}
