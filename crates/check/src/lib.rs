//! # tenblock-check
//!
//! Correctness analysis for the tenblock workspace, in three layers:
//!
//! 1. **Write-set race detection** ([`writeset`]): every parallel MTTKRP
//!    task declares the output-row range it owns plus the rows it will
//!    actually touch; [`check_write_sets`] verifies the claims are pairwise
//!    disjoint, jointly cover the output, and that no task writes outside
//!    its claim. Violations come back as a structured [`RaceReport`]
//!    instead of silently corrupt numbers.
//! 2. **Blocking-invariant oracles** ([`oracle`]): pure functions over
//!    plain data validating an MB grid (bounds tile each axis, every
//!    nonzero sits inside exactly one block), a RankB strip plan (strips
//!    tile `[0, rank)`, register chunks never exceed `N_RegB`), and a
//!    tuner output (block counts achievable for the tensor shape).
//! 3. **Workspace lint** ([`lint`]): a zero-dependency, line-oriented lint
//!    enforcing repo rules (no `unwrap()`/`expect()` in non-test serve and
//!    core code, doc comments on core `pub fn`s, no `lock().unwrap()`
//!    outside the shims).
//!
//! The crate has no dependencies (not even on `tenblock-tensor`), so
//! `tenblock-core` can depend on it without a cycle: kernels translate
//! their internal state into the plain-data vocabulary here.

pub mod lint;
pub mod oracle;
pub mod writeset;

pub use lint::{lint_workspace, Finding, LintReport, Rule};
pub use oracle::{
    check_bounds_tiling, check_grid_blocks, check_strip_plan, check_tune_grid, GridBlock,
    OracleError,
};
pub use writeset::{check_write_sets, write_set_violations, RaceReport, Violation, WriteSet};
