//! # tenblock-check
//!
//! Correctness analysis for the tenblock workspace, in three layers:
//!
//! 1. **Write-set race detection** ([`writeset`]): every parallel MTTKRP
//!    task declares the output-row range it owns plus the rows it will
//!    actually touch; [`check_write_sets`] verifies the claims are pairwise
//!    disjoint, jointly cover the output, and that no task writes outside
//!    its claim. Violations come back as a structured [`RaceReport`]
//!    instead of silently corrupt numbers.
//! 2. **Blocking-invariant oracles** ([`oracle`]): pure functions over
//!    plain data validating an MB grid (bounds tile each axis, every
//!    nonzero sits inside exactly one block), a RankB strip plan (strips
//!    tile `[0, rank)`, register chunks never exceed `N_RegB`), and a
//!    tuner output (block counts achievable for the tensor shape).
//! 3. **Workspace lint** ([`lint`]): a zero-dependency static-analysis
//!    framework. A token-level Rust lexer ([`lexer`]) feeds a lightweight
//!    item parser ([`items`]) and a conservative intra-workspace call
//!    graph ([`callgraph`]); rule passes ([`passes`]) run on top of the
//!    shared token streams: the four line-rules ported from v1
//!    (`no-unwrap`, `pub-fn-doc`, `no-lock-unwrap`, `pub-fn-doc`'s scope)
//!    plus panic-reachability with call-chain witnesses, lock-discipline
//!    (no I/O under a `sync.rs` guard, global lock order), kernel-contract
//!    completeness over `KernelKind`, and index-overflow checking in the
//!    tensor crate's block arithmetic.
//!
//! The crate has no dependencies (not even on `tenblock-tensor`), so
//! `tenblock-core` can depend on it without a cycle: kernels translate
//! their internal state into the plain-data vocabulary here.

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod lint;
pub mod oracle;
pub mod passes;
pub mod writeset;

pub use lint::{
    baseline_json, diff_baseline, lint_sources, lint_workspace, parse_baseline_keys, to_json,
    BaselineDiff, ChainHop, Finding, LintReport, Rule,
};
pub use oracle::{
    check_bounds_tiling, check_grid_blocks, check_strip_plan, check_tune_grid, GridBlock,
    OracleError,
};
pub use writeset::{check_write_sets, write_set_violations, RaceReport, Violation, WriteSet};
