//! A conservative intra-workspace call graph over the parsed items.
//!
//! Resolution is name-based and deliberately over-approximate in the
//! directions that matter for the passes:
//!
//! - `foo(` (bare, not preceded by `.` or `::`) resolves to every free
//!   fn named `foo` in the workspace.
//! - `.foo(` (method syntax) resolves to every `self`-receiver method
//!   named `foo` on any impl type in the workspace.
//! - `Type::foo(` resolves *only* within `Type`'s impl blocks when the
//!   workspace defines any method on `Type`; when the qualifier is an
//!   unknown type (e.g. `std::io::Error::new`), the call is external
//!   and resolves to nothing. This keeps `Vec::new(` from aliasing every
//!   `new` in the tree.
//! - `Self::foo(` substitutes the enclosing impl type.
//!
//! Callers iterate edges via [`CallGraph::callees`]; each edge carries
//! the source line of the call site so reachability witnesses can point
//! at real code.

use crate::items::FnItem;
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A function node: index into [`CallGraph::fns`].
pub type FnId = usize;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// The callee function.
    pub callee: FnId,
    /// 1-based source line of the call site (in the caller's file).
    pub line: usize,
}

/// A function known to the graph, with its file of origin.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The parsed item.
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub path: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All known functions.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function.
    edges: Vec<Vec<CallEdge>>,
    /// Free fns by name.
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Self-receiver methods by name.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// All fns by (owner, name) for qualified calls.
    by_owner: BTreeMap<(String, String), Vec<FnId>>,
    /// Every type that has at least one impl in the workspace.
    known_owners: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph from per-file token streams and their items.
    /// `files` pairs a workspace-relative path with its tokens and the
    /// items parsed from exactly those tokens.
    pub fn build(files: &[(String, Vec<Token>, Vec<FnItem>)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (path, _, items) in files {
            for item in items {
                let id = g.fns.len();
                g.fns.push(FnNode {
                    item: item.clone(),
                    path: path.clone(),
                });
                match &item.owner {
                    None => g
                        .free_by_name
                        .entry(item.name.clone())
                        .or_default()
                        .push(id),
                    Some(owner) => {
                        g.known_owners.insert(owner.clone());
                        if item.has_self {
                            g.methods_by_name
                                .entry(item.name.clone())
                                .or_default()
                                .push(id);
                        }
                        g.by_owner
                            .entry((owner.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        g.edges = vec![Vec::new(); g.fns.len()];
        // Second pass: extract call sites from each body and resolve.
        let mut id = 0usize;
        for (_, tokens, items) in files {
            for item in items {
                let calls = extract_calls(tokens, item);
                for c in calls {
                    for callee in g.resolve(&c, item) {
                        if callee != id {
                            g.edges[id].push(CallEdge {
                                callee,
                                line: c.line,
                            });
                        }
                    }
                }
                id += 1;
            }
        }
        g
    }

    /// Outgoing edges of `f`.
    pub fn callees(&self, f: FnId) -> &[CallEdge] {
        &self.edges[f]
    }

    /// Looks up functions by qualified name (`Owner::name` or bare
    /// `name` for free fns), optionally restricted to a path substring.
    pub fn find(&self, qualified: &str, path_contains: Option<&str>) -> Vec<FnId> {
        let (owner, name) = match qualified.split_once("::") {
            Some((o, n)) => (Some(o), n),
            None => (None, qualified),
        };
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.item.name == name)
            .filter(|(_, f)| match owner {
                Some(o) => f.item.owner.as_deref() == Some(o),
                None => f.item.owner.is_none(),
            })
            .filter(|(_, f)| path_contains.is_none_or(|p| f.path.contains(p)))
            .map(|(i, _)| i)
            .collect()
    }

    fn resolve(&self, call: &CallSite, caller: &FnItem) -> Vec<FnId> {
        match &call.kind {
            CallKind::Bare => self
                .free_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or_default(),
            CallKind::Method { on_self } => {
                if COMMON_METHODS.contains(&call.name.as_str()) {
                    // Names shared with std containers (`get`, `insert`,
                    // `len`, …) would alias every workspace type carrying
                    // one. Resolve only the unambiguous shape — a literal
                    // `self.name(…)` inside an impl — to the enclosing
                    // owner's method; any other receiver is presumed to
                    // be a std container and produces no edge.
                    if !on_self {
                        return Vec::new();
                    }
                    match &caller.owner {
                        Some(owner) => self
                            .by_owner
                            .get(&(owner.clone(), call.name.clone()))
                            .cloned()
                            .unwrap_or_default(),
                        None => Vec::new(),
                    }
                } else {
                    self.methods_by_name
                        .get(&call.name)
                        .cloned()
                        .unwrap_or_default()
                }
            }
            CallKind::Qualified(owner) => {
                let owner = if owner == "Self" {
                    match &caller.owner {
                        Some(o) => o.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    owner.clone()
                };
                if self.known_owners.contains(&owner) {
                    self.by_owner
                        .get(&(owner, call.name.clone()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    Vec::new() // external type — not ours to resolve
                }
            }
        }
    }
}

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)`
    Bare,
    /// `.foo(...)`; `on_self` records a literal `self.foo(...)` receiver.
    Method { on_self: bool },
    /// `Owner::foo(...)` (Owner may be `Self`).
    Qualified(String),
}

/// Method names shared with the std containers/iterators. A `.get(` on
/// an arbitrary receiver is far more likely a `HashMap` lookup than a
/// workspace method; resolving it globally manufactures edges between
/// unrelated types. These names resolve only through a literal
/// `self.name(…)` receiver (see [`CallGraph::resolve`]).
const COMMON_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "iter",
    "clear",
    "extend",
    "sort",
    "clone",
    "next",
    "take",
    "replace",
    "find",
    "position",
    "parse",
    "min",
    "max",
    "write",
    "read",
    "lock",
    "join",
    "split",
    "sum",
    "get_or_insert_with",
    "drain",
    "retain",
    // Atomics (`hits.load(Ordering::…)`) alias `Registry::load`; obs
    // `Span::counters` aliases `PlanCache::counters`; nearly every
    // tensor type carries a `dims` accessor.
    "load",
    "store",
    "swap",
    "counters",
    "dims",
];

/// One syntactic call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub kind: CallKind,
    pub line: usize,
}

/// Keywords that look like `ident (` but aren't calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "let", "else", "loop", "fn", "move",
    "ref", "mut", "pub", "use", "where", "impl", "dyn", "box", "await", "unsafe",
];

/// Extracts the call sites in `item`'s body from the file's tokens.
pub fn extract_calls(tokens: &[Token], item: &FnItem) -> Vec<CallSite> {
    let (open, close) = item.body;
    if open == usize::MAX || close >= tokens.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let body = &tokens[open..=close];
    let mut i = 0usize;
    while i + 1 < body.len() {
        let name = match body[i].kind.ident() {
            Some(n) => n,
            None => {
                i += 1;
                continue;
            }
        };
        // Macro invocation `name!(` is not a fn call (handled by panic
        // sites separately); generic turbofish `name::<T>(` is a call.
        let mut j = i + 1;
        if body[j].kind.is_punct("!") {
            i = j + 1;
            continue;
        }
        let qualifier_next = body[j].kind.is_punct("::");
        if qualifier_next {
            // Either `Owner::name(` — we'll pick this up when the cursor
            // reaches the rightmost segment — or turbofish `name::<`.
            if body.get(j + 1).is_some_and(|t| t.kind.is_punct("<")) {
                j += 1; // step onto `::`, then skip the angles
                let rel = crate::items::match_bracket_angle(body, j + 1);
                j = rel;
            } else {
                i += 1;
                continue;
            }
        }
        if !body.get(j).is_some_and(|t| t.kind.is_punct("(")) {
            i += 1;
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }
        // Classify by what precedes the (possibly path-qualified) name.
        let prev = if i == 0 {
            None
        } else {
            Some(&body[i - 1].kind)
        };
        let kind = match prev {
            Some(TokenKind::Punct(".")) => CallKind::Method {
                on_self: i >= 2 && body[i - 2].kind.ident() == Some("self"),
            },
            Some(TokenKind::Punct("::")) => {
                // Walk the path left: the segment immediately left of the
                // final `::` is the owner; longer std paths make the owner
                // that last segment (`std::io::Error::new` → `Error`).
                match body.get(i.wrapping_sub(2)).and_then(|t| t.kind.ident()) {
                    Some(owner) => CallKind::Qualified(owner.to_string()),
                    None => CallKind::Bare, // `::foo(` — crate-root path
                }
            }
            _ => CallKind::Bare,
        };
        out.push(CallSite {
            name: name.to_string(),
            kind,
            line: body[i].line,
        });
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let prepared: Vec<(String, Vec<Token>, Vec<FnItem>)> = files
            .iter()
            .map(|(path, src)| {
                let toks = lex(src);
                let items = parse_items(&toks);
                (path.to_string(), toks, items)
            })
            .collect();
        CallGraph::build(&prepared)
    }

    fn callee_names(g: &CallGraph, from: &str) -> Vec<String> {
        let id = g
            .fns
            .iter()
            .position(|f| f.item.qualified() == from)
            .unwrap_or_else(|| panic!("no fn {from}"));
        let mut names: Vec<String> = g
            .callees(id)
            .iter()
            .map(|e| g.fns[e.callee].item.qualified())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    #[test]
    fn bare_calls_resolve_to_free_fns() {
        let g = graph_of(&[("a.rs", "fn helper() {} fn top() { helper(); missing(); }")]);
        assert_eq!(callee_names(&g, "top"), vec!["helper"]);
    }

    #[test]
    fn method_calls_resolve_to_self_methods() {
        let g = graph_of(&[(
            "a.rs",
            "struct K; impl K { fn run(&self) {} fn assoc() {} }
             fn top(k: &K) { k.run(); K::assoc(); }",
        )]);
        assert_eq!(callee_names(&g, "top"), vec!["K::assoc", "K::run"]);
    }

    #[test]
    fn qualified_calls_do_not_leak_to_unknown_types() {
        // `Vec::new` must not resolve to our `Plan::new`.
        let g = graph_of(&[(
            "a.rs",
            "struct Plan; impl Plan { fn new() -> Plan { Plan } }
             fn top() { let v: Vec<u32> = Vec::new(); let p = Plan::new(); v.len(); drop(p); }",
        )]);
        assert_eq!(callee_names(&g, "top"), vec!["Plan::new"]);
    }

    #[test]
    fn self_qualifier_substitutes_owner() {
        let g = graph_of(&[(
            "a.rs",
            "struct S; impl S { fn a(&self) { Self::b(); } fn b() {} }",
        )]);
        assert_eq!(callee_names(&g, "S::a"), vec!["S::b"]);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let g = graph_of(&[(
            "a.rs",
            "fn log() {} fn top() { println!(\"log()\"); log(); }",
        )]);
        // The `log()` inside the string and the `println!` macro are not
        // edges; the real `log()` call is.
        assert_eq!(callee_names(&g, "top"), vec!["log"]);
    }

    #[test]
    fn cross_file_resolution_through_registry_dispatch() {
        // Mirrors the kernel registry: a trait method dispatched via
        // `.mttkrp(` resolves to every implementor's method.
        let g = graph_of(&[
            (
                "core/kernel.rs",
                "pub trait MttkrpKernel { fn mttkrp(&self); }
                 pub struct CooKernel; impl MttkrpKernel for CooKernel { fn mttkrp(&self) { inner_coo(); } }
                 fn inner_coo() {}",
            ),
            (
                "core/bcoo.rs",
                "pub struct BcooKernel; impl MttkrpKernel for BcooKernel { fn mttkrp(&self) { inner_bcoo(); } }
                 fn inner_bcoo() {}
                 fn dispatch(k: &dyn MttkrpKernel) { k.mttkrp(); }",
            ),
        ]);
        assert_eq!(
            callee_names(&g, "dispatch"),
            vec!["BcooKernel::mttkrp", "CooKernel::mttkrp"]
        );
    }

    #[test]
    fn common_method_names_resolve_only_on_self() {
        // `nd.dims()` on a foreign receiver must NOT produce an edge to
        // some other type's `dims` (regression: CooTensor::decode falsely
        // reached KruskalTensor::dims). `self.dims()` still resolves to
        // the enclosing owner's method.
        let g = graph_of(&[(
            "a.rs",
            "struct Kruskal; impl Kruskal { fn dims(&self) {} }
             struct Nd; impl Nd {
                 fn dims(&self) {}
                 fn decode(&self) { self.dims(); }
             }
             fn top(nd: &Nd) { nd.dims(); }",
        )]);
        assert_eq!(callee_names(&g, "top"), Vec::<String>::new());
        assert_eq!(callee_names(&g, "Nd::decode"), vec!["Nd::dims"]);
    }

    #[test]
    fn turbofish_is_still_a_call() {
        let g = graph_of(&[(
            "a.rs",
            "fn parse_num<T>() -> T { todo!() } fn top() { let _x = parse_num::<u32>(); }",
        )]);
        assert_eq!(callee_names(&g, "top"), vec!["parse_num"]);
    }

    #[test]
    fn find_locates_by_qualified_name_and_path() {
        let g = graph_of(&[
            ("crates/tensor/src/io.rs", "pub fn read_tns() {}"),
            ("crates/serve/src/proto.rs", "pub fn read_tns() {}"),
        ]);
        assert_eq!(g.find("read_tns", None).len(), 2);
        assert_eq!(g.find("read_tns", Some("tensor")).len(), 1);
    }
}
