//! Blocking-invariant oracles: pure checks over plain data.
//!
//! The paper's speedups rest on partitions being *exact*: an MB grid must
//! place every nonzero in exactly one block whose factor-row footprint
//! matches the grid bounds (Section V-A), a RankB strip plan must tile the
//! rank with register chunks no wider than `N_RegB` (Algorithm 2), and a
//! tuned configuration must be achievable for the tensor shape. These
//! functions verify those invariants from first principles, independently of
//! the code that built the structures — `tenblock-core` translates its
//! `BlockGrid`/`TuneResult` internals into the plain slices taken here.

/// A failed oracle check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError {
    /// Which oracle failed (stable identifier, e.g. `"grid-bounds"`).
    pub check: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

impl std::error::Error for OracleError {}

fn fail(check: &'static str, detail: String) -> Result<(), OracleError> {
    Err(OracleError { check, detail })
}

/// Verifies that `bounds` tiles `[0, dim)`: starts at 0, ends at `dim`,
/// and never decreases (empty blocks are legal; reordering is not).
pub fn check_bounds_tiling(axis: usize, bounds: &[usize], dim: usize) -> Result<(), OracleError> {
    const CHECK: &str = "grid-bounds";
    if bounds.len() < 2 {
        return fail(CHECK, format!("axis {axis}: fewer than two boundaries"));
    }
    if bounds[0] != 0 {
        return fail(
            CHECK,
            format!("axis {axis}: first boundary is {}, not 0", bounds[0]),
        );
    }
    if *bounds.last().unwrap_or(&0) != dim {
        return fail(
            CHECK,
            format!(
                "axis {axis}: last boundary is {}, not the axis length {dim}",
                bounds.last().copied().unwrap_or(0)
            ),
        );
    }
    for w in bounds.windows(2) {
        if w[1] < w[0] {
            return fail(
                CHECK,
                format!("axis {axis}: boundaries decrease ({} -> {})", w[0], w[1]),
            );
        }
    }
    Ok(())
}

/// One MB grid block, flattened to plain data: its grid coordinates and the
/// kernel-axis index triples of every nonzero it holds.
#[derive(Debug, Clone)]
pub struct GridBlock {
    /// Block coordinates `(a, b, c)` in kernel axes.
    pub coords: [usize; 3],
    /// Kernel-axis indices `[slice, j, k]` of each nonzero in the block.
    pub entries: Vec<[usize; 3]>,
}

/// Verifies an MB grid: every axis' bounds tile the axis, every block's
/// nonzeros sit inside that block's box, and the blocks jointly hold
/// exactly `nnz` nonzeros (so, with disjoint boxes, every nonzero maps to
/// exactly one block).
///
/// `dims` are the axis lengths in *kernel* axes (slice, `j`, `k`).
pub fn check_grid_blocks(
    dims: [usize; 3],
    bounds: [&[usize]; 3],
    nnz: usize,
    blocks: &[GridBlock],
) -> Result<(), OracleError> {
    const CHECK: &str = "grid-blocks";
    for ax in 0..3 {
        check_bounds_tiling(ax, bounds[ax], dims[ax])?;
    }
    let mut held = 0usize;
    for block in blocks {
        for (ax, axis_bounds) in bounds.iter().enumerate() {
            if block.coords[ax] + 1 >= axis_bounds.len() {
                return fail(
                    CHECK,
                    format!(
                        "block {:?}: coordinate {} exceeds the axis-{ax} grid",
                        block.coords, block.coords[ax]
                    ),
                );
            }
        }
        held += block.entries.len();
        for e in &block.entries {
            for ax in 0..3 {
                let lo = bounds[ax][block.coords[ax]];
                let hi = bounds[ax][block.coords[ax] + 1];
                if e[ax] < lo || e[ax] >= hi {
                    return fail(
                        CHECK,
                        format!(
                            "block {:?}: nonzero at {:?} falls outside its \
                             axis-{ax} range {lo}..{hi}",
                            block.coords, e
                        ),
                    );
                }
            }
        }
    }
    if held != nnz {
        return fail(
            CHECK,
            format!("blocks hold {held} nonzeros, tensor has {nnz}"),
        );
    }
    Ok(())
}

/// Verifies a RankB strip plan: the `(col0, width)` strips tile `[0, rank)`
/// in order with no gap or overlap, and the register chunks implied by each
/// strip never exceed `reg_block` columns (the paper's `N_RegB`).
pub fn check_strip_plan(
    rank: usize,
    strips: &[(usize, usize)],
    reg_block: usize,
) -> Result<(), OracleError> {
    const CHECK: &str = "strip-plan";
    if reg_block == 0 {
        return fail(CHECK, "register block width is zero".to_string());
    }
    if rank == 0 {
        return if strips.is_empty() {
            Ok(())
        } else {
            fail(CHECK, "strips declared for a zero-rank output".to_string())
        };
    }
    let mut cursor = 0usize;
    for &(col0, width) in strips {
        if col0 != cursor {
            return fail(
                CHECK,
                format!("strip at column {col0} but the previous strip ended at {cursor}"),
            );
        }
        if width == 0 {
            return fail(CHECK, format!("empty strip at column {col0}"));
        }
        // Register chunking: full chunks of `reg_block`, then a remainder.
        let remainder = width % reg_block;
        let widest = if width >= reg_block { reg_block } else { width };
        if widest.max(remainder) > reg_block {
            return fail(
                CHECK,
                format!("strip at column {col0} implies a register chunk wider than {reg_block}"),
            );
        }
        cursor += width;
    }
    if cursor != rank {
        return fail(
            CHECK,
            format!("strips cover columns 0..{cursor}, rank is {rank}"),
        );
    }
    Ok(())
}

/// Verifies a tuner output: every block count must be achievable for the
/// kernel-axis lengths (at least one, at most the axis length), and the
/// strip width must fit the rank it was tuned for.
pub fn check_tune_grid(
    dims: [usize; 3],
    grid: [usize; 3],
    strip_width: usize,
    rank: usize,
) -> Result<(), OracleError> {
    const CHECK: &str = "tune-result";
    for ax in 0..3 {
        if grid[ax] == 0 {
            return fail(CHECK, format!("axis {ax}: zero blocks selected"));
        }
        if grid[ax] > dims[ax].max(1) {
            return fail(
                CHECK,
                format!(
                    "axis {ax}: {} blocks selected for an axis of length {}",
                    grid[ax], dims[ax]
                ),
            );
        }
    }
    if strip_width == 0 {
        return fail(CHECK, "zero strip width selected".to_string());
    }
    if strip_width > rank.max(1) {
        return fail(
            CHECK,
            format!("strip width {strip_width} selected for rank {rank}"),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_tiling_accepts_uniform_and_empty_blocks() {
        assert!(check_bounds_tiling(0, &[0, 3, 6, 10], 10).is_ok());
        assert!(check_bounds_tiling(1, &[0, 4, 4, 9], 9).is_ok());
    }

    #[test]
    fn bounds_tiling_rejects_bad_ends_and_order() {
        assert!(check_bounds_tiling(0, &[1, 5, 10], 10).is_err());
        assert!(check_bounds_tiling(0, &[0, 5, 9], 10).is_err());
        assert!(check_bounds_tiling(0, &[0, 6, 5, 10], 10).is_err());
        assert!(check_bounds_tiling(0, &[0], 0).is_err());
    }

    #[test]
    fn grid_blocks_pass_when_partition_is_exact() {
        let blocks = vec![
            GridBlock {
                coords: [0, 0, 0],
                entries: vec![[0, 1, 0], [1, 0, 1]],
            },
            GridBlock {
                coords: [1, 0, 0],
                entries: vec![[2, 1, 1]],
            },
        ];
        let b0 = [0usize, 2, 4];
        let b1 = [0usize, 2];
        let b2 = [0usize, 2];
        assert!(check_grid_blocks([4, 2, 2], [&b0, &b1, &b2], 3, &blocks).is_ok());
    }

    #[test]
    fn grid_blocks_catch_escaped_nonzero_and_lost_nonzero() {
        let b0 = [0usize, 2, 4];
        let b1 = [0usize, 2];
        let b2 = [0usize, 2];
        // Row 2 inside block row 0 (box is 0..2): escaped.
        let escaped = vec![GridBlock {
            coords: [0, 0, 0],
            entries: vec![[2, 0, 0]],
        }];
        let err = check_grid_blocks([4, 2, 2], [&b0, &b1, &b2], 1, &escaped).unwrap_err();
        assert_eq!(err.check, "grid-blocks");
        assert!(err.detail.contains("outside"), "{err}");
        // Count mismatch: a nonzero fell out of every block.
        let lost = vec![GridBlock {
            coords: [0, 0, 0],
            entries: vec![[0, 0, 0]],
        }];
        let err = check_grid_blocks([4, 2, 2], [&b0, &b1, &b2], 2, &lost).unwrap_err();
        assert!(err.detail.contains("hold 1"), "{err}");
    }

    #[test]
    fn strip_plan_tiles_exactly() {
        assert!(check_strip_plan(37, &[(0, 16), (16, 16), (32, 5)], 16).is_ok());
        assert!(check_strip_plan(8, &[(0, 8)], 16).is_ok());
        assert!(check_strip_plan(0, &[], 16).is_ok());
    }

    #[test]
    fn strip_plan_rejects_gap_overlap_and_short_cover() {
        assert!(check_strip_plan(32, &[(0, 16), (17, 15)], 16).is_err());
        assert!(check_strip_plan(32, &[(0, 16), (15, 17)], 16).is_err());
        assert!(check_strip_plan(32, &[(0, 16)], 16).is_err());
        assert!(check_strip_plan(4, &[(0, 0), (0, 4)], 16).is_err());
    }

    #[test]
    fn tune_grid_achievability() {
        assert!(check_tune_grid([10, 20, 30], [2, 4, 8], 16, 32).is_ok());
        assert!(check_tune_grid([10, 20, 30], [11, 1, 1], 16, 32).is_err());
        assert!(check_tune_grid([10, 20, 30], [0, 1, 1], 16, 32).is_err());
        assert!(check_tune_grid([10, 20, 30], [1, 1, 1], 0, 32).is_err());
        assert!(check_tune_grid([10, 20, 30], [1, 1, 1], 33, 32).is_err());
        // Rank-sized single strip is always legal, even for rank 0 axes.
        assert!(check_tune_grid([10, 0, 30], [1, 1, 1], 1, 1).is_ok());
    }
}
