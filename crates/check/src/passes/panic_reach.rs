//! Panic-reachability: computes the transitive can-panic set over the
//! call graph and requires the declared boundary roots to be panic-free
//! modulo per-site waivers. Replaces the v1 file-scoped
//! `no-panic-ingest` rule with a call-graph analysis that follows
//! helpers wherever they live.
//!
//! Two root tiers with different panic vocabularies:
//!
//! - **Strict** (untrusted input — `.tns`/`.tnsb` parsing and the tile
//!   store's header/tile validation): panic macros, `.unwrap()` /
//!   `.expect()`, assertion macros, *and* explicit `[i]` indexing. A
//!   malformed file must never abort the process, so even "impossible"
//!   index arithmetic counts.
//! - **Relaxed** (kernel entries and the serve request loop): panic
//!   macros and `.unwrap()`/`.expect()` only. Assertions there are
//!   declared preconditions on in-memory structures the ingest layer
//!   already validated, and indexing is the hot loop's job — the
//!   dynamic write-set checker owns those bounds.
//!
//! Functions whose body mentions `catch_unwind` are panic *boundaries*:
//! nothing inside them propagates out (the serve worker catches job
//! panics at the job boundary).
//!
//! Findings carry a full witness chain `root → … → fn → site` so a
//! reviewer can audit the path, and are deduplicated per panic site —
//! the first (breadth-first, i.e. shortest) chain wins.

use super::{is_shim, is_test_path, panic_sites, PanicSite, Workspace};
use crate::callgraph::FnId;
use crate::lint::{ChainHop, Finding, Rule};
use std::collections::{BTreeMap, VecDeque};

/// Root tier: which panic vocabulary applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Untrusted-input boundary: all sites count.
    Strict,
    /// Kernel/serve boundary: asserts and indexing are exempt.
    Relaxed,
}

/// Strict-tier roots as `(path suffix, fn name)` pairs.
const STRICT_ROOTS: &[(&str, &str)] = &[
    ("crates/tensor/src/io.rs", "read_tns"),
    ("crates/tensor/src/io.rs", "read_tns_file"),
    ("crates/tensor/src/io_bin.rs", "read_header"),
    ("crates/tensor/src/io_bin.rs", "read_bin_header_file"),
    ("crates/tensor/src/io_bin.rs", "read_file"),
    ("crates/tensor/src/io_bin.rs", "read_bin_nd"),
    ("crates/tensor/src/io_bin.rs", "read_bin"),
    ("crates/tensor/src/io_bin.rs", "read_bin_file"),
    ("crates/tensor/src/tile_store.rs", "open"),
    ("crates/tensor/src/tile_store.rs", "validate_bytes"),
    ("crates/tensor/src/tile_store.rs", "load_tile"),
];

/// Relaxed-tier roots: the serve request handler (kernel `mttkrp`
/// entries are matched by trait, not listed here).
const RELAXED_ROOTS: &[(&str, &str)] = &[("crates/serve/src/proto.rs", "handle")];

/// The declared boundary roots present in this workspace.
pub fn roots(ws: &Workspace) -> Vec<(FnId, Tier)> {
    let mut out = Vec::new();
    for (id, node) in ws.graph.fns.iter().enumerate() {
        if node.item.in_test {
            continue;
        }
        let listed = |specs: &[(&str, &str)]| {
            specs
                .iter()
                .any(|(path, name)| node.path.ends_with(path) && node.item.name == *name)
        };
        if listed(STRICT_ROOTS) {
            out.push((id, Tier::Strict));
        } else if listed(RELAXED_ROOTS)
            || (node.item.name == "mttkrp"
                && node.item.trait_name.as_deref() == Some("MttkrpKernel"))
        {
            out.push((id, Tier::Relaxed));
        }
    }
    out
}

/// Runs the pass: BFS from every root, reporting each reachable panic
/// site once with its shortest witness chain.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    // Per-fn direct panic sites (empty for shims/tests/boundaries).
    let sites: Vec<Vec<PanicSite>> = ws
        .graph
        .fns
        .iter()
        .map(|node| {
            if is_shim(&node.path) || is_test_path(&node.path) || node.item.in_test {
                return Vec::new();
            }
            let fi = match ws.file_index(&node.path) {
                Some(fi) => fi,
                None => return Vec::new(),
            };
            panic_sites(&ws.files[fi].tokens, &node.item)
        })
        .collect();
    let is_boundary: Vec<bool> = ws
        .graph
        .fns
        .iter()
        .map(|node| {
            let (open, close) = node.item.body;
            let fi = ws.file_index(&node.path);
            match fi {
                Some(fi) if open != usize::MAX && close < ws.files[fi].tokens.len() => ws.files[fi]
                    .tokens[open..=close]
                    .iter()
                    .any(|t| t.kind.is_ident("catch_unwind")),
                _ => false,
            }
        })
        .collect();

    // Dedup key: (file, line, desc). First root to reach a site claims it.
    let mut reported: BTreeMap<(String, usize, String), Finding> = BTreeMap::new();

    for (root, tier) in roots(ws) {
        // BFS with parent pointers for witness reconstruction.
        let mut parent: BTreeMap<FnId, (FnId, usize)> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(root);
        let mut visited = vec![false; ws.graph.fns.len()];
        visited[root] = true;
        while let Some(f) = queue.pop_front() {
            let node = &ws.graph.fns[f];
            for site in &sites[f] {
                if tier == Tier::Relaxed && site.strict_only {
                    continue;
                }
                let key = (node.path.clone(), site.line, site.desc.clone());
                if reported.contains_key(&key) {
                    continue;
                }
                let chain = witness(ws, root, f, &parent, site.line);
                let fi = ws.file_index(&node.path);
                let waived =
                    fi.is_some_and(|fi| ws.is_waived(fi, site.line, Rule::PanicReach.name()));
                let excerpt = fi.map(|fi| ws.excerpt(fi, site.line)).unwrap_or_default();
                reported.insert(
                    key,
                    Finding {
                        rule: Rule::PanicReach,
                        file: node.path.clone(),
                        line: site.line,
                        func: Some(node.item.qualified()),
                        excerpt,
                        chain,
                        waived,
                    },
                );
            }
            if is_boundary[f] {
                continue; // panics below are caught here
            }
            for edge in ws.graph.callees(f) {
                let callee = &ws.graph.fns[edge.callee];
                if callee.item.in_test || is_shim(&callee.path) || is_test_path(&callee.path) {
                    continue;
                }
                if !visited[edge.callee] {
                    visited[edge.callee] = true;
                    parent.insert(edge.callee, (f, edge.line));
                    queue.push_back(edge.callee);
                }
            }
        }
    }
    reported.into_values().collect()
}

/// Reconstructs the witness chain `root → … → containing fn → site`.
fn witness(
    ws: &Workspace,
    root: FnId,
    site_fn: FnId,
    parent: &BTreeMap<FnId, (FnId, usize)>,
    site_line: usize,
) -> Vec<ChainHop> {
    // Walk site_fn → root, collecting (fn, line-of-call-into-next).
    let mut rev = vec![(site_fn, site_line)];
    let mut cur = site_fn;
    while cur != root {
        let Some(&(p, call_line)) = parent.get(&cur) else {
            break;
        };
        rev.push((p, call_line));
        cur = p;
    }
    rev.reverse();
    rev.into_iter()
        .map(|(f, line)| {
            let node = &ws.graph.fns[f];
            ChainHop {
                func: node.item.qualified(),
                file: node.path.clone(),
                line,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn ingest_root_reaches_panicking_helper_with_witness() {
        let w = ws(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns(text: &str) -> u32 { parse_line(text) }
             fn parse_line(t: &str) -> u32 { t.parse().unwrap() }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "panic-reach");
        assert_eq!(f[0].func.as_deref(), Some("parse_line"));
        let hops: Vec<&str> = f[0].chain.iter().map(|h| h.func.as_str()).collect();
        assert_eq!(hops, vec!["read_tns", "parse_line"]);
        // The root hop's line is its call into the helper; the last
        // hop's line is the panic site itself.
        assert_eq!(f[0].chain.last().unwrap().line, f[0].line);
    }

    #[test]
    fn strict_tier_counts_indexing_and_asserts() {
        let w = ws(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns(v: &[u8]) -> u8 { assert!(!v.is_empty()); v[0] }",
        )]);
        let f = run(&w);
        let descs: Vec<&str> = f.iter().map(|x| x.excerpt.as_str()).collect();
        assert_eq!(f.len(), 2, "assert + index, got {descs:?}");
    }

    #[test]
    fn relaxed_tier_ignores_asserts_and_indexing_but_not_unwrap() {
        let w = ws(&[(
            "crates/core/src/coo.rs",
            "pub struct CooKernel;
             impl MttkrpKernel for CooKernel {
                 fn mttkrp(&self, out: &mut [f64], o: Option<u32>) {
                     assert_eq!(out.len(), 4);
                     out[0] = 1.0;
                     helper(o);
                 }
             }
             fn helper(o: Option<u32>) { o.unwrap(); }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].func.as_deref(), Some("helper"));
    }

    #[test]
    fn catch_unwind_stops_propagation() {
        let w = ws(&[(
            "crates/serve/src/proto.rs",
            "pub struct Service; impl Service {
                 pub fn handle(&self) { self.guarded(); }
                 fn guarded(&self) { let _ = std::panic::catch_unwind(|| risky()); }
             }
             fn risky() { panic!(\"inside the boundary\"); }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn waived_site_is_reported_but_waived() {
        let w = ws(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns(o: Option<u32>) -> u32 {\n    o.unwrap() // invariant: checked by caller — lint: allow(panic-reach)\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn unreached_panics_are_not_findings() {
        let w = ws(&[(
            "crates/tensor/src/io.rs",
            "pub fn read_tns() -> u32 { 7 }
             pub fn unrelated(o: Option<u32>) -> u32 { o.unwrap() }",
        )]);
        assert!(run(&w).is_empty());
    }
}
