//! Index-overflow: unchecked multiplies in block-coordinate and
//! tile-extent arithmetic in `crates/tensor` must use `checked_mul` (or
//! carry a waiver explaining why overflow is impossible).
//!
//! Rationale: block ids are linearized as `(a·nb + b)·nc + c`, tile
//! payload offsets as `nnz · entry_bytes`, and the inputs come from
//! file headers — in release builds a wrapped multiply silently
//! produces a *valid-looking* wrong block id, which defeats the very
//! bounds checks that make the blocking schemes safe to parallelize.
//!
//! Scope: non-test fns in `crates/tensor/src` whose multiply touches
//! the coordinate vocabulary (`dim`/`grid`/`extent`/`stride`/`tile`/
//! `block` in an operand identifier, or the conventional `nb`/`nc`/
//! `na`/`nnz`/`order` names). Size-estimate helpers (`*_bytes`,
//! `*_size`, `len`-style) are exempt — a wrapped byte *estimate* skews
//! a stat, not an index.
//!
//! The pass also flags *narrowing casts of freshly linearized ids*:
//! `(a * nb + b) as u32` truncates silently for grids with ≥ 2³² cells,
//! even when the wide arithmetic itself cannot wrap — the exact shape of
//! the BCOO block-tag bug. Casts of bounded decodes (`(id % nc) as u32`,
//! `(id / (nb * nc)) as u32`) and of finished values (`x as u32`,
//! `f(...) as u32`) are not flagged.

use super::{is_shim, is_test_path, mul_sites, narrowing_cast_sites, Workspace};
use crate::lint::{Finding, Rule};

/// Substring vocabulary: an operand identifier containing one of these
/// marks coordinate/extent arithmetic.
const VOCAB_SUBSTR: &[&str] = &["dim", "grid", "extent", "stride", "tile", "block"];
/// Exact-match vocabulary (short conventional names).
const VOCAB_EXACT: &[&str] = &["nb", "nc", "na", "nnz", "order", "n_tiles"];
/// Functions whose multiplies are size estimates, not indices.
const EXEMPT_FN_SUBSTR: &[&str] = &["bytes", "size", "estimate", "len", "norm"];

/// Whether an identifier belongs to the coordinate vocabulary.
fn in_vocab(ident: &str) -> bool {
    VOCAB_EXACT.contains(&ident) || VOCAB_SUBSTR.iter().any(|v| ident.contains(v))
}

/// Runs the pass over `crates/tensor/src`.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.path.contains("crates/tensor/src")
            || is_shim(&file.path)
            || is_test_path(&file.path)
        {
            continue;
        }
        for item in &file.items {
            if item.in_test {
                continue;
            }
            let fn_lower = item.name.to_lowercase();
            if EXEMPT_FN_SUBSTR.iter().any(|s| fn_lower.contains(s)) {
                continue;
            }
            let mut mul_lines = Vec::new();
            for site in mul_sites(&file.tokens, item) {
                // `checked_mul` in the window means the site already
                // converted (the `*` may be a neighboring plain factor
                // like `* 4` in the same expression).
                if site.window_idents.iter().any(|w| w == "checked_mul") {
                    continue;
                }
                // Float arithmetic (`x as f64 * frac`) saturates instead
                // of wrapping — not an index-overflow hazard.
                if site.window_idents.iter().any(|w| w == "f64" || w == "f32") {
                    continue;
                }
                if !site.window_idents.iter().any(|w| in_vocab(w)) {
                    continue;
                }
                mul_lines.push(site.line);
                out.push(Finding {
                    rule: Rule::IndexOverflow,
                    file: file.path.clone(),
                    line: site.line,
                    func: Some(item.qualified()),
                    excerpt: ws.excerpt(fi, site.line),
                    chain: Vec::new(),
                    waived: ws.is_waived(fi, site.line, Rule::IndexOverflow.name()),
                });
            }
            for site in narrowing_cast_sites(&file.tokens, item) {
                // `checked_*` in the operand means the arithmetic already
                // guards its range; float math saturates instead of
                // wrapping before the cast truncates.
                if site
                    .operand_idents
                    .iter()
                    .any(|w| w.starts_with("checked_") || w == "f64" || w == "f32")
                {
                    continue;
                }
                if !site.operand_idents.iter().any(|w| in_vocab(w)) {
                    continue;
                }
                // The multiply rule already reported this line; one
                // finding per line keeps the output readable.
                if mul_lines.contains(&site.line) {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::IndexOverflow,
                    file: file.path.clone(),
                    line: site.line,
                    func: Some(item.qualified()),
                    excerpt: ws.excerpt(fi, site.line),
                    chain: Vec::new(),
                    waived: ws.is_waived(fi, site.line, Rule::IndexOverflow.name()),
                });
            }
        }
    }
    // A line with several flagged multiplies reads as one finding.
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn block_linearization_is_flagged() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn block_id(a: usize, b: usize, c: usize, nb: usize, nc: usize) -> usize {\n    (a * nb + b) * nc + c\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "index-overflow");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn checked_mul_is_clean() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn block_id(a: usize, nb: usize) -> Option<usize> { a.checked_mul(nb) }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn non_coordinate_multiplies_and_size_helpers_are_exempt() {
        let w = ws(&[(
            "crates/tensor/src/coo.rs",
            "fn sumsq(vals: &[f64]) -> f64 { vals.iter().map(|v| v * v).sum() }
             fn payload_bytes(&self) -> usize { self.nnz * 20 }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn scope_is_tensor_crate_only() {
        let w = ws(&[(
            "crates/core/src/mttkrp/mod.rs",
            "fn f(nb: usize, nc: usize) -> usize { nb * nc }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn narrowing_cast_of_linearized_id_is_flagged() {
        // Addition-only linearization: the multiply rule has nothing to
        // flag, so any finding here comes from the cast rule alone.
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn tag(base: u64, block_off: u64) -> u32 {\n    (base + block_off) as u32\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule.name(), "index-overflow");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn the_original_bcoo_tag_line_would_have_been_caught() {
        // Verbatim shape of the pre-fix crates/tensor/src/bcoo.rs:154.
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn tag(a: usize, b: usize, c: usize, nb: usize, nc: usize) -> u32 {\n    (((a * nb + b) * nc + c) as u32, 0).0\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn bounded_decodes_and_finished_values_are_clean() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn decode(id: u64, nb: u64, nc: u64) -> (u32, u32, u32) {\n    let c = (id % nc) as u32;\n    let b = ((id / nc) % nb) as u32;\n    let a = (id / nb.checked_mul(nc).unwrap()) as u32;\n    (a, b, c)\n}
             fn call_result(grid: [usize; 3]) -> u32 { cell_of(grid) as u32 }
             fn finished(block_id: u64) -> u32 { block_id as u32 }",
        )]);
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn widening_casts_are_not_narrowing() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn tag(a: u64, nb: u64, b: u64) -> u64 { (a * nb + b) as u64 }",
        )]);
        // The multiply rule still fires (vocab `nb`), but no extra cast
        // finding appears for the same line.
        let f = run(&w);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn waiver_respected() {
        let w = ws(&[(
            "crates/tensor/src/nd.rs",
            "fn cap(nnz: usize, order: usize) -> usize {\n    nnz * order // both validated ≤ 2^20 at parse — lint: allow(index-overflow)\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }
}
