//! Index-overflow: unchecked multiplies in block-coordinate and
//! tile-extent arithmetic in `crates/tensor` must use `checked_mul` (or
//! carry a waiver explaining why overflow is impossible).
//!
//! Rationale: block ids are linearized as `(a·nb + b)·nc + c`, tile
//! payload offsets as `nnz · entry_bytes`, and the inputs come from
//! file headers — in release builds a wrapped multiply silently
//! produces a *valid-looking* wrong block id, which defeats the very
//! bounds checks that make the blocking schemes safe to parallelize.
//!
//! Scope: non-test fns in `crates/tensor/src` whose multiply touches
//! the coordinate vocabulary (`dim`/`grid`/`extent`/`stride`/`tile`/
//! `block` in an operand identifier, or the conventional `nb`/`nc`/
//! `na`/`nnz`/`order` names). Size-estimate helpers (`*_bytes`,
//! `*_size`, `len`-style) are exempt — a wrapped byte *estimate* skews
//! a stat, not an index.

use super::{is_shim, is_test_path, mul_sites, Workspace};
use crate::lint::{Finding, Rule};

/// Substring vocabulary: an operand identifier containing one of these
/// marks coordinate/extent arithmetic.
const VOCAB_SUBSTR: &[&str] = &["dim", "grid", "extent", "stride", "tile", "block"];
/// Exact-match vocabulary (short conventional names).
const VOCAB_EXACT: &[&str] = &["nb", "nc", "na", "nnz", "order", "n_tiles"];
/// Functions whose multiplies are size estimates, not indices.
const EXEMPT_FN_SUBSTR: &[&str] = &["bytes", "size", "estimate", "len", "norm"];

/// Whether an identifier belongs to the coordinate vocabulary.
fn in_vocab(ident: &str) -> bool {
    VOCAB_EXACT.contains(&ident) || VOCAB_SUBSTR.iter().any(|v| ident.contains(v))
}

/// Runs the pass over `crates/tensor/src`.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.path.contains("crates/tensor/src")
            || is_shim(&file.path)
            || is_test_path(&file.path)
        {
            continue;
        }
        for item in &file.items {
            if item.in_test {
                continue;
            }
            let fn_lower = item.name.to_lowercase();
            if EXEMPT_FN_SUBSTR.iter().any(|s| fn_lower.contains(s)) {
                continue;
            }
            for site in mul_sites(&file.tokens, item) {
                // `checked_mul` in the window means the site already
                // converted (the `*` may be a neighboring plain factor
                // like `* 4` in the same expression).
                if site.window_idents.iter().any(|w| w == "checked_mul") {
                    continue;
                }
                // Float arithmetic (`x as f64 * frac`) saturates instead
                // of wrapping — not an index-overflow hazard.
                if site.window_idents.iter().any(|w| w == "f64" || w == "f32") {
                    continue;
                }
                if !site.window_idents.iter().any(|w| in_vocab(w)) {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::IndexOverflow,
                    file: file.path.clone(),
                    line: site.line,
                    func: Some(item.qualified()),
                    excerpt: ws.excerpt(fi, site.line),
                    chain: Vec::new(),
                    waived: ws.is_waived(fi, site.line, Rule::IndexOverflow.name()),
                });
            }
        }
    }
    // A line with several flagged multiplies reads as one finding.
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn block_linearization_is_flagged() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn block_id(a: usize, b: usize, c: usize, nb: usize, nc: usize) -> usize {\n    (a * nb + b) * nc + c\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "index-overflow");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn checked_mul_is_clean() {
        let w = ws(&[(
            "crates/tensor/src/bcoo.rs",
            "fn block_id(a: usize, nb: usize) -> Option<usize> { a.checked_mul(nb) }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn non_coordinate_multiplies_and_size_helpers_are_exempt() {
        let w = ws(&[(
            "crates/tensor/src/coo.rs",
            "fn sumsq(vals: &[f64]) -> f64 { vals.iter().map(|v| v * v).sum() }
             fn payload_bytes(&self) -> usize { self.nnz * 20 }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn scope_is_tensor_crate_only() {
        let w = ws(&[(
            "crates/core/src/mttkrp/mod.rs",
            "fn f(nb: usize, nc: usize) -> usize { nb * nc }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn waiver_respected() {
        let w = ws(&[(
            "crates/tensor/src/nd.rs",
            "fn cap(nnz: usize, order: usize) -> usize {\n    nnz * order // both validated ≤ 2^20 at parse — lint: allow(index-overflow)\n}",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }
}
