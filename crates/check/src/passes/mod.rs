//! Rule passes over the shared token streams, item lists, and call graph.
//!
//! [`Workspace`] is the one analysis input: every file lexed once
//! ([`crate::lexer`]), items parsed once ([`crate::items`]), the call
//! graph built once ([`crate::callgraph`]), waiver comments collected
//! once. Each pass is a function `fn run(&Workspace) -> Vec<Finding>`;
//! the driver in [`crate::lint`] concatenates them and applies waivers.
//!
//! Passes:
//! - [`line_rules`] — the v1 rules ported onto the token stream
//!   (`no-unwrap`, `pub-fn-doc`, `no-lock-unwrap`).
//! - [`panic_reach`] — transitive can-panic analysis from declared
//!   boundary roots, with call-chain witnesses.
//! - [`lock_discipline`] — no I/O while a `sync.rs` guard is live, and
//!   the global lock-acquisition order.
//! - [`kernel_contract`] — `KernelKind` completeness: dispatch arm,
//!   `ALL` registration, `as_str` name, write-set derivation, obs span,
//!   fuzz hook per variant.
//! - [`index_overflow`] — unchecked multiplies in block-coordinate and
//!   tile-extent arithmetic in `crates/tensor`.
//! - [`atomic_persist`] — durable files in persistence modules are
//!   published via temp-file + rename, never written in place.

pub mod atomic_persist;
pub mod index_overflow;
pub mod kernel_contract;
pub mod line_rules;
pub mod lock_discipline;
pub mod panic_reach;

use crate::callgraph::CallGraph;
use crate::items::{parse_items, FnItem};
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Parsed `fn` items.
    pub items: Vec<FnItem>,
    /// Waivers: 1-based line → rule names from `lint: allow(...)`.
    pub waivers: BTreeMap<usize, Vec<String>>,
    /// Raw source lines (for excerpts).
    pub lines: Vec<String>,
}

/// The analyzed workspace: all files plus the cross-file call graph.
#[derive(Debug)]
pub struct Workspace {
    /// Analyzed files, in walk order.
    pub files: Vec<SourceFile>,
    /// The intra-workspace call graph (fn ids index [`CallGraph::fns`]).
    pub graph: CallGraph,
    /// path → index into `files`.
    by_path: BTreeMap<String, usize>,
}

impl Workspace {
    /// Builds the workspace model from `(path, source)` pairs. Paths
    /// should be workspace-relative with `/` separators — the passes
    /// scope rules by path substring.
    pub fn from_sources(sources: &[(String, String)]) -> Workspace {
        // per-file (line → waived rules, raw lines)
        type FileMeta = (BTreeMap<usize, Vec<String>>, Vec<String>);
        let mut tuples: Vec<(String, Vec<Token>, Vec<FnItem>)> = Vec::new();
        let mut metas: Vec<FileMeta> = Vec::new();
        for (path, text) in sources {
            let tokens = lex(text);
            let items = parse_items(&tokens);
            let mut waivers = BTreeMap::new();
            let mut lines = Vec::new();
            for (i, raw) in text.lines().enumerate() {
                let rules = waiver_rules(raw);
                if !rules.is_empty() {
                    waivers.insert(i + 1, rules);
                }
                lines.push(raw.to_string());
            }
            tuples.push((path.clone(), tokens, items));
            metas.push((waivers, lines));
        }
        let graph = CallGraph::build(&tuples);
        let mut by_path = BTreeMap::new();
        let files: Vec<SourceFile> = tuples
            .into_iter()
            .zip(metas)
            .enumerate()
            .map(|(i, ((path, tokens, items), (waivers, lines)))| {
                by_path.insert(path.clone(), i);
                SourceFile {
                    path,
                    tokens,
                    items,
                    waivers,
                    lines,
                }
            })
            .collect();
        Workspace {
            files,
            graph,
            by_path,
        }
    }

    /// Index of the file at `path`, if analyzed.
    pub fn file_index(&self, path: &str) -> Option<usize> {
        self.by_path.get(path).copied()
    }

    /// The trimmed source line for an excerpt (empty when out of range).
    pub fn excerpt(&self, file: usize, line: usize) -> String {
        self.files[file]
            .lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Whether a waiver for `rule` covers `line` of `file`.
    pub fn is_waived(&self, file: usize, line: usize, rule: &str) -> bool {
        let hit = |l: usize| {
            self.files[file]
                .waivers
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        };
        // A waiver covers its own line or, written as a standalone
        // comment, the line directly below it.
        hit(line) || (line > 1 && hit(line - 1))
    }
}

/// Whether a path belongs to the compatibility shims (exempt from all
/// rules — they exist to encapsulate the exceptions).
pub fn is_shim(path: &str) -> bool {
    path.contains("shims/") || path.ends_with("sync.rs")
}

/// Whether a path is test-only (integration `tests/` trees, benches).
pub fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/")
}

/// Extracts waived rule names from a `lint: allow(a, b)` marker, if any.
pub fn waiver_rules(raw_line: &str) -> Vec<String> {
    let Some(pos) = raw_line.find("lint: allow(") else {
        return Vec::new();
    };
    let rest = &raw_line[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

/// A syntactic site that can panic.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// What it is (`panic!`, `.unwrap()`, `index []`, …).
    pub desc: String,
    /// True for sites only the *strict* tier treats as panics: asserts
    /// (declared preconditions) and `[i]` indexing. The relaxed tier —
    /// kernel and serve roots — skips these; the strict ingest tier
    /// (untrusted input) counts them.
    pub strict_only: bool,
}

/// Macros that always abort the caller's contract.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Assertion macros: strict-tier panic sources only.
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Scans a fn body for direct panic sites. Returns an empty list for
/// bodiless items and for fns containing `catch_unwind` (they are
/// treated as panic boundaries: whatever happens inside is caught).
pub fn panic_sites(tokens: &[Token], item: &FnItem) -> Vec<PanicSite> {
    let (open, close) = item.body;
    if open == usize::MAX || close >= tokens.len() {
        return Vec::new();
    }
    let body = &tokens[open..=close];
    if body.iter().any(|t| t.kind.is_ident("catch_unwind")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, tok) in body.iter().enumerate() {
        match &tok.kind {
            TokenKind::Ident(name) => {
                let next_bang = body.get(i + 1).is_some_and(|t| t.kind.is_punct("!"));
                if next_bang && PANIC_MACROS.contains(&name.as_str()) {
                    out.push(PanicSite {
                        line: tok.line,
                        desc: format!("{name}!"),
                        strict_only: false,
                    });
                } else if next_bang && ASSERT_MACROS.contains(&name.as_str()) {
                    out.push(PanicSite {
                        line: tok.line,
                        desc: format!("{name}!"),
                        strict_only: true,
                    });
                } else if (name == "unwrap" || name == "expect")
                    && i > 0
                    && body[i - 1].kind.is_punct(".")
                    && body.get(i + 1).is_some_and(|t| t.kind.is_punct("("))
                {
                    out.push(PanicSite {
                        line: tok.line,
                        desc: format!(".{name}()"),
                        strict_only: false,
                    });
                }
            }
            TokenKind::Punct("[") if i > 0 => {
                // Expression-position `[` (indexing/slicing): previous
                // token ends an expression. `#[attr]`, array literals
                // `[0; n]`, and patterns don't.
                let expr_before = matches!(
                    &body[i - 1].kind,
                    TokenKind::Ident(_) | TokenKind::Punct(")") | TokenKind::Punct("]")
                ) && !body[i - 1].kind.ident().is_some_and(|w| {
                    matches!(w, "in" | "return" | "else" | "match" | "mut" | "ref")
                });
                if expr_before {
                    out.push(PanicSite {
                        line: tok.line,
                        desc: "index []".to_string(),
                        strict_only: true,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Qualifier types/modules whose associated calls perform file or
/// socket I/O.
const IO_QUALIFIERS: &[&str] = &[
    "fs",
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UnixStream",
    "UnixListener",
];
/// Method names that perform I/O on readers/writers/sockets.
const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
    "accept",
    "shutdown",
];

/// Scans a fn body for direct file/socket I/O call sites: `fs::…`,
/// `File::…`, socket constructors, and reader/writer methods.
pub fn io_sites(tokens: &[Token], item: &FnItem) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for call in crate::callgraph::extract_calls(tokens, item) {
        let is_io = match &call.kind {
            crate::callgraph::CallKind::Qualified(owner) => IO_QUALIFIERS.contains(&owner.as_str()),
            crate::callgraph::CallKind::Method { .. } => IO_METHODS.contains(&call.name.as_str()),
            crate::callgraph::CallKind::Bare => false,
        };
        if is_io {
            let label = match &call.kind {
                crate::callgraph::CallKind::Qualified(owner) => {
                    format!("{owner}::{}", call.name)
                }
                _ => format!(".{}()", call.name),
            };
            out.push((call.line, label));
        }
    }
    out
}

/// A binary multiplication site: `a * b` in expression position.
#[derive(Debug, Clone)]
pub struct MulSite {
    /// 1-based source line.
    pub line: usize,
    /// Identifiers in the ±4-token window around the `*` (operand
    /// vocabulary for the index-overflow pass).
    pub window_idents: Vec<String>,
}

/// Scans a fn body for binary `*` operators (excluding derefs, raw
/// pointers, and `*=`'s read side — `*=` still counts as a multiply).
pub fn mul_sites(tokens: &[Token], item: &FnItem) -> Vec<MulSite> {
    let (open, close) = item.body;
    if open == usize::MAX || close >= tokens.len() {
        return Vec::new();
    }
    let body = &tokens[open..=close];
    let mut out = Vec::new();
    for (i, tok) in body.iter().enumerate() {
        if !tok.kind.is_punct("*") || i == 0 {
            continue;
        }
        // Binary `*`: an expression ends right before it.
        let prev_ends_expr = matches!(
            &body[i - 1].kind,
            TokenKind::Ident(_) | TokenKind::Num(_) | TokenKind::Punct(")") | TokenKind::Punct("]")
        ) && !body[i - 1]
            .kind
            .ident()
            .is_some_and(|w| matches!(w, "in" | "return" | "as" | "else" | "mut" | "const"));
        if !prev_ends_expr {
            continue;
        }
        let lo = i.saturating_sub(4);
        let hi = (i + 5).min(body.len());
        let window_idents = body[lo..hi]
            .iter()
            .filter_map(|t| t.kind.ident())
            .map(|s| s.to_string())
            .collect();
        out.push(MulSite {
            line: tok.line,
            window_idents,
        });
    }
    out
}

/// A `(expr) as u32/u16/u8` cast whose parenthesized operand performs
/// top-level `*`/`+` arithmetic — the shape that silently truncates a
/// freshly linearized id (the BCOO block-tag bug class).
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 1-based source line (of the `as`).
    pub line: usize,
    /// The narrow target type name (`u32`, `u16`, `u8`).
    pub target: String,
    /// Every identifier inside the parenthesized operand.
    pub operand_idents: Vec<String>,
}

/// Target types narrow enough to truncate a linearized coordinate.
const NARROW_TARGETS: &[&str] = &["u32", "u16", "u8"];

/// Scans a fn body for narrowing casts of parenthesized arithmetic:
/// `(a * nb + b) as u32`. Only group parens count — `f(...) as u32` is
/// a call (the callee owns its arithmetic), and a bare `x as u32` casts
/// a finished value. Arithmetic must appear at the group's top level, so
/// decodes like `(id % nc) as u32` or `(id / (nb * nc)) as u32` — whose
/// results are bounded by the divisor/modulus — stay clean.
pub fn narrowing_cast_sites(tokens: &[Token], item: &FnItem) -> Vec<CastSite> {
    let (open, close) = item.body;
    if open == usize::MAX || close >= tokens.len() {
        return Vec::new();
    }
    let body = &tokens[open..=close];
    let mut out = Vec::new();
    for (i, tok) in body.iter().enumerate() {
        if !tok.kind.is_ident("as") {
            continue;
        }
        let Some(target) = body.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        if i == 0 || !body[i - 1].kind.is_punct(")") {
            continue;
        }
        // Match the operand's opening paren.
        let mut depth = 0usize;
        let mut start = None;
        for j in (0..i).rev() {
            if body[j].kind.is_punct(")") {
                depth += 1;
            } else if body[j].kind.is_punct("(") {
                depth -= 1;
                if depth == 0 {
                    start = Some(j);
                    break;
                }
            }
        }
        let Some(start) = start else { continue };
        // An identifier right before `(` makes it a call or tuple-struct
        // argument list, not a grouping paren.
        if start > 0 && matches!(body[start - 1].kind, TokenKind::Ident(_)) {
            continue;
        }
        let inner = &body[start + 1..i - 1];
        let mut level = 0usize;
        let mut arith = false;
        for (j, t) in inner.iter().enumerate() {
            match &t.kind {
                TokenKind::Punct("(") | TokenKind::Punct("[") | TokenKind::Punct("{") => level += 1,
                TokenKind::Punct(")") | TokenKind::Punct("]") | TokenKind::Punct("}") => {
                    level = level.saturating_sub(1)
                }
                TokenKind::Punct("*") | TokenKind::Punct("+") if level == 0 && j > 0 => {
                    // Binary only: an expression must end right before
                    // (excludes derefs like `*e`).
                    let prev_ends_expr = matches!(
                        &inner[j - 1].kind,
                        TokenKind::Ident(_)
                            | TokenKind::Num(_)
                            | TokenKind::Punct(")")
                            | TokenKind::Punct("]")
                    ) && !inner[j - 1].kind.ident().is_some_and(|w| {
                        matches!(w, "in" | "return" | "as" | "else" | "mut" | "const")
                    });
                    if prev_ends_expr {
                        arith = true;
                    }
                }
                _ => {}
            }
        }
        if !arith {
            continue;
        }
        out.push(CastSite {
            line: tok.line,
            target: target.to_string(),
            operand_idents: inner
                .iter()
                .filter_map(|t| t.kind.ident())
                .map(|s| s.to_string())
                .collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            &files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn panic_sites_by_tier() {
        let w = ws(&[(
            "a.rs",
            "fn f(v: &[u32], o: Option<u32>) -> u32 {
                assert!(v.len() > 1);
                let a = v[0];
                let b = o.unwrap();
                if a > b { panic!(\"no\"); }
                o.unwrap_or(0) + a
            }",
        )]);
        let f = &w.files[0];
        let sites = panic_sites(&f.tokens, &f.items[0]);
        let descs: Vec<(&str, bool)> = sites
            .iter()
            .map(|s| (s.desc.as_str(), s.strict_only))
            .collect();
        assert_eq!(
            descs,
            vec![
                ("assert!", true),
                ("index []", true),
                (".unwrap()", false),
                ("panic!", false),
            ]
        );
    }

    #[test]
    fn catch_unwind_is_a_boundary() {
        let w = ws(&[(
            "a.rs",
            "fn f() { let r = std::panic::catch_unwind(|| x.unwrap()); drop(r); }",
        )]);
        let f = &w.files[0];
        assert!(panic_sites(&f.tokens, &f.items[0]).is_empty());
    }

    #[test]
    fn attribute_and_array_literal_brackets_are_not_indexing() {
        let w = ws(&[(
            "a.rs",
            "fn f() { #[cfg(unix)] let v = [0u8; 4]; for _x in [1, 2] {} drop(v); }",
        )]);
        let f = &w.files[0];
        assert!(panic_sites(&f.tokens, &f.items[0]).is_empty());
    }

    #[test]
    fn io_sites_found() {
        let w = ws(&[(
            "a.rs",
            "fn f(mut s: TcpStream) {
                std::fs::write(\"p\", b\"x\").ok();
                let _f = File::open(\"p\");
                s.write_all(b\"hi\").ok();
                s.flush().ok();
                compute();
            }
            fn compute() {}",
        )]);
        let f = &w.files[0];
        let labels: Vec<String> = io_sites(&f.tokens, &f.items[0])
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(
            labels,
            vec!["fs::write", "File::open", ".write_all()", ".flush()"]
        );
    }

    #[test]
    fn mul_sites_exclude_derefs() {
        let w = ws(&[(
            "a.rs",
            "fn f(p: &u32, nb: usize, nc: usize) -> usize {
                let x = *p as usize;
                let id = nb * nc + x;
                id * 2
            }",
        )]);
        let f = &w.files[0];
        let sites = mul_sites(&f.tokens, &f.items[0]);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].window_idents.iter().any(|i| i == "nb"));
    }

    #[test]
    fn waiver_parsing_multi_rule() {
        assert_eq!(
            waiver_rules("x.unwrap() // lint: allow(no-unwrap, panic-reach)"),
            vec!["no-unwrap", "panic-reach"]
        );
        assert!(waiver_rules("plain line").is_empty());
    }

    #[test]
    fn waiver_on_preceding_comment_line_covers_the_site() {
        let w = ws(&[(
            "a.rs",
            "fn f(v: &[u32]) -> u32 {
                // justification — lint: allow(panic-reach)
                v[0]
            }
            fn g(v: &[u32]) -> u32 { v[0] }",
        )]);
        // site on line 3 is covered by the comment on line 2
        assert!(w.is_waived(0, 3, "panic-reach"));
        // same-line coverage still works
        assert!(w.is_waived(0, 2, "panic-reach"));
        // an unrelated rule is not waived
        assert!(!w.is_waived(0, 3, "no-unwrap"));
        // g's site (line 5) has no waiver anywhere near it
        assert!(!w.is_waived(0, 5, "panic-reach"));
    }
}
