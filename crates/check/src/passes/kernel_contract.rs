//! Kernel-contract completeness: every `KernelKind` variant must be
//! fully wired — registered in `KernelKind::ALL`, named in `as_str`,
//! dispatched in `build_validated`, and its kernel type's defining file
//! must show a write-set derivation (a `*_write_sets` helper from
//! `checked.rs` or direct `WriteSet` construction), obs span
//! instrumentation (`"mttkrp/…"`), and a fuzz differential hook (the
//! fuzz crate iterating `KernelKind::ALL`, or naming the variant).
//!
//! The point: adding kernel #8 as a bare enum variant + `mttkrp` impl
//! compiles — `ALL` is a hand-maintained const, the write-set
//! derivation and span are conventions, and the fuzzer only exercises
//! what `ALL` lists. This pass turns each convention into a CI failure.

use super::Workspace;
use crate::lexer::TokenKind;
use crate::lint::{Finding, Rule};

/// Path of the kernel registry file.
const KERNEL_RS: &str = "crates/core/src/kernel.rs";

/// Runs the pass. No-op when the workspace has no kernel registry.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let Some(kfi) = ws.files.iter().position(|f| f.path.ends_with(KERNEL_RS)) else {
        return Vec::new();
    };
    let kfile = &ws.files[kfi];
    let Some((variants, enum_line)) = enum_variants(&kfile.tokens) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let kf = |line: usize, excerpt: String| Finding {
        rule: Rule::KernelContract,
        file: kfile.path.clone(),
        line,
        func: None,
        excerpt,
        chain: Vec::new(),
        waived: ws.is_waived(kfi, line, Rule::KernelContract.name()),
    };

    // `ALL` const must list every variant.
    let all_range = const_all_range(&kfile.tokens);
    // `as_str` / `build_validated` bodies.
    // `as_str` is a `KernelKind` method; `build_validated` is a free fn
    // in the real tree — accept either shape.
    let body_of = |name: &str| {
        kfile
            .items
            .iter()
            .find(|it| {
                it.name == name && (it.owner.as_deref() == Some("KernelKind") || it.owner.is_none())
            })
            .map(|it| (it.body, it.line))
    };
    let as_str = body_of("as_str");
    let build = body_of("build_validated");

    // Fuzz hook evidence: the fuzz crate iterating KernelKind::ALL
    // covers every variant at once.
    let fuzz_files: Vec<&super::SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.path.contains("crates/fuzz/src"))
        .collect();
    let fuzz_iterates_all = fuzz_files.iter().any(|f| {
        f.tokens.windows(3).any(|w| {
            w[0].kind.is_ident("KernelKind")
                && w[1].kind.is_punct("::")
                && w[2].kind.is_ident("ALL")
        })
    });

    for (variant, vline) in &variants {
        match &all_range {
            Some((lo, hi, all_line)) => {
                let listed = kfile.tokens[*lo..*hi]
                    .iter()
                    .any(|t| t.kind.is_ident(variant));
                if !listed {
                    out.push(kf(
                        *all_line,
                        format!("KernelKind::{variant} is missing from KernelKind::ALL"),
                    ));
                }
            }
            None => out.push(kf(enum_line, "KernelKind::ALL const not found".to_string())),
        }
        for (fn_name, slot) in [("as_str", &as_str), ("build_validated", &build)] {
            match slot {
                Some(((open, close), fn_line)) if *open != usize::MAX => {
                    let covered = kfile.tokens[*open..=*close]
                        .iter()
                        .any(|t| t.kind.is_ident(variant));
                    if !covered {
                        out.push(kf(
                            *fn_line,
                            format!("KernelKind::{variant} has no arm in {fn_name}"),
                        ));
                    }
                }
                _ => out.push(kf(
                    enum_line,
                    format!("KernelKind::{fn_name} not found (needed for {variant})"),
                )),
            }
        }
        // Kernel type from the dispatch arm → defining file obligations.
        let Some(kernel_ty) = build.as_ref().and_then(|((open, close), _)| {
            kernel_type_of(
                &kfile.tokens[*open..=(*close).min(kfile.tokens.len() - 1)],
                variant,
            )
        }) else {
            continue; // missing dispatch arm already reported
        };
        let impl_file = ws.graph.fns.iter().find(|n| {
            n.item.name == "mttkrp"
                && n.item.owner.as_deref() == Some(kernel_ty.as_str())
                && n.item.trait_name.as_deref() == Some("MttkrpKernel")
        });
        let Some(impl_node) = impl_file else {
            out.push(kf(
                *vline,
                format!("{kernel_ty} (KernelKind::{variant}) has no MttkrpKernel::mttkrp impl"),
            ));
            continue;
        };
        let ifi = ws.file_index(&impl_node.path).unwrap_or(kfi);
        let itokens = &ws.files[ifi].tokens;
        let has_span = itokens.iter().any(|t| match &t.kind {
            TokenKind::Str(s) => s.contains("mttkrp/"),
            _ => false,
        });
        let has_write_sets = itokens.iter().any(|t| {
            t.kind
                .ident()
                .is_some_and(|w| w == "WriteSet" || w.ends_with("_write_sets"))
        });
        let iline = impl_node.item.line;
        let impl_finding = |excerpt: String| Finding {
            rule: Rule::KernelContract,
            file: impl_node.path.clone(),
            line: iline,
            func: Some(impl_node.item.qualified()),
            excerpt,
            chain: Vec::new(),
            waived: ws.is_waived(ifi, iline, Rule::KernelContract.name()),
        };
        if !has_span {
            out.push(impl_finding(format!(
                "{kernel_ty} (KernelKind::{variant}) has no \"mttkrp/…\" obs span"
            )));
        }
        if !has_write_sets {
            out.push(impl_finding(format!(
                "{kernel_ty} (KernelKind::{variant}) has no write-set derivation (checked.rs helper or WriteSet)"
            )));
        }
        if !fuzz_iterates_all {
            let named = fuzz_files
                .iter()
                .any(|f| f.tokens.iter().any(|t| t.kind.is_ident(variant)));
            if !named && !fuzz_files.is_empty() {
                out.push(kf(
                    *vline,
                    format!(
                        "KernelKind::{variant} has no fuzz differential hook (fuzz crate neither iterates ALL nor names it)"
                    ),
                ));
            }
        }
    }
    out
}

/// Finds `enum KernelKind { … }`: returns the unit-variant names with
/// their lines, and the enum's line.
fn enum_variants(tokens: &[crate::lexer::Token]) -> Option<(Vec<(String, usize)>, usize)> {
    let pos = tokens
        .windows(2)
        .position(|w| w[0].kind.is_ident("enum") && w[1].kind.is_ident("KernelKind"))?;
    let open = (pos..tokens.len()).find(|&i| tokens[i].kind.is_punct("{"))?;
    let close = crate::items::match_bracket(tokens, open, "{", "}");
    let mut variants = Vec::new();
    let mut i = open + 1;
    while i < close.min(tokens.len()) {
        match &tokens[i].kind {
            // Skip attributes on variants.
            TokenKind::Punct("#") if tokens.get(i + 1).is_some_and(|t| t.kind.is_punct("[")) => {
                i = crate::items::match_bracket(tokens, i + 1, "[", "]") + 1;
                continue;
            }
            TokenKind::Ident(name) => {
                let next = tokens.get(i + 1).map(|t| &t.kind);
                if matches!(
                    next,
                    Some(TokenKind::Punct(",")) | Some(TokenKind::Punct("}"))
                ) {
                    variants.push((name.clone(), tokens[i].line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((variants, tokens[pos].line))
}

/// Finds the token range of `const ALL … ;` and its line.
fn const_all_range(tokens: &[crate::lexer::Token]) -> Option<(usize, usize, usize)> {
    let pos = tokens
        .windows(2)
        .position(|w| w[0].kind.is_ident("const") && w[1].kind.is_ident("ALL"))?;
    // The terminating `;` is the first one outside brackets — the array
    // type `[KernelKind; N]` has one inside.
    let mut depth = 0i64;
    let mut end = tokens.len();
    for (i, tok) in tokens.iter().enumerate().skip(pos) {
        match &tok.kind {
            k if k.is_punct("[") || k.is_punct("(") => depth += 1,
            k if k.is_punct("]") || k.is_punct(")") => depth -= 1,
            k if k.is_punct(";") && depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some((pos, end, tokens[pos].line))
}

/// In `build_validated`'s body, finds the `…Kernel` type constructed in
/// the arm for `variant`.
fn kernel_type_of(body: &[crate::lexer::Token], variant: &str) -> Option<String> {
    let pos = body.iter().position(|t| t.kind.is_ident(variant))?;
    for t in &body[pos..(pos + 40).min(body.len())] {
        if let Some(w) = t.kind.ident() {
            if w != variant && w.ends_with("Kernel") && w != "MttkrpKernel" {
                return Some(w.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-variant registry with full wiring.
    fn wired() -> Vec<(&'static str, String)> {
        vec![
            (
                "crates/core/src/kernel.rs",
                "pub enum KernelKind { Coo, Bcoo }
                 impl KernelKind {
                     pub const ALL: [KernelKind; 2] = [KernelKind::Coo, KernelKind::Bcoo];
                     pub fn as_str(&self) -> &str { match self { KernelKind::Coo => \"coo\", KernelKind::Bcoo => \"bcoo\" } }
                     pub fn build_validated(&self) -> Box<dyn MttkrpKernel> {
                         match self {
                             KernelKind::Coo => Box::new(CooKernel),
                             KernelKind::Bcoo => Box::new(BcooKernel),
                         }
                     }
                 }"
                .to_string(),
            ),
            (
                "crates/core/src/coo.rs",
                "pub struct CooKernel; impl MttkrpKernel for CooKernel {
                     fn mttkrp(&self) { let _s = obs::span(\"mttkrp/coo\"); let w = WriteSet::new(0, 0..4); drop(w); }
                 }"
                .to_string(),
            ),
            (
                "crates/core/src/bcoo.rs",
                "pub struct BcooKernel; impl MttkrpKernel for BcooKernel {
                     fn mttkrp(&self) { let _s = obs::span(\"mttkrp/bcoo\"); let v = bcoo_row_write_sets(); drop(v); }
                 }"
                .to_string(),
            ),
            (
                "crates/fuzz/src/diff.rs",
                "pub fn sweep() { for kind in KernelKind::ALL { run(kind); } } fn run(_k: KernelKind) {}"
                    .to_string(),
            ),
        ]
    }

    fn ws_of(files: Vec<(&str, String)>) -> crate::passes::Workspace {
        crate::passes::Workspace::from_sources(
            &files
                .into_iter()
                .map(|(p, s)| (p.to_string(), s))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn fully_wired_registry_is_clean() {
        let f = run(&ws_of(wired()));
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn variant_missing_from_all_is_flagged() {
        let mut files = wired();
        files[0].1 = files[0].1.replace(
            "[KernelKind; 2] = [KernelKind::Coo, KernelKind::Bcoo]",
            "[KernelKind; 1] = [KernelKind::Coo]",
        );
        let f = run(&ws_of(files));
        assert!(f
            .iter()
            .any(|x| x.excerpt.contains("missing from KernelKind::ALL")));
    }

    #[test]
    fn missing_write_set_derivation_is_flagged() {
        let mut files = wired();
        files[2].1 = files[2]
            .1
            .replace("let v = bcoo_row_write_sets(); drop(v);", "");
        let f = run(&ws_of(files));
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("no write-set derivation"));
        assert_eq!(f[0].file, "crates/core/src/bcoo.rs");
    }

    #[test]
    fn missing_span_is_flagged() {
        let mut files = wired();
        files[1].1 = files[1]
            .1
            .replace("let _s = obs::span(\"mttkrp/coo\");", "");
        let f = run(&ws_of(files));
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("no \"mttkrp/…\" obs span"));
    }

    #[test]
    fn missing_dispatch_arm_is_flagged() {
        let mut files = wired();
        files[0].1 = files[0]
            .1
            .replace("KernelKind::Bcoo => Box::new(BcooKernel),", "");
        let f = run(&ws_of(files));
        assert!(f
            .iter()
            .any(|x| x.excerpt.contains("no arm in build_validated")));
    }

    #[test]
    fn fuzz_hook_via_named_variant_when_not_iterating_all() {
        let mut files = wired();
        files[3].1 =
            "pub fn sweep() { run(KernelKind::Coo); } fn run(_k: KernelKind) {}".to_string();
        let f = run(&ws_of(files));
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("no fuzz differential hook"));
        assert!(f[0].excerpt.contains("Bcoo"));
    }
}
