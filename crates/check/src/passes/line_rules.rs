//! The v1 line-oriented rules, ported onto the token stream. The old
//! scanner carried its own half-lexer (string stripping, comment
//! stripping, `#[cfg(test)]` counting) and got cross-line state wrong —
//! raw strings spanning lines and `'}'` char literals could desync it.
//! Here the shared lexer has already resolved all of that, so the rules
//! reduce to token patterns over non-test fn bodies.

use super::{is_shim, is_test_path, Workspace};
use crate::lexer::TokenKind;
use crate::lint::{Finding, Rule};

/// Whether `path` is in the `.unwrap()`/`.expect()`-free zone.
fn in_unwrap_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src") || path.starts_with("crates/core/src")
}

/// Whether `path` must document its `pub fn`s.
fn in_doc_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
}

/// Runs the three ported rules: `no-unwrap`, `pub-fn-doc`,
/// `no-lock-unwrap`.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if is_shim(&file.path) || is_test_path(&file.path) {
            continue;
        }
        for item in &file.items {
            if item.in_test {
                continue;
            }
            // pub-fn-doc: core pub fns need a doc comment.
            if in_doc_scope(&file.path) && item.is_pub && !item.has_doc {
                out.push(Finding {
                    rule: Rule::PubFnDoc,
                    file: file.path.clone(),
                    line: item.line,
                    func: Some(item.qualified()),
                    excerpt: ws.excerpt(fi, item.line),
                    chain: Vec::new(),
                    waived: ws.is_waived(fi, item.line, Rule::PubFnDoc.name()),
                });
            }
            let (open, close) = item.body;
            if open == usize::MAX || close >= file.tokens.len() {
                continue;
            }
            let body = &file.tokens[open..=close];
            for (i, tok) in body.iter().enumerate() {
                let Some(name) = tok.kind.ident() else {
                    continue;
                };
                let is_method_call = i > 0
                    && body[i - 1].kind.is_punct(".")
                    && body.get(i + 1).is_some_and(|t| t.kind.is_punct("("));
                if !is_method_call {
                    continue;
                }
                // no-lock-unwrap: `.lock().unwrap()` / `.lock().expect()`
                // anywhere outside the shims — poison handling belongs in
                // `sync.rs`, not at call sites.
                if (name == "unwrap" || name == "expect")
                    && i >= 4
                    && body[i - 2].kind.is_punct(")")
                    && matches!(&body[i - 3].kind, TokenKind::Punct("("))
                    && body[i - 4].kind.is_ident("lock")
                {
                    out.push(Finding {
                        rule: Rule::NoLockUnwrap,
                        file: file.path.clone(),
                        line: tok.line,
                        func: Some(item.qualified()),
                        excerpt: ws.excerpt(fi, tok.line),
                        chain: Vec::new(),
                        waived: ws.is_waived(fi, tok.line, Rule::NoLockUnwrap.name()),
                    });
                    continue; // don't double-report as no-unwrap
                }
                // no-unwrap: `.unwrap()` / `.expect()` in serve and core.
                if (name == "unwrap" || name == "expect") && in_unwrap_scope(&file.path) {
                    out.push(Finding {
                        rule: Rule::NoUnwrap,
                        file: file.path.clone(),
                        line: tok.line,
                        func: Some(item.qualified()),
                        excerpt: ws.excerpt(fi, tok.line),
                        chain: Vec::new(),
                        waived: ws.is_waived(fi, tok.line, Rule::NoUnwrap.name()),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn unwrap_flagged_in_scope_only() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "/// D.\npub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
            ),
            (
                "crates/tensor/src/b.rs",
                "/// D.\npub fn g(o: Option<u32>) -> u32 { o.unwrap() }\n",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "no-unwrap");
        assert_eq!(f[0].file, "crates/core/src/a.rs");
        assert_eq!(f[0].func.as_deref(), Some("f"));
    }

    #[test]
    fn cross_line_raw_string_does_not_confuse_the_port() {
        // The v1 scanner lost sync on this input: the raw string spans
        // lines and contains `.unwrap()`.
        let src = "/// D.\npub fn f() -> String {\n  let s = r#\"\n x.unwrap()\n\"#.to_string();\n  s\n}\n";
        let w = ws(&[("crates/core/src/a.rs", src)]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn char_literal_brace_does_not_desync() {
        let src = "/// D.\npub fn f(c: char, o: Option<u32>) -> u32 {\n  if c == '}' { return 0; }\n  o.unwrap()\n}\n";
        let w = ws(&[("crates/core/src/a.rs", src)]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn pub_fn_doc_in_core_only() {
        let w = ws(&[
            ("crates/core/src/a.rs", "pub fn undocumented() {}\n"),
            ("crates/serve/src/b.rs", "pub fn undocumented() {}\n"),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "pub-fn-doc");
        assert_eq!(f[0].file, "crates/core/src/a.rs");
    }

    #[test]
    fn lock_unwrap_flagged_everywhere_but_shims() {
        let w = ws(&[
            (
                "crates/tensor/src/a.rs",
                "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
            ),
            (
                "crates/serve/src/shims/t.rs",
                "fn g(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
            ),
        ]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "no-lock-unwrap");
    }

    #[test]
    fn tests_and_waivers_respected() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "#[cfg(test)]\nmod tests {\n  fn t(o: Option<u32>) { o.unwrap(); }\n}\n/// D.\npub fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint: allow(no-unwrap)\n",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }
}
