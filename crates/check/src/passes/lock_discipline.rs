//! Lock discipline for the serve layer: while any `sync.rs` guard is
//! live, a function may not perform file/socket I/O — directly or
//! through any callee — and lock acquisition must follow the single
//! global order **registry → scheduler → plan-cache**.
//!
//! Guard tracking is per function body: an acquisition is a call
//! through `sync::lock` / `sync::read` / `sync::write` /
//! `sync::wait_timeout`; a `let`-bound guard lives until `drop(var)` or
//! the end of its enclosing block, an unbound (temporary) guard until
//! the end of its statement. The lock *class* is inferred from the
//! field the guard protects (`entries` → registry, `jobs`/`changed` →
//! scheduler, `plans`/`compute`/`last_trace` → plan-cache); unknown
//! fields get no class and are exempt from ordering (but not from the
//! I/O rule).
//!
//! The I/O rule is transitive: a call under a guard into any function
//! whose call-graph closure reaches `fs::…`/socket I/O is a finding,
//! with the witness chain down to the I/O site attached.

use super::{io_sites, is_shim, is_test_path, Workspace};
use crate::callgraph::FnId;
use crate::lexer::TokenKind;
use crate::lint::{ChainHop, Finding, Rule};
use std::collections::BTreeMap;

/// Lock classes in global acquisition order.
const CLASSES: &[(&str, u8, &str)] = &[
    ("entries", 0, "registry"),
    ("jobs", 1, "scheduler"),
    ("changed", 1, "scheduler"),
    ("table", 1, "scheduler"),
    ("plans", 2, "plan-cache"),
    ("compute", 2, "plan-cache"),
    ("last_trace", 2, "plan-cache"),
];

/// Guard-acquiring functions in `sync.rs`.
const SYNC_FNS: &[&str] = &["lock", "read", "write", "wait_timeout"];

/// A live guard during the body scan.
#[derive(Debug, Clone)]
struct Guard {
    /// Lock class (None = unknown field, exempt from ordering).
    class: Option<u8>,
    /// Class label for messages.
    label: String,
    /// Bound variable, or None for statement temporaries.
    var: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
    /// Acquisition line.
    line: usize,
}

/// Runs the pass over `crates/serve/src` function bodies.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let (does_io, io_next) = io_closure(ws);
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.path.contains("crates/serve/src")
            || is_shim(&file.path)
            || is_test_path(&file.path)
        {
            continue;
        }
        for item in &file.items {
            if item.in_test {
                continue;
            }
            let intervals = guard_intervals(ws, fi, item, &mut out);
            if intervals.is_empty() {
                continue;
            }
            let under_guard = |line: usize| {
                intervals
                    .iter()
                    .find(|(g, end)| g.line <= line && line <= *end)
            };
            // Direct I/O sites under a guard.
            for (line, label) in io_sites(&file.tokens, item) {
                if let Some((g, _)) = under_guard(line) {
                    out.push(finding(
                        ws,
                        fi,
                        item,
                        line,
                        Vec::new(),
                        &format!("direct I/O ({label}) while holding the {} lock", g.label),
                    ));
                }
            }
            // Calls into I/O-reaching callees under a guard. Graph edges
            // already carry call-site lines.
            let fn_id = match fn_id_of(ws, &file.path, item) {
                Some(id) => id,
                None => continue,
            };
            let mut seen_lines: BTreeMap<(usize, FnId), ()> = BTreeMap::new();
            for edge in ws.graph.callees(fn_id) {
                if !does_io[edge.callee] || under_guard(edge.line).is_none() {
                    continue;
                }
                if seen_lines.insert((edge.line, edge.callee), ()).is_some() {
                    continue;
                }
                let g = &under_guard(edge.line).unwrap().0;
                let chain = io_witness(ws, edge.callee, &io_next);
                let callee_name = ws.graph.fns[edge.callee].item.qualified();
                out.push(finding(
                    ws,
                    fi,
                    item,
                    edge.line,
                    chain,
                    &format!(
                        "call to {callee_name} (reaches I/O) while holding the {} lock",
                        g.label
                    ),
                ));
            }
        }
    }
    out
}

/// Builds a finding; the reason goes nowhere today beyond the excerpt,
/// but the chain carries the I/O witness when transitive.
fn finding(
    ws: &Workspace,
    fi: usize,
    item: &crate::items::FnItem,
    line: usize,
    chain: Vec<ChainHop>,
    _reason: &str,
) -> Finding {
    Finding {
        rule: Rule::LockDiscipline,
        file: ws.files[fi].path.clone(),
        line,
        func: Some(item.qualified()),
        excerpt: ws.excerpt(fi, line),
        chain,
        waived: ws.is_waived(fi, line, Rule::LockDiscipline.name()),
    }
}

/// Scans one body, returning guard live intervals `(guard, end_line)`
/// and pushing lock-order findings directly.
fn guard_intervals(
    ws: &Workspace,
    fi: usize,
    item: &crate::items::FnItem,
    out: &mut Vec<Finding>,
) -> Vec<(Guard, usize)> {
    let file = &ws.files[fi];
    let (open, close) = item.body;
    if open == usize::MAX || close >= file.tokens.len() {
        return Vec::new();
    }
    let body = &file.tokens[open..=close];
    let mut depth = 0usize;
    let mut live: Vec<Guard> = Vec::new();
    let mut done: Vec<(Guard, usize)> = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let line = body[i].line;
        match &body[i].kind {
            TokenKind::Punct("{") => depth += 1,
            TokenKind::Punct("}") => {
                depth = depth.saturating_sub(1);
                let (dead, alive): (Vec<_>, Vec<_>) = live.drain(..).partition(|g| g.depth > depth);
                live = alive;
                done.extend(dead.into_iter().map(|g| (g, line)));
            }
            TokenKind::Punct(";") => {
                let (dead, alive): (Vec<_>, Vec<_>) = live
                    .drain(..)
                    .partition(|g| g.var.is_none() && g.depth == depth);
                live = alive;
                done.extend(dead.into_iter().map(|g| (g, line)));
            }
            // drop(var)
            TokenKind::Ident(w)
                if w == "drop" && body.get(i + 1).is_some_and(|t| t.kind.is_punct("(")) =>
            {
                if let Some(var) = body.get(i + 2).and_then(|t| t.kind.ident()) {
                    let (dead, alive): (Vec<_>, Vec<_>) =
                        live.drain(..).partition(|g| g.var.as_deref() == Some(var));
                    live = alive;
                    done.extend(dead.into_iter().map(|g| (g, line)));
                }
            }
            TokenKind::Ident(w) if w == "sync" => {
                // sync :: fn ( ...field... )
                let is_acq = body.get(i + 1).is_some_and(|t| t.kind.is_punct("::"))
                    && body
                        .get(i + 2)
                        .and_then(|t| t.kind.ident())
                        .is_some_and(|f| SYNC_FNS.contains(&f));
                if is_acq && body.get(i + 3).is_some_and(|t| t.kind.is_punct("(")) {
                    let args_close = crate::items::match_bracket(body, i + 3, "(", ")");
                    let (class, label) = classify(&body[i + 3..args_close.min(body.len())]);
                    // Lock-order check against live guards.
                    if let Some(c) = class {
                        if let Some(held) = live
                            .iter()
                            .filter_map(|g| g.class.map(|h| (h, g.label.clone(), g.line)))
                            .find(|(h, _, _)| *h > c)
                        {
                            out.push(Finding {
                                rule: Rule::LockDiscipline,
                                file: file.path.clone(),
                                line,
                                func: Some(item.qualified()),
                                excerpt: format!(
                                    "{} (acquires {} while holding {} — order is registry → scheduler → plan-cache)",
                                    ws.excerpt(fi, line),
                                    label,
                                    held.1
                                ),
                                chain: Vec::new(),
                                waived: ws.is_waived(fi, line, Rule::LockDiscipline.name()),
                            });
                        }
                    }
                    // Binding: `let [mut] v = … sync::f(…)` within the
                    // current statement, or `v = sync::wait_timeout(…)`
                    // reassigning an existing guard.
                    let var = binding_var(body, i);
                    let reassign = var
                        .as_deref()
                        .is_some_and(|v| live.iter().any(|g| g.var.as_deref() == Some(v)));
                    if !reassign {
                        live.push(Guard {
                            class,
                            label,
                            var,
                            depth,
                            line,
                        });
                    }
                    i = args_close + 1;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let end_line = body.last().map(|t| t.line).unwrap_or(0);
    done.extend(live.into_iter().map(|g| (g, end_line)));
    done
}

/// Infers the lock class from the idents in the acquisition's argument
/// tokens.
fn classify(args: &[crate::lexer::Token]) -> (Option<u8>, String) {
    for t in args {
        if let Some(w) = t.kind.ident() {
            if let Some((_, class, label)) = CLASSES.iter().find(|(f, _, _)| *f == w) {
                return (Some(*class), label.to_string());
            }
        }
    }
    (None, "unclassified".to_string())
}

/// Finds the `let`-bound (or reassigned) variable for the statement
/// containing token `at`: scans back to the statement start.
fn binding_var(body: &[crate::lexer::Token], at: usize) -> Option<String> {
    let mut start = at;
    while start > 0 {
        match &body[start - 1].kind {
            TokenKind::Punct(";") | TokenKind::Punct("{") | TokenKind::Punct("}") => break,
            _ => start -= 1,
        }
    }
    let stmt = &body[start..at];
    // `let [mut] v = …` → v; bare `v = …` (reassignment) → v.
    if stmt.first().is_some_and(|t| t.kind.is_ident("let")) {
        let mut idx = 1;
        if stmt.get(idx).is_some_and(|t| t.kind.is_ident("mut")) {
            idx += 1;
        }
        let v = stmt.get(idx).and_then(|t| t.kind.ident())?;
        if stmt.get(idx + 1).is_some_and(|t| t.kind.is_punct("=")) {
            return Some(v.to_string());
        }
        return None;
    }
    let v = stmt.first().and_then(|t| t.kind.ident())?;
    if stmt.get(1).is_some_and(|t| t.kind.is_punct("=")) {
        return Some(v.to_string());
    }
    None
}

/// Per-function witness step: the callee hop that reaches I/O (`None`
/// for a direct site) and the relevant source line.
type IoStep = Option<(Option<FnId>, usize)>;

/// Graph-wide transitive does-I/O closure; `io_next[f]` records either
/// the direct I/O line in `f` or the edge to the callee that reaches
/// I/O, for witness reconstruction.
fn io_closure(ws: &Workspace) -> (Vec<bool>, Vec<IoStep>) {
    let n = ws.graph.fns.len();
    let mut does = vec![false; n];
    let mut next: Vec<IoStep> = vec![None; n];
    for (id, node) in ws.graph.fns.iter().enumerate() {
        if is_shim(&node.path) || is_test_path(&node.path) || node.item.in_test {
            continue;
        }
        let Some(fi) = ws.file_index(&node.path) else {
            continue;
        };
        if let Some((line, _)) = io_sites(&ws.files[fi].tokens, &node.item).first() {
            does[id] = true;
            next[id] = Some((None, *line));
        }
    }
    loop {
        let mut changed = false;
        for id in 0..n {
            if does[id] {
                continue;
            }
            for edge in ws.graph.callees(id) {
                if does[edge.callee] {
                    does[id] = true;
                    next[id] = Some((Some(edge.callee), edge.line));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (does, next)
}

/// Witness chain from `start` down to the direct I/O site.
fn io_witness(
    ws: &Workspace,
    start: FnId,
    io_next: &[Option<(Option<FnId>, usize)>],
) -> Vec<ChainHop> {
    let mut chain = Vec::new();
    let mut cur = start;
    loop {
        let node = &ws.graph.fns[cur];
        match io_next[cur] {
            Some((Some(succ), line)) => {
                chain.push(ChainHop {
                    func: node.item.qualified(),
                    file: node.path.clone(),
                    line,
                });
                cur = succ;
            }
            Some((None, line)) => {
                chain.push(ChainHop {
                    func: node.item.qualified(),
                    file: node.path.clone(),
                    line,
                });
                break;
            }
            None => break,
        }
        if chain.len() > 64 {
            break; // cycles in the over-approximated graph
        }
    }
    chain
}

/// Locates the graph node for an item by path + name + line.
fn fn_id_of(ws: &Workspace, path: &str, item: &crate::items::FnItem) -> Option<FnId> {
    ws.graph
        .fns
        .iter()
        .position(|n| n.path == path && n.item.name == item.name && n.item.line == item.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn direct_io_under_guard_is_flagged() {
        let w = ws(&[(
            "crates/serve/src/registry.rs",
            "impl Registry { fn save(&self) {
                 let map = crate::sync::write(&self.entries);
                 std::fs::write(\"p\", b\"x\").ok();
                 drop(map);
             } }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "lock-discipline");
    }

    #[test]
    fn io_after_drop_is_fine() {
        let w = ws(&[(
            "crates/serve/src/registry.rs",
            "impl Registry { fn save(&self) {
                 let map = crate::sync::write(&self.entries);
                 let n = map.len();
                 drop(map);
                 std::fs::write(\"p\", format!(\"{n}\")).ok();
             } }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn scoped_guard_releases_at_block_end() {
        let w = ws(&[(
            "crates/serve/src/plan_cache.rs",
            "impl PlanCache { fn save(&self) {
                 let s = { let plans = crate::sync::lock(&self.plans); plans.len() };
                 std::fs::write(\"p\", format!(\"{s}\")).ok();
             } }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn transitive_io_through_callee_carries_witness() {
        let w = ws(&[(
            "crates/serve/src/registry.rs",
            "impl Registry {
                 fn register(&self) {
                     let mut map = crate::sync::write(&self.entries);
                     self.spill();
                     drop(map);
                 }
                 fn spill(&self) { write_tile(); }
             }
             fn write_tile() { std::fs::write(\"t\", b\"x\").ok(); }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        let hops: Vec<&str> = f[0].chain.iter().map(|h| h.func.as_str()).collect();
        assert_eq!(hops, vec!["Registry::spill", "write_tile"]);
    }

    #[test]
    fn lock_order_violation_flagged() {
        let w = ws(&[(
            "crates/serve/src/scheduler.rs",
            "impl Scheduler { fn bad(&self) {
                 let jobs = crate::sync::lock(&self.table.jobs);
                 let map = crate::sync::write(&self.entries);
                 drop(map); drop(jobs);
             } }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].excerpt.contains("order is registry"));
    }

    #[test]
    fn correct_order_and_temporaries_pass() {
        let w = ws(&[(
            "crates/serve/src/registry.rs",
            "impl Registry { fn good(&self) {
                 let map = crate::sync::write(&self.entries);
                 let jobs = crate::sync::lock(&self.table.jobs);
                 drop(jobs); drop(map);
                 crate::sync::lock(&self.plans).insert(1, 2);
                 std::fs::write(\"p\", b\"x\").ok();
             } }",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn waiver_applies_at_call_line() {
        let w = ws(&[(
            "crates/serve/src/plan_cache.rs",
            "impl PlanCache { fn compute(&self) {\n    let _g = crate::sync::lock(&self.compute);\n    std::fs::write(\"p\", b\"x\").ok(); // single-flight by design — lint: allow(lock-discipline)\n} }",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }
}
