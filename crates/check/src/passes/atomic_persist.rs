//! `atomic-persist`: durable artifacts must be published atomically.
//!
//! Every file this workspace persists — `.tnsb` tile stores, the plan
//! cache, bench records — goes through `tenblock_tensor::persist`
//! (write to a temp name, `sync_all`, rename over the final path, sync
//! the parent dir), so a crash mid-write can never leave a half-written
//! file visible at the final path. This pass keeps that invariant
//! honest: inside the persistence-owning modules, a direct `fs::write`,
//! `File::create`, or `OpenOptions` open is a finding unless waived.
//! The one sanctioned site is `AtomicFile::create` itself (it targets
//! the temp name the rename makes atomic) — it carries a
//! `lint: allow(atomic-persist)` waiver at the call.
//!
//! Test code is exempt: tests plant corrupt or partial files on purpose.

use super::{is_shim, is_test_path, Workspace};
use crate::callgraph::CallKind;
use crate::lint::{Finding, Rule};

/// Modules that own a durable on-disk artifact.
const PERSIST_SCOPE: &[&str] = &[
    "crates/tensor/src/tile_store.rs",
    "crates/tensor/src/io_bin.rs",
    "crates/tensor/src/persist.rs",
    "crates/serve/src/plan_cache.rs",
    "crates/serve/src/registry.rs",
];

/// Whether `path` owns persisted state.
fn in_persist_scope(path: &str) -> bool {
    PERSIST_SCOPE
        .iter()
        .any(|p| path.ends_with(p) || path == *p)
}

/// Direct-write constructors that bypass the temp-file + rename
/// protocol.
fn is_direct_write(kind: &CallKind, name: &str) -> bool {
    match kind {
        CallKind::Qualified(owner) => {
            (owner == "fs" && matches!(name, "write" | "copy"))
                || (owner == "File" && name == "create")
                || (owner == "OpenOptions" && name == "new")
        }
        _ => false,
    }
}

/// Runs the `atomic-persist` pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if is_shim(&file.path) || is_test_path(&file.path) || !in_persist_scope(&file.path) {
            continue;
        }
        for item in &file.items {
            if item.in_test {
                continue;
            }
            for call in crate::callgraph::extract_calls(&file.tokens, item) {
                if !is_direct_write(&call.kind, &call.name) {
                    continue;
                }
                let label = match &call.kind {
                    CallKind::Qualified(owner) => format!("{owner}::{}", call.name),
                    _ => format!(".{}()", call.name),
                };
                out.push(Finding {
                    rule: Rule::AtomicPersist,
                    file: file.path.clone(),
                    line: call.line,
                    func: Some(item.qualified()),
                    excerpt: format!(
                        "direct write ({label}) in a persistence module — use persist::atomic_write / AtomicFile"
                    ),
                    chain: Vec::new(),
                    waived: ws.is_waived(fi, call.line, Rule::AtomicPersist.name()),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::test_util::ws;

    #[test]
    fn direct_write_in_persist_scope_is_flagged() {
        let w = ws(&[(
            "crates/serve/src/plan_cache.rs",
            "fn save(p: &str) { std::fs::write(p, b\"x\").ok(); }\n",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "atomic-persist");
        assert!(f[0].excerpt.contains("fs::write"));
    }

    #[test]
    fn out_of_scope_and_test_code_are_exempt() {
        let w = ws(&[
            (
                "crates/analysis/src/report.rs",
                "fn dump(p: &str) { std::fs::write(p, b\"x\").ok(); }\n",
            ),
            (
                "crates/serve/src/registry.rs",
                "#[cfg(test)]\nmod tests {\n  fn plant(p: &str) { std::fs::write(p, b\"garbage\").ok(); }\n}\n",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn waiver_covers_the_sanctioned_temp_create() {
        let w = ws(&[(
            "crates/tensor/src/persist.rs",
            "fn create(tmp: &str) {\n  // temp name, made atomic by the rename. lint: allow(atomic-persist)\n  let _f = std::fs::File::create(tmp);\n}\n",
        )]);
        let f = run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }

    #[test]
    fn openoptions_and_copy_count_as_direct_writes() {
        let w = ws(&[(
            "crates/tensor/src/tile_store.rs",
            "fn f(p: &str) {\n  let _o = OpenOptions::new();\n  std::fs::copy(p, \"q\").ok();\n}\n",
        )]);
        assert_eq!(run(&w).len(), 2);
    }
}
