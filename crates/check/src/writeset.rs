//! Write-set race detection for parallel output-row partitions.
//!
//! A parallel MTTKRP kernel hands each worker task a contiguous range of
//! output rows. Correctness rests on two properties the type system cannot
//! see: the *claims* must tile the output (pairwise disjoint, jointly
//! covering), and every row a task actually *touches* — derived from the
//! tensor data it processes — must fall inside its own claim. An off-by-one
//! block boundary breaks the second property and silently races.
//!
//! [`WriteSet`] carries both halves of one task's declaration;
//! [`check_write_sets`] verifies a whole launch before it runs.

use std::ops::Range;

/// Rows listed per violation are capped at this many; the total count is
/// still reported so diagnostics stay bounded on large tensors.
pub const MAX_REPORTED_ROWS: usize = 64;

/// One parallel task's declared output footprint.
#[derive(Debug, Clone)]
pub struct WriteSet {
    /// Task index within the launch (stable across the report).
    pub task: usize,
    /// The contiguous row range this task's buffer covers — its claim.
    pub owned: Range<usize>,
    /// Global rows the task will actually write, derived from the tensor
    /// data (slice ids, block contents, entry coordinates). Order and
    /// duplicates are irrelevant.
    pub touched: Vec<usize>,
}

impl WriteSet {
    /// A claim with no touched rows recorded yet.
    pub fn new(task: usize, owned: Range<usize>) -> WriteSet {
        WriteSet {
            task,
            owned,
            touched: Vec::new(),
        }
    }

    /// Records rows the task will write.
    pub fn touch_all(mut self, rows: impl IntoIterator<Item = usize>) -> WriteSet {
        self.touched.extend(rows);
        self
    }
}

/// One detected violation of the write-set contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two tasks write (or claim) the same rows. `first` owns the rows;
    /// `second` claims or touches them too.
    Overlap {
        /// Task owning the contested rows.
        first: usize,
        /// Task also claiming or touching them.
        second: usize,
        /// The contested rows (sorted, deduped, capped at
        /// [`MAX_REPORTED_ROWS`]).
        rows: Vec<usize>,
        /// Total number of contested rows before capping.
        total: usize,
    },
    /// Output rows no task claims — they would keep stale values.
    Gap {
        /// The unclaimed row range.
        rows: Range<usize>,
    },
    /// A task claims or touches rows outside the output entirely.
    OutOfBounds {
        /// The offending task.
        task: usize,
        /// The out-of-range rows (sorted, deduped, capped).
        rows: Vec<usize>,
        /// Total count before capping.
        total: usize,
    },
    /// A blocking invariant failed before write sets were even formed
    /// (grid, strip plan, or tuner oracle).
    Invariant {
        /// Human-readable description from the oracle.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Overlap {
                first,
                second,
                rows,
                total,
            } => {
                write!(
                    f,
                    "overlap: tasks {first} and {second} both write rows {rows:?}"
                )?;
                if *total > rows.len() {
                    write!(f, " (+{} more)", total - rows.len())?;
                }
                Ok(())
            }
            Violation::Gap { rows } => write!(f, "gap: rows {rows:?} are claimed by no task"),
            Violation::OutOfBounds { task, rows, total } => {
                write!(f, "out of bounds: task {task} writes rows {rows:?}")?;
                if *total > rows.len() {
                    write!(f, " (+{} more)", total - rows.len())?;
                }
                Ok(())
            }
            Violation::Invariant { detail } => write!(f, "invariant: {detail}"),
        }
    }
}

/// A failed checked-mode launch: which kernel, and every violation found.
///
/// All violations are aggregated — a shifted block boundary typically shows
/// up both as an oracle [`Violation::Invariant`] and as a write-set
/// [`Violation::Overlap`] naming the task pair and rows.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Kernel name (as reported by `MttkrpKernel::name`).
    pub kernel: String,
    /// Everything found, oracle failures first.
    pub violations: Vec<Violation>,
}

impl RaceReport {
    /// `Ok(())` when `violations` is empty, otherwise the report.
    pub fn check(kernel: &str, violations: Vec<Violation>) -> Result<(), RaceReport> {
        if violations.is_empty() {
            Ok(())
        } else {
            Err(RaceReport {
                kernel: kernel.to_string(),
                violations,
            })
        }
    }

    /// All rows named by overlap violations (sorted, deduped) — the rows
    /// two tasks would race on.
    pub fn overlapping_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .violations
            .iter()
            .filter_map(|v| match v {
                Violation::Overlap { rows, .. } => Some(rows.iter().copied()),
                _ => None,
            })
            .flatten()
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "race report for kernel {}: {} violation(s)",
            self.kernel,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RaceReport {}

/// Sorts, dedups, and caps a row list, returning `(rows, total)`.
fn cap_rows(mut rows: Vec<usize>) -> (Vec<usize>, usize) {
    rows.sort_unstable();
    rows.dedup();
    let total = rows.len();
    rows.truncate(MAX_REPORTED_ROWS);
    (rows, total)
}

/// Checks a launch's write sets against an output of `out_rows` rows.
///
/// Detects, in order: claims past the end of the output
/// ([`Violation::OutOfBounds`]), overlapping claims ([`Violation::Overlap`]),
/// unclaimed rows ([`Violation::Gap`]), and touched rows outside the
/// toucher's own claim (reported as an overlap against the owning task, or
/// out-of-bounds when no task owns the row).
pub fn write_set_violations(out_rows: usize, sets: &[WriteSet]) -> Vec<Violation> {
    let mut violations = Vec::new();

    // --- Claim phase: the owned ranges must tile [0, out_rows).
    let mut claims: Vec<(Range<usize>, usize)> = sets
        .iter()
        .filter(|s| !s.owned.is_empty())
        .map(|s| (s.owned.clone(), s.task))
        .collect();
    claims.sort_by_key(|(r, _)| (r.start, r.end));

    for (r, task) in &claims {
        if r.end > out_rows {
            let (rows, total) = cap_rows((r.start.max(out_rows)..r.end).collect());
            violations.push(Violation::OutOfBounds {
                task: *task,
                rows,
                total,
            });
        }
    }

    let mut cursor = 0usize;
    let mut cursor_owner = usize::MAX;
    for (r, task) in &claims {
        if r.start > cursor {
            violations.push(Violation::Gap {
                rows: cursor..r.start,
            });
        } else if r.start < cursor {
            let (rows, total) = cap_rows((r.start..r.end.min(cursor)).collect());
            violations.push(Violation::Overlap {
                first: cursor_owner,
                second: *task,
                rows,
                total,
            });
        }
        if r.end > cursor {
            cursor = r.end;
            cursor_owner = *task;
        }
    }
    if cursor < out_rows {
        violations.push(Violation::Gap {
            rows: cursor..out_rows,
        });
    }

    // --- Touch phase: every touched row must sit inside the toucher's own
    // claim. A stray row owned by another task is a write-write race on
    // that pair; a row owned by nobody is out of bounds.
    let mut pair_rows: Vec<((usize, usize), Vec<usize>)> = Vec::new();
    for set in sets {
        let mut oob = Vec::new();
        for &row in &set.touched {
            if set.owned.contains(&row) {
                continue;
            }
            let owner = claims
                .iter()
                .find(|(r, _)| r.contains(&row))
                .map(|(_, t)| *t);
            match owner {
                Some(o) => {
                    let key = (o, set.task);
                    match pair_rows.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, rows)) => rows.push(row),
                        None => pair_rows.push((key, vec![row])),
                    }
                }
                None => oob.push(row),
            }
        }
        if !oob.is_empty() {
            let (rows, total) = cap_rows(oob);
            violations.push(Violation::OutOfBounds {
                task: set.task,
                rows,
                total,
            });
        }
    }
    for ((first, second), rows) in pair_rows {
        let (rows, total) = cap_rows(rows);
        violations.push(Violation::Overlap {
            first,
            second,
            rows,
            total,
        });
    }

    violations
}

/// [`write_set_violations`] wrapped into a pass/fail [`RaceReport`].
pub fn check_write_sets(
    kernel: &str,
    out_rows: usize,
    sets: &[WriteSet],
) -> Result<(), RaceReport> {
    RaceReport::check(kernel, write_set_violations(out_rows, sets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(task: usize, owned: Range<usize>, touched: &[usize]) -> WriteSet {
        WriteSet::new(task, owned).touch_all(touched.iter().copied())
    }

    #[test]
    fn clean_partition_passes() {
        let sets = [
            set(0, 0..4, &[0, 1, 3]),
            set(1, 4..7, &[4, 6]),
            set(2, 7..10, &[9]),
        ];
        assert!(check_write_sets("k", 10, &sets).is_ok());
    }

    #[test]
    fn empty_claims_are_skipped() {
        let sets = [set(0, 0..5, &[]), set(1, 5..5, &[]), set(2, 5..8, &[7])];
        assert!(check_write_sets("k", 8, &sets).is_ok());
    }

    #[test]
    fn overlapping_claims_are_reported_with_rows() {
        let sets = [set(0, 0..6, &[]), set(1, 5..10, &[])];
        let report = check_write_sets("k", 10, &sets).unwrap_err();
        assert_eq!(report.kernel, "k");
        assert_eq!(report.overlapping_rows(), vec![5]);
        assert!(matches!(
            &report.violations[0],
            Violation::Overlap {
                first: 0,
                second: 1,
                ..
            }
        ));
    }

    #[test]
    fn gaps_at_start_middle_end_are_reported() {
        let sets = [set(0, 1..3, &[]), set(1, 5..8, &[])];
        let report = check_write_sets("k", 10, &sets).unwrap_err();
        let gaps: Vec<_> = report
            .violations
            .iter()
            .filter_map(|v| match v {
                Violation::Gap { rows } => Some(rows.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(gaps, vec![0..1, 3..5, 8..10]);
    }

    #[test]
    fn touch_outside_own_claim_names_the_pair() {
        // Task 1 touches row 4, which task 0 owns: a write-write race.
        let sets = [set(0, 0..5, &[2]), set(1, 5..10, &[4, 5])];
        let report = check_write_sets("k", 10, &sets).unwrap_err();
        assert_eq!(report.violations.len(), 1);
        match &report.violations[0] {
            Violation::Overlap {
                first,
                second,
                rows,
                total,
            } => {
                assert_eq!((*first, *second), (0, 1));
                assert_eq!(rows, &[4]);
                assert_eq!(*total, 1);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn touch_outside_all_claims_is_out_of_bounds() {
        let sets = [set(0, 0..5, &[12]), set(1, 5..10, &[])];
        let report = check_write_sets("k", 10, &sets).unwrap_err();
        assert!(matches!(
            &report.violations[0],
            Violation::OutOfBounds { task: 0, .. }
        ));
    }

    #[test]
    fn claim_past_output_end_is_out_of_bounds() {
        let sets = [set(0, 0..12, &[])];
        let report = check_write_sets("k", 10, &sets).unwrap_err();
        match &report.violations[0] {
            Violation::OutOfBounds { task, rows, .. } => {
                assert_eq!(*task, 0);
                assert_eq!(rows, &[10, 11]);
            }
            other => panic!("expected out-of-bounds, got {other:?}"),
        }
    }

    #[test]
    fn row_lists_are_capped_but_totals_exact() {
        let sets = [set(0, 0..200, &[]), set(1, 100..300, &[])];
        let report = check_write_sets("k", 300, &sets).unwrap_err();
        match &report.violations[0] {
            Violation::Overlap { rows, total, .. } => {
                assert_eq!(rows.len(), MAX_REPORTED_ROWS);
                assert_eq!(*total, 100);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn display_is_readable() {
        let sets = [set(0, 0..6, &[]), set(1, 5..10, &[])];
        let report = check_write_sets("SPLATT", 10, &sets).unwrap_err();
        let text = report.to_string();
        assert!(text.contains("SPLATT"), "{text}");
        assert!(text.contains("overlap"), "{text}");
    }
}
