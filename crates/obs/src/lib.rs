//! # tenblock-obs
//!
//! Zero-dependency execution observability for the tenblock workspace:
//! lightweight tracing spans (name, parent, wall time, thread) plus
//! per-kernel counters (nonzeros, bytes of factor/tensor traffic per the
//! paper's Section IV model, flops, strip/block counts).
//!
//! Everything is recorded through the [`Recorder`] trait. The default
//! implementation ([`NoopRecorder`]) does nothing, and the cloneable
//! [`Rec`] handle caches `enabled()` as a plain bool, so an instrumented
//! hot loop pays one predictable branch when tracing is off.
//!
//! [`TraceRecorder`] is the in-memory collector behind `--trace` and the
//! serve `trace` command. It exports two JSON shapes, both hand-rolled
//! (this crate has no dependencies, not even on the serve JSON type):
//!
//! * [`TraceRecorder::to_chrome_json`] — a `chrome://tracing` /
//!   Perfetto-compatible event array,
//! * [`TraceRecorder::to_span_tree_json`] — the nested span tree, for
//!   programmatic inspection over the wire.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Locks the trace state, recovering the guard if a panicking traced thread
/// poisoned it — a half-recorded span is still worth reporting.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Identifier of one span within a recorder. `SpanId::NONE` (0) is the
/// sentinel returned by disabled recorders; operations on it are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// True for every id except [`SpanId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// An annotation value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Numeric value (counters, sizes, fits).
    Num(f64),
    /// Text value (kernel names, grid descriptions).
    Str(String),
}

/// Per-kernel work and traffic counters, following the paper's Section IV
/// performance model (Eq. 1 and 2). Byte fields are the *model* traffic at
/// `alpha = 0` (every factor access misses), the same worst-case bound
/// `tenblock_analysis::roofline` computes, so recorded counters can be
/// checked against the analytical model directly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCounters {
    /// Nonzeros processed.
    pub nnz: u64,
    /// Fibers traversed (for blocked kernels: summed over blocks).
    pub fibers: u64,
    /// Rank (columns of the factor matrices).
    pub rank: u64,
    /// Floating-point operations: `2·R·(nnz + F)` (Eq. 2).
    pub flops: u64,
    /// Tensor-stream bytes: `8·(2·nnz + 2·F)` words of value/index data
    /// (the first two terms of Eq. 1).
    pub tensor_bytes: u64,
    /// Factor-matrix bytes at `alpha = 0`: `8·R·(nnz + F)` (the last two
    /// terms of Eq. 1).
    pub factor_bytes: u64,
    /// Rank strips executed (1 when rank blocking is off).
    pub strips: u64,
    /// Non-empty MB blocks traversed (1 when MB is off).
    pub blocks: u64,
}

impl KernelCounters {
    /// Counters for a fiber-factored kernel (SPLATT family, CSF): the
    /// Section IV model with `alpha = 0`.
    pub fn fibered_model(nnz: u64, fibers: u64, rank: u64) -> Self {
        KernelCounters {
            nnz,
            fibers,
            rank,
            flops: 2 * rank * (nnz + fibers),
            tensor_bytes: 8 * (2 * nnz + 2 * fibers),
            factor_bytes: 8 * rank * (nnz + fibers),
            strips: 1,
            blocks: 1,
        }
    }

    /// Counters for the coordinate-format kernel: no fiber factoring, so
    /// both factor rows are touched per nonzero (`3·R·nnz` flops,
    /// `2·R·nnz` factor words).
    pub fn coo_model(nnz: u64, rank: u64) -> Self {
        KernelCounters {
            nnz,
            fibers: nnz,
            rank,
            flops: 3 * rank * nnz,
            tensor_bytes: 8 * 2 * nnz,
            factor_bytes: 8 * 2 * rank * nnz,
            strips: 1,
            blocks: 1,
        }
    }

    /// Sets the rank-strip count.
    pub fn with_strips(mut self, strips: u64) -> Self {
        self.strips = strips;
        self
    }

    /// Sets the MB block count.
    pub fn with_blocks(mut self, blocks: u64) -> Self {
        self.blocks = blocks;
        self
    }

    /// Total model traffic, tensor stream + factors — comparable to
    /// `RooflineInputs::traffic_bytes()` at `alpha = 0`.
    pub fn total_bytes(&self) -> u64 {
        self.tensor_bytes + self.factor_bytes
    }
}

/// Shared counters for the out-of-core streaming path. The streaming
/// MTTKRP driver's prefetch and compute threads both update one instance
/// (hence atomics, relaxed — these are monotonic tallies, not
/// synchronization), and the CLI report and serve spill tier read
/// [`StreamStats::snapshot`] at the end of a run.
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Tiles loaded from the source, summed over every pass.
    pub tiles_loaded: std::sync::atomic::AtomicU64,
    /// Bytes streamed from the source (tile encoding size), all passes.
    pub bytes_streamed: std::sync::atomic::AtomicU64,
    /// Nanoseconds the compute thread spent waiting on the prefetcher —
    /// the I/O time double buffering failed to hide.
    pub prefetch_stall_ns: std::sync::atomic::AtomicU64,
    /// Tile loads retried after a transient I/O error (each retry that
    /// eventually fed a tile to the kernel, all passes).
    pub tile_retries: std::sync::atomic::AtomicU64,
}

impl StreamStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tile of `bytes` loaded from the source.
    pub fn add_tile(&self, bytes: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.tiles_loaded.fetch_add(1, Relaxed);
        self.bytes_streamed.fetch_add(bytes, Relaxed);
    }

    /// Records compute-side stall time waiting for a prefetched tile.
    pub fn add_stall_ns(&self, ns: u64) {
        self.prefetch_stall_ns
            .fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records one transient-error retry of a tile load.
    pub fn add_retry(&self) {
        self.tile_retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> StreamSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        StreamSnapshot {
            tiles_loaded: self.tiles_loaded.load(Relaxed),
            bytes_streamed: self.bytes_streamed.load(Relaxed),
            prefetch_stall_ns: self.prefetch_stall_ns.load(Relaxed),
            tile_retries: self.tile_retries.load(Relaxed),
        }
    }
}

/// Point-in-time copy of [`StreamStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Tiles loaded from the source, summed over every pass.
    pub tiles_loaded: u64,
    /// Bytes streamed from the source (tile encoding size), all passes.
    pub bytes_streamed: u64,
    /// Compute-thread wait on the prefetcher, in nanoseconds.
    pub prefetch_stall_ns: u64,
    /// Tile loads retried after a transient I/O error.
    pub tile_retries: u64,
}

/// The recording sink. Every method has a no-op default so a custom
/// recorder only implements what it cares about; [`Recorder::enabled`]
/// gates all instrumentation.
pub trait Recorder: Send + Sync {
    /// Whether instrumentation should record at all. Checked once per
    /// [`Rec`] construction and cached.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name` on the calling thread. The parent is the
    /// innermost span still open on this thread.
    fn span_start(&self, _name: &str) -> SpanId {
        SpanId::NONE
    }

    /// Closes a span.
    fn span_end(&self, _id: SpanId) {}

    /// Attaches a key/value annotation to an open span.
    fn annotate(&self, _id: SpanId, _key: &str, _value: Attr) {}

    /// Attaches kernel counters to an open span.
    fn counters(&self, _id: SpanId, _c: &KernelCounters) {}
}

/// The default recorder: records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Cloneable handle to a [`Recorder`], the type instrumented code carries.
/// `enabled` is cached at construction so the disabled path is a bool
/// check, not a virtual call.
#[derive(Clone)]
pub struct Rec {
    enabled: bool,
    inner: Arc<dyn Recorder>,
}

impl Default for Rec {
    fn default() -> Self {
        Rec::noop()
    }
}

impl std::fmt::Debug for Rec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rec")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Rec {
    /// The disabled handle.
    pub fn noop() -> Self {
        Rec {
            enabled: false,
            inner: Arc::new(NoopRecorder),
        }
    }

    /// Wraps a recorder.
    pub fn new(inner: Arc<dyn Recorder>) -> Self {
        Rec {
            enabled: inner.enabled(),
            inner,
        }
    }

    /// Whether spans will actually be recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span; the returned guard closes it on drop. When the
    /// recorder is disabled this allocates nothing and records nothing.
    #[inline]
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.enabled {
            return Span { rec: None };
        }
        let id = self.inner.span_start(name);
        Span {
            rec: Some((&*self.inner, id)),
        }
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.inner
    }
}

/// RAII span guard returned by [`Rec::span`]. All methods are no-ops when
/// tracing is disabled.
pub struct Span<'a> {
    rec: Option<(&'a dyn Recorder, SpanId)>,
}

impl Span<'_> {
    /// True when this span is actually being recorded.
    #[inline]
    pub fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// Attaches a numeric annotation.
    pub fn annotate_num(&self, key: &str, value: f64) {
        if let Some((r, id)) = self.rec {
            r.annotate(id, key, Attr::Num(value));
        }
    }

    /// Attaches a text annotation.
    pub fn annotate_str(&self, key: &str, value: &str) {
        if let Some((r, id)) = self.rec {
            r.annotate(id, key, Attr::Str(value.to_string()));
        }
    }

    /// Attaches kernel counters.
    pub fn counters(&self, c: &KernelCounters) {
        if let Some((r, id)) = self.rec {
            r.counters(id, c);
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((r, id)) = self.rec {
            r.span_end(id);
        }
    }
}

/// One recorded span, as captured by [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Span id (1-based; 0 never appears).
    pub id: u64,
    /// Parent span id, or 0 for roots.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Small dense thread index (0 = first thread seen).
    pub thread: u64,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the epoch (`start_ns` if never closed).
    pub end_ns: u64,
    /// Annotations in attach order.
    pub attrs: Vec<(String, Attr)>,
    /// Kernel counters, when attached.
    pub counters: Option<KernelCounters>,
}

impl SpanSnapshot {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanSnapshot>,
    /// Per-thread stack of open span ids (parent tracking).
    stacks: HashMap<ThreadId, Vec<u64>>,
    /// Dense thread numbering in first-seen order.
    threads: HashMap<ThreadId, u64>,
}

/// In-memory collecting recorder: spans with parents, monotone timestamps
/// from one epoch, per-thread nesting, annotations, and counters.
///
/// Collection takes one short mutex hold per span event. Spans are opened
/// at kernel/iteration granularity (never per nonzero), so contention is
/// negligible next to the work being traced.
pub struct TraceRecorder {
    epoch: Instant,
    state: Mutex<TraceState>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A fresh recorder; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            state: Mutex::new(TraceState::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// All spans recorded so far, in start order.
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        lock(&self.state).spans.clone()
    }

    /// Serializes the trace as a `chrome://tracing` JSON array of complete
    /// (`"ph": "X"`) events; timestamps and durations in microseconds.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                json_str(&s.name),
                fmt_us(s.start_ns),
                fmt_us(s.dur_ns()),
                s.thread,
                args_json(s),
            ));
        }
        out.push(']');
        out
    }

    /// Serializes the trace as a nested span tree:
    /// `{"spans": [{"name", "thread", "start_us", "dur_us", "args",
    /// "children": [...]}, ...]}`.
    pub fn to_span_tree_json(&self) -> String {
        let spans = self.snapshot();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            if s.parent == 0 {
                roots.push(i);
            } else {
                children.entry(s.parent).or_default().push(i);
            }
        }
        fn emit(
            out: &mut String,
            idx: usize,
            spans: &[SpanSnapshot],
            children: &HashMap<u64, Vec<usize>>,
        ) {
            let s = &spans[idx];
            out.push_str(&format!(
                "{{\"name\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{},\"args\":{},\"children\":[",
                json_str(&s.name),
                s.thread,
                fmt_us(s.start_ns),
                fmt_us(s.dur_ns()),
                args_json(s),
            ));
            if let Some(kids) = children.get(&s.id) {
                for (i, &k) in kids.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit(out, k, spans, children);
                }
            }
            out.push_str("]}");
        }
        let mut out = String::from("{\"spans\":[");
        for (i, &r) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            emit(&mut out, r, &spans, &children);
        }
        out.push_str("]}");
        out
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str) -> SpanId {
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut st = lock(&self.state);
        let next_thread = st.threads.len() as u64;
        let thread = *st.threads.entry(tid).or_insert(next_thread);
        let id = st.spans.len() as u64 + 1;
        let stack = st.stacks.entry(tid).or_default();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        st.spans.push(SpanSnapshot {
            id,
            parent,
            name: name.to_string(),
            thread,
            start_ns: now,
            end_ns: now,
            attrs: Vec::new(),
            counters: None,
        });
        SpanId(id)
    }

    fn span_end(&self, id: SpanId) {
        if !id.is_some() {
            return;
        }
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut st = lock(&self.state);
        if let Some(s) = st.spans.get_mut(id.0 as usize - 1) {
            s.end_ns = now;
        }
        if let Some(stack) = st.stacks.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&x| x == id.0) {
                stack.remove(pos);
            }
        }
    }

    fn annotate(&self, id: SpanId, key: &str, value: Attr) {
        if !id.is_some() {
            return;
        }
        let mut st = lock(&self.state);
        if let Some(s) = st.spans.get_mut(id.0 as usize - 1) {
            s.attrs.push((key.to_string(), value));
        }
    }

    fn counters(&self, id: SpanId, c: &KernelCounters) {
        if !id.is_some() {
            return;
        }
        let mut st = lock(&self.state);
        if let Some(s) = st.spans.get_mut(id.0 as usize - 1) {
            s.counters = Some(*c);
        }
    }
}

/// Nanoseconds → microseconds with 3 decimals (chrome trace unit).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Formats an f64 as a JSON number (non-finite values degrade to 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `"args"` object for one span: annotations then counters.
fn args_json(s: &SpanSnapshot) -> String {
    let mut parts: Vec<String> = s
        .attrs
        .iter()
        .map(|(k, v)| {
            let val = match v {
                Attr::Num(n) => json_num(*n),
                Attr::Str(t) => json_str(t),
            };
            format!("{}:{}", json_str(k), val)
        })
        .collect();
    if let Some(c) = &s.counters {
        for (k, v) in [
            ("nnz", c.nnz),
            ("fibers", c.fibers),
            ("rank", c.rank),
            ("flops", c.flops),
            ("tensor_bytes", c.tensor_bytes),
            ("factor_bytes", c.factor_bytes),
            ("strips", c.strips),
            ("blocks", c.blocks),
        ] {
            parts.push(format!("{}:{}", json_str(k), v));
        }
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_inert() {
        let rec = Rec::noop();
        assert!(!rec.enabled());
        let s = rec.span("anything");
        assert!(!s.active());
        s.annotate_num("x", 1.0);
        s.counters(&KernelCounters::fibered_model(10, 5, 4));
        drop(s);
    }

    #[test]
    fn spans_nest_per_thread() {
        let tr = Arc::new(TraceRecorder::new());
        let rec = Rec::new(tr.clone());
        assert!(rec.enabled());
        {
            let outer = rec.span("outer");
            outer.annotate_str("kind", "test");
            {
                let inner = rec.span("inner");
                inner.annotate_num("n", 3.0);
            }
            let sibling = rec.span("sibling");
            drop(sibling);
        }
        let spans = tr.snapshot();
        assert_eq!(spans.len(), 3);
        let outer = &spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, outer.id);
        assert_eq!(spans[2].parent, outer.id);
        // timestamps are monotone and children are inside the parent
        for s in &spans {
            assert!(s.end_ns >= s.start_ns);
        }
        assert!(spans[1].start_ns >= outer.start_ns);
        assert!(spans[1].end_ns <= outer.end_ns);
    }

    #[test]
    fn separate_threads_get_separate_roots() {
        let tr = Arc::new(TraceRecorder::new());
        let rec = Rec::new(tr.clone());
        let r2 = rec.clone();
        let handle = std::thread::spawn(move || {
            let _s = r2.span("worker");
        });
        let _main = rec.span("main");
        drop(_main);
        handle.join().unwrap();
        let spans = tr.snapshot();
        assert_eq!(spans.len(), 2);
        // both are roots: the worker's span must not parent under main's
        assert!(spans.iter().all(|s| s.parent == 0));
        let threads: std::collections::HashSet<u64> = spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 2);
    }

    #[test]
    fn counters_model_matches_formulas() {
        let c = KernelCounters::fibered_model(1000, 200, 16);
        assert_eq!(c.flops, 2 * 16 * 1200);
        assert_eq!(c.tensor_bytes, 8 * (2 * 1000 + 2 * 200));
        assert_eq!(c.factor_bytes, 8 * 16 * 1200);
        assert_eq!(c.total_bytes(), c.tensor_bytes + c.factor_bytes);
        let c = c.with_strips(4).with_blocks(8);
        assert_eq!((c.strips, c.blocks), (4, 8));
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let tr = Arc::new(TraceRecorder::new());
        let rec = Rec::new(tr.clone());
        {
            let s = rec.span("odd\"name\n");
            s.annotate_num("v", 2.5);
            s.counters(&KernelCounters::coo_model(10, 2));
        }
        let json = tr.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"odd\\\"name\\n\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"v\":2.5"));
        assert!(json.contains("\"nnz\":10"));
        assert!(json.contains("\"factor_bytes\":320"));
    }

    #[test]
    fn span_tree_nests_children() {
        let tr = Arc::new(TraceRecorder::new());
        let rec = Rec::new(tr.clone());
        {
            let _a = rec.span("a");
            let _b = rec.span("b");
        }
        let tree = tr.to_span_tree_json();
        // "b" must appear inside "a"'s children array
        let a = tree.find("\"name\":\"a\"").unwrap();
        let b = tree.find("\"name\":\"b\"").unwrap();
        assert!(b > a, "{tree}");
        assert!(tree.starts_with("{\"spans\":["));
    }
}
