//! Criterion version of Table I: the six pressure-point variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tenblock_analysis::ppa::{run_variant, PpaVariant};
use tenblock_bench::scaled_dataset;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::{DenseMatrix, SplattTensor};

fn bench_ppa(c: &mut Criterion) {
    let rank = 64;
    let x = scaled_dataset(Dataset::Poisson3, 0.2, 42);
    let t = SplattTensor::for_mode(&x, 0);
    let dims = x.dims();
    let b = DenseMatrix::from_fn(dims[1], rank, |r, cc| ((r * 3 + cc) % 11) as f64 * 0.1);
    let cm = DenseMatrix::from_fn(dims[2], rank, |r, cc| ((r + 5 * cc) % 13) as f64 * 0.1);
    let mut out = DenseMatrix::zeros(dims[0], rank);
    let mut accum = vec![0.0; rank];

    let mut group = c.benchmark_group("ppa/poisson3_r64");
    group.sample_size(10);
    for variant in PpaVariant::ALL {
        group.bench_function(BenchmarkId::from_parameter(variant.type_no()), |bch| {
            bch.iter(|| {
                run_variant(variant, &t, &b, &cm, &mut out, &mut accum);
                black_box(out.as_slice());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ppa);
criterion_main!(benches);
