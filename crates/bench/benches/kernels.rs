//! Criterion micro-benchmark: the four MTTKRP kernels head-to-head on a
//! synthetic-Poisson and a clustered ("real-like") data set — the
//! per-kernel view behind Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tenblock_bench::{bench_factors, scaled_dataset};
use tenblock_core::block::{MbKernel, MbRankBKernel, RankBKernel};
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn bench_kernels(c: &mut Criterion) {
    let rank = 64;
    for ds in [Dataset::Poisson2, Dataset::Nell2] {
        let x = scaled_dataset(ds, 0.2, 42);
        let name = ds.spec().name;
        let factors = bench_factors(x.dims(), rank, 42);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(x.dims()[0], rank);

        let kernels: Vec<(&str, Box<dyn MttkrpKernel>)> = vec![
            ("splatt", Box::new(SplattKernel::new(&x, 0))),
            ("mb", Box::new(MbKernel::new(&x, 0, [4, 4, 2]))),
            ("rankb", Box::new(RankBKernel::new(&x, 0, 16))),
            (
                "mb_rankb",
                Box::new(MbRankBKernel::new(&x, 0, [4, 4, 2], 16)),
            ),
        ];

        let mut group = c.benchmark_group(format!("mttkrp/{name}"));
        group.sample_size(10);
        for (kname, kernel) in &kernels {
            group.bench_function(BenchmarkId::from_parameter(kname), |b| {
                b.iter(|| {
                    kernel.mttkrp(black_box(&fs), &mut out);
                    black_box(out.as_slice());
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
