//! Criterion version of Figure 5: multi-dimensional blocking grid sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tenblock_bench::{bench_factors, scaled_dataset};
use tenblock_core::block::MbKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn bench_mb_sweep(c: &mut Criterion) {
    let rank = 64;
    let x = scaled_dataset(Dataset::Poisson3, 0.2, 42);
    let factors = bench_factors(x.dims(), rank, 42);
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
    let mut out = DenseMatrix::zeros(x.dims()[0], rank);

    let mut group = c.benchmark_group("mb_sweep/poisson3_r64");
    group.sample_size(10);
    for grid in [
        [1usize, 1, 1],
        [1, 4, 1],
        [1, 10, 5],
        [4, 4, 4],
        [8, 1, 1],
        [1, 1, 8],
    ] {
        let kernel = MbKernel::new(&x, 0, grid);
        let label = format!("{}x{}x{}", grid[0], grid[1], grid[2]);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                kernel.mttkrp(black_box(&fs), &mut out);
                black_box(out.as_slice());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mb_sweep);
criterion_main!(benches);
