//! Criterion bench: fused all-mode MTTKRP (memoized, ref. [17] style)
//! versus three separate SPLATT kernels at the same factor state.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tenblock_bench::{bench_factors, scaled_dataset};
use tenblock_core::mttkrp::{AllModeKernel, SplattKernel};
use tenblock_core::MttkrpKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn bench_allmode(c: &mut Criterion) {
    let rank = 32;
    let x = scaled_dataset(Dataset::Poisson2, 0.2, 42);
    let dims = x.dims();
    let factors = bench_factors(dims, rank, 42);
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

    let mut group = c.benchmark_group("allmode/poisson2_r32");
    group.sample_size(10);

    let fused = AllModeKernel::new(&x);
    let mut outs = [
        DenseMatrix::zeros(dims[0], rank),
        DenseMatrix::zeros(dims[1], rank),
        DenseMatrix::zeros(dims[2], rank),
    ];
    group.bench_function("fused", |b| {
        b.iter(|| {
            fused.mttkrp_all(black_box(&fs), &mut outs);
            black_box(outs[0].as_slice());
        })
    });

    let kernels: Vec<SplattKernel> = (0..3).map(|m| SplattKernel::new(&x, m)).collect();
    group.bench_function("separate_x3", |b| {
        b.iter(|| {
            for (m, k) in kernels.iter().enumerate() {
                k.mttkrp(black_box(&fs), &mut outs[m]);
            }
            black_box(outs[0].as_slice());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allmode);
criterion_main!(benches);
