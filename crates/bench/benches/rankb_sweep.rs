//! Criterion version of Figure 4: RankB strip-width sweep at a high rank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tenblock_bench::{bench_factors, scaled_dataset};
use tenblock_core::block::RankBKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn bench_rankb_sweep(c: &mut Criterion) {
    let rank = 128;
    let x = scaled_dataset(Dataset::Poisson2, 0.2, 42);
    let factors = bench_factors(x.dims(), rank, 42);
    let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
    let mut out = DenseMatrix::zeros(x.dims()[0], rank);

    let mut group = c.benchmark_group("rankb_sweep/poisson2_r128");
    group.sample_size(10);
    for width in [16usize, 32, 64, 128] {
        let kernel = RankBKernel::new(&x, 0, width);
        group.bench_function(BenchmarkId::from_parameter(width), |b| {
            b.iter(|| {
                kernel.mttkrp(black_box(&fs), &mut out);
                black_box(out.as_slice());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rankb_sweep);
criterion_main!(benches);
