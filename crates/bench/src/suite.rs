//! The pinned benchmark suite: a schema-stable JSON perf record and the
//! tolerance comparator behind `tenblock bench --json` / `--compare`.
//!
//! One [`BenchRecord`] captures a full sweep — every registry kernel ×
//! three synthetic generators (clustered, hyper-sparse power-law, Poisson)
//! × {serial, parallel}, plus a streamed MTTKRP over a tile store and the
//! in-process serve path's request latency — with warmup-discarded
//! min/mean/stddev per entry and machine/commit metadata. Records are
//! written as `BENCH_<date>.json` files; [`compare`] diffs two records
//! entry by entry so CI can fail on a >10% same-machine regression while
//! treating cross-machine timing drift as advisory (absolute times from
//! another host gate nothing, but coverage — added/removed entries — is
//! always enforced).
//!
//! Everything is deterministic except the clock: generator seeds, grids,
//! strip widths, and factor contents are pinned, so two runs on the same
//! machine measure the same work.

use crate::bench_factors;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use tenblock_core::stream::StreamingMttkrp;
use tenblock_core::timing::{time_reps, TimingStats};
use tenblock_core::tune::grid_for_tile_budget;
use tenblock_core::{build_kernel, ExecPolicy, KernelConfig, KernelKind};
use tenblock_serve::{Json, PlanCache, Service};
use tenblock_tensor::gen::{
    clustered_tensor, poisson_tensor, powerlaw_tensor, ClusteredConfig, PoissonConfig,
    PowerLawConfig,
};
use tenblock_tensor::{CooTensor, DenseMatrix, TileStore, NMODES};

/// Version of the record layout. Bump on any incompatible key change;
/// [`BenchRecord::from_json`] rejects records from other versions.
pub const SCHEMA_VERSION: usize = 1;

/// Identity of the machine a record was measured on. Absolute timings are
/// only comparable between identical machines, so the comparator downgrades
/// timing verdicts to advisory when these fields differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Hostname (best effort; `unknown` when undetectable).
    pub host: String,
    /// Logical CPUs visible to the process.
    pub cpus: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
}

impl MachineInfo {
    /// Detects the current machine.
    pub fn detect() -> MachineInfo {
        let host = std::env::var("HOSTNAME")
            .ok()
            .filter(|h| !h.trim().is_empty())
            .or_else(|| {
                std::fs::read_to_string("/proc/sys/kernel/hostname")
                    .ok()
                    .map(|h| h.trim().to_string())
                    .filter(|h| !h.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MachineInfo {
            host,
            cpus,
            os: std::env::consts::OS.to_string(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("host", Json::str(self.host.clone())),
            ("cpus", Json::usize(self.cpus)),
            ("os", Json::str(self.os.clone())),
        ])
    }

    fn from_json(j: &Json) -> Result<MachineInfo, String> {
        Ok(MachineInfo {
            host: j
                .get_str("host")
                .ok_or("machine: missing \"host\"")?
                .to_string(),
            cpus: j.get_usize("cpus").ok_or("machine: missing \"cpus\"")?,
            os: j
                .get_str("os")
                .ok_or("machine: missing \"os\"")?
                .to_string(),
        })
    }
}

/// One timed suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable identifier, `group/tensor/exec/kernel`
    /// (e.g. `kernel/clustered/serial/splatt`).
    pub id: String,
    /// Coarse family: `kernel`, `stream`, or `serve`.
    pub group: String,
    /// Fastest measured repetition, seconds (warmup discarded).
    pub min_secs: f64,
    /// Mean over measured repetitions, seconds.
    pub mean_secs: f64,
    /// Population standard deviation over measured repetitions, seconds.
    pub stddev_secs: f64,
    /// Measured repetitions (warmup excluded).
    pub reps: usize,
    /// Nonzeros of the tensor the entry ran against.
    pub nnz: usize,
    /// Bytes of the kernel's tensor representation (0 where meaningless).
    pub tensor_bytes: usize,
    /// Open-ended numeric side channel (`bytes_per_nnz`, stream counters,
    /// serve histogram stats, …) — comparators ignore unknown keys.
    pub extra: BTreeMap<String, f64>,
}

impl BenchEntry {
    fn new(
        id: String,
        group: &str,
        stats: TimingStats,
        nnz: usize,
        tensor_bytes: usize,
    ) -> BenchEntry {
        BenchEntry {
            id,
            group: group.to_string(),
            min_secs: stats.min_secs,
            mean_secs: stats.mean_secs,
            stddev_secs: stats.stddev_secs,
            reps: stats.reps,
            nnz,
            tensor_bytes,
            extra: BTreeMap::new(),
        }
    }

    fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_string(), Json::str(self.id.clone()));
        obj.insert("group".to_string(), Json::str(self.group.clone()));
        obj.insert("min_secs".to_string(), Json::num(self.min_secs));
        obj.insert("mean_secs".to_string(), Json::num(self.mean_secs));
        obj.insert("stddev_secs".to_string(), Json::num(self.stddev_secs));
        obj.insert("reps".to_string(), Json::usize(self.reps));
        obj.insert("nnz".to_string(), Json::usize(self.nnz));
        obj.insert("tensor_bytes".to_string(), Json::usize(self.tensor_bytes));
        let extra: BTreeMap<String, Json> = self
            .extra
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v)))
            .collect();
        obj.insert("extra".to_string(), Json::Obj(extra));
        Json::Obj(obj)
    }

    fn from_json(j: &Json) -> Result<BenchEntry, String> {
        let id = j.get_str("id").ok_or("entry: missing \"id\"")?.to_string();
        let num = |key: &str| {
            j.get_num(key)
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("entry {id}: missing or non-finite \"{key}\""))
        };
        Ok(BenchEntry {
            group: j
                .get_str("group")
                .ok_or_else(|| format!("entry {id}: missing \"group\""))?
                .to_string(),
            min_secs: num("min_secs")?,
            mean_secs: num("mean_secs")?,
            stddev_secs: num("stddev_secs")?,
            reps: j
                .get_usize("reps")
                .ok_or_else(|| format!("entry {id}: missing \"reps\""))?,
            nnz: j
                .get_usize("nnz")
                .ok_or_else(|| format!("entry {id}: missing \"nnz\""))?,
            tensor_bytes: j
                .get_usize("tensor_bytes")
                .ok_or_else(|| format!("entry {id}: missing \"tensor_bytes\""))?,
            extra: match j.get("extra") {
                Some(Json::Obj(m)) => m
                    .iter()
                    .filter_map(|(k, v)| match v {
                        Json::Num(n) => Some((k.clone(), *n)),
                        _ => None,
                    })
                    .collect(),
                _ => BTreeMap::new(),
            },
            id,
        })
    }
}

/// A full suite run: metadata plus every timed entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record layout version ([`SCHEMA_VERSION`]).
    pub schema: usize,
    /// Suite name (`pinned` or `quick`).
    pub suite: String,
    /// Seconds since the Unix epoch when the run started.
    pub created_unix: u64,
    /// Short commit hash of the workspace, `unknown` outside a checkout.
    pub commit: String,
    /// Machine the record was measured on.
    pub machine: MachineInfo,
    /// Timed entries, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Serializes the record (deterministic key order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::usize(self.schema)),
            ("suite", Json::str(self.suite.clone())),
            ("created_unix", Json::usize(self.created_unix as usize)),
            ("commit", Json::str(self.commit.clone())),
            ("machine", self.machine.to_json()),
            (
                "entries",
                Json::Arr(self.entries.iter().map(BenchEntry::to_json).collect()),
            ),
        ])
    }

    /// Parses and validates a record, rejecting other schema versions.
    pub fn from_json(j: &Json) -> Result<BenchRecord, String> {
        let schema = j.get_usize("schema").ok_or("record: missing \"schema\"")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "record: schema {schema} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let entries = match j.get("entries") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(BenchEntry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("record: missing \"entries\" array".to_string()),
        };
        Ok(BenchRecord {
            schema,
            suite: j
                .get_str("suite")
                .ok_or("record: missing \"suite\"")?
                .to_string(),
            created_unix: j
                .get_u64("created_unix")
                .ok_or("record: missing \"created_unix\"")?,
            commit: j
                .get_str("commit")
                .ok_or("record: missing \"commit\"")?
                .to_string(),
            machine: MachineInfo::from_json(
                j.get("machine").ok_or("record: missing \"machine\"")?,
            )?,
            entries,
        })
    }

    /// Parses a record from serialized text.
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let j = Json::parse(text).map_err(|e| format!("record: invalid JSON: {e}"))?;
        BenchRecord::from_json(&j)
    }

    /// Serializes to the on-disk format (single line, trailing newline).
    pub fn to_file_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }
}

/// Knobs of a suite run. The tensors, seeds, grids, and factor contents
/// are pinned by the suite itself; options only control measurement cost.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Suite name recorded in the output (`pinned` or `quick`).
    pub name: String,
    /// Measured repetitions per entry.
    pub reps: usize,
    /// Discarded warmup repetitions per entry.
    pub warmup: usize,
    /// Factor rank.
    pub rank: usize,
    /// Data-set scale: nnz scales linearly, dimensions by `sqrt(scale)`.
    pub scale: f64,
}

impl SuiteOptions {
    /// The full pinned suite (the shape `BENCH_*.json` history is built
    /// from).
    pub fn pinned() -> SuiteOptions {
        SuiteOptions {
            name: "pinned".to_string(),
            reps: 3,
            warmup: 1,
            rank: 16,
            scale: 1.0,
        }
    }

    /// The reduced suite CI's `bench-gate` job runs: same entry ids, a
    /// quarter of the data, fewer reps.
    pub fn quick() -> SuiteOptions {
        SuiteOptions {
            name: "quick".to_string(),
            reps: 2,
            warmup: 1,
            rank: 8,
            scale: 0.25,
        }
    }

    fn scaled_dims(&self, dims: [usize; NMODES]) -> [usize; NMODES] {
        let f = self.scale.sqrt();
        std::array::from_fn(|m| ((dims[m] as f64 * f) as usize).max(8))
    }

    fn scaled_nnz(&self, nnz: usize) -> usize {
        ((nnz as f64 * self.scale) as usize).max(500)
    }
}

/// The three pinned synthetic tensors, as `(label, tensor)` pairs: a
/// clustered tensor (block-friendly), a hyper-sparse power-law tensor
/// (long first mode, density far below one per fiber — the blocking
/// schemes' worst case), and a Poisson count tensor (the paper's
/// Poisson1–3 family).
pub fn suite_tensors(opts: &SuiteOptions) -> Vec<(&'static str, CooTensor)> {
    let clustered = {
        let cfg = ClusteredConfig::new(opts.scaled_dims([300, 250, 200]), opts.scaled_nnz(60_000));
        clustered_tensor(&cfg, 0xb10c_0001)
    };
    let hypersparse = {
        let cfg = PowerLawConfig::new(opts.scaled_dims([20_000, 400, 50]), opts.scaled_nnz(40_000));
        powerlaw_tensor(&cfg, 0xb10c_0002)
    };
    let poisson = {
        let cfg = PoissonConfig::new(opts.scaled_dims([200, 300, 150]), opts.scaled_nnz(50_000));
        poisson_tensor(&cfg, 0xb10c_0003)
    };
    vec![
        ("clustered", clustered),
        ("hypersparse", hypersparse),
        ("poisson", poisson),
    ]
}

/// Fixed kernel configuration for suite timing: a modest MB grid clamped
/// to the tensor (no tuner in the loop — tuner nondeterminism would make
/// run-to-run diffs meaningless) and a 16-column strip.
fn suite_config(dims: [usize; NMODES], exec: ExecPolicy, rank: usize) -> KernelConfig {
    KernelConfig {
        grid: [
            8.min(dims[0].max(1)),
            8.min(dims[1].max(1)),
            4.min(dims[2].max(1)),
        ],
        strip_width: 16.min(rank.max(1)),
        exec,
    }
}

/// Seconds since the Unix epoch (0 if the clock is before 1970).
fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Best-effort short commit hash of the working tree.
fn detect_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs the suite: 7 kernels × 3 generators × {serial, parallel}, one
/// streamed MTTKRP pair over a tile store, and the in-process serve
/// request path. Returns the complete record (nothing is written to disk
/// except a temporary tile store, which is removed).
pub fn run_suite(opts: &SuiteOptions) -> Result<BenchRecord, String> {
    let mut entries = Vec::new();
    let tensors = suite_tensors(opts);

    // --- Kernel sweep -----------------------------------------------------
    for (label, t) in &tensors {
        let factors = bench_factors(t.dims(), opts.rank, 0xfac7);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(t.dims()[0], opts.rank);
        for (exec_label, exec) in [
            ("serial", ExecPolicy::serial()),
            ("parallel", ExecPolicy::auto()),
        ] {
            for kind in KernelKind::ALL {
                let cfg = suite_config(t.dims(), exec.clone(), opts.rank);
                let k = build_kernel(kind, t, 0, &cfg);
                let stats = time_reps(opts.warmup, opts.reps, || k.mttkrp(&fs, &mut out));
                let mut e = BenchEntry::new(
                    format!("kernel/{label}/{exec_label}/{}", kind.as_str()),
                    "kernel",
                    stats,
                    t.nnz(),
                    k.tensor_bytes(),
                );
                e.extra.insert(
                    "bytes_per_nnz".to_string(),
                    k.tensor_bytes() as f64 / t.nnz().max(1) as f64,
                );
                entries.push(e);
            }
        }
    }

    // --- Streamed MTTKRP over a tile store --------------------------------
    let (label, t) = &tensors[0];
    let grid = grid_for_tile_budget(t.dims(), t.nnz(), 1 << 18);
    let tile_path = std::env::temp_dir().join(format!(
        "tenblock-bench-{}-{}.tiles",
        std::process::id(),
        opts.name
    ));
    let store = TileStore::create_from_coo(t, grid, &tile_path)
        .map_err(|e| format!("suite: tile store creation failed: {e}"))?;
    let factors = bench_factors(t.dims(), opts.rank, 0xfac7);
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
    let mut out = DenseMatrix::zeros(t.dims()[0], opts.rank);
    for (exec_label, exec) in [
        ("serial", ExecPolicy::serial()),
        ("parallel", ExecPolicy::auto()),
    ] {
        let driver = StreamingMttkrp::new(&store, 0, 16.min(opts.rank)).with_exec(exec);
        let mut stream_err = None;
        let stats = time_reps(opts.warmup, opts.reps, || {
            if let Err(e) = driver.run(&fs, &mut out) {
                stream_err = Some(format!("suite: streamed MTTKRP failed: {e}"));
            }
        });
        if let Some(e) = stream_err {
            let _ = std::fs::remove_file(&tile_path);
            return Err(e);
        }
        let snap = driver.stats().snapshot();
        let mut e = BenchEntry::new(
            format!("stream/{label}/{exec_label}/mttkrp"),
            "stream",
            stats,
            t.nnz(),
            snap.bytes_streamed as usize / (opts.warmup + opts.reps).max(1),
        );
        e.extra
            .insert("tiles_loaded".to_string(), snap.tiles_loaded as f64);
        e.extra
            .insert("bytes_streamed".to_string(), snap.bytes_streamed as f64);
        e.extra.insert(
            "prefetch_stall_secs".to_string(),
            snap.prefetch_stall_ns as f64 / 1e9,
        );
        entries.push(e);
    }
    drop(store);
    let _ = std::fs::remove_file(&tile_path);

    // --- Serve request path (in-process, no sockets) ----------------------
    entries.push(serve_entry(opts)?);

    Ok(BenchRecord {
        schema: SCHEMA_VERSION,
        suite: opts.name.clone(),
        created_unix: now_unix(),
        commit: detect_commit(),
        machine: MachineInfo::detect(),
        entries,
    })
}

/// Times the serve path end to end: generate a registry tensor, then issue
/// waited `mttkrp` jobs through [`Service::handle`] and measure each
/// request's wall time client-side. The service's own latency histogram
/// (the `metrics` command) rides along in `extra`, exercising the metrics
/// export path the record consumes.
fn serve_entry(opts: &SuiteOptions) -> Result<BenchEntry, String> {
    let svc = Service::new(2, 16, PlanCache::in_memory());
    let gen = Json::obj([
        ("cmd", Json::str("gen")),
        ("name", Json::str("bench")),
        ("dataset", Json::str("poisson2")),
        ("nnz", Json::usize(opts.scaled_nnz(20_000))),
        ("seed", Json::usize(7)),
    ]);
    let resp = svc.handle(&gen);
    let nnz = resp
        .get_usize("nnz")
        .ok_or_else(|| format!("suite: serve gen failed: {}", resp.to_string_compact()))?;
    let req = Json::obj([
        ("cmd", Json::str("mttkrp")),
        ("tensor", Json::str("bench")),
        ("kernel", Json::str("mbrankb")),
        ("rank", Json::usize(opts.rank)),
        ("reps", Json::usize(1)),
        ("wait", Json::Bool(true)),
    ]);
    let mut req_err = None;
    let stats = time_reps(opts.warmup, opts.reps.max(3), || {
        let r = svc.handle(&req);
        if r.get("error").is_some() {
            req_err = Some(format!(
                "suite: serve mttkrp failed: {}",
                r.to_string_compact()
            ));
        }
    });
    if let Some(e) = req_err {
        return Err(e);
    }
    let mut entry = BenchEntry::new(
        "serve/poisson2/inproc/mttkrp-wait".to_string(),
        "serve",
        stats,
        nnz,
        0,
    );
    if stats.mean_secs > 0.0 {
        entry
            .extra
            .insert("throughput_rps".to_string(), 1.0 / stats.mean_secs);
    }
    let hist = svc.core().metrics.mttkrp_latency.snapshot();
    entry
        .extra
        .insert("kernel_hist_mean_secs".to_string(), hist.mean_secs());
    entry
        .extra
        .insert("kernel_hist_total".to_string(), hist.total as f64);
    entry.extra.insert(
        "requests".to_string(),
        svc.core().metrics.requests.load(Ordering::Relaxed) as f64,
    );
    Ok(entry)
}

/// Tolerances of [`compare`].
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Allowed fractional slowdown before an entry regresses. `0.10`
    /// means a current `min_secs` strictly above `1.10 ×` baseline fails;
    /// exactly 10% slower passes.
    pub tolerance: f64,
    /// Entries whose baseline `min_secs` is at or below this floor are
    /// advisory-only: too fast (or zero — empty tensors, degenerate
    /// clocks) for a ratio to mean anything, and gating would divide by
    /// zero or amplify scheduler noise.
    pub min_gate_secs: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            tolerance: 0.10,
            min_gate_secs: 50e-6,
        }
    }
}

/// Per-entry comparison verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance.
    Ok {
        /// `current / baseline` min-time ratio.
        ratio: f64,
    },
    /// Slower than `1 + tolerance` on the same machine.
    Regressed {
        /// `current / baseline` min-time ratio.
        ratio: f64,
    },
    /// Timing differs but the machines do, or the baseline is below the
    /// gate floor — reported, never fatal.
    Advisory {
        /// Human-readable reason.
        reason: String,
    },
    /// Present in the baseline, missing from the current record.
    Removed,
    /// New in the current record (no baseline to compare against).
    Added,
}

/// One line of a comparison report.
#[derive(Debug, Clone)]
pub struct CompareLine {
    /// Entry id.
    pub id: String,
    /// Verdict for this entry.
    pub verdict: Verdict,
}

/// Full result of diffing two records.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-entry verdicts, baseline order then additions.
    pub lines: Vec<CompareLine>,
    /// Whether both records were measured on the same machine.
    pub machine_match: bool,
    /// Baseline suite name (for the report header).
    pub base_suite: String,
    /// Current suite name.
    pub cur_suite: String,
}

impl CompareReport {
    /// Ids that regressed past tolerance (same machine only).
    pub fn regressed(&self) -> Vec<&str> {
        self.lines
            .iter()
            .filter(|l| matches!(l.verdict, Verdict::Regressed { .. }))
            .map(|l| l.id.as_str())
            .collect()
    }

    /// Ids present in the baseline but missing now (coverage loss).
    pub fn removed(&self) -> Vec<&str> {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Removed)
            .map(|l| l.id.as_str())
            .collect()
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = vec![format!(
            "bench compare: baseline suite `{}`, current suite `{}`{}",
            self.base_suite,
            self.cur_suite,
            if self.machine_match {
                ""
            } else {
                " (different machines — timings advisory)"
            }
        )];
        for l in &self.lines {
            out.push(match &l.verdict {
                Verdict::Ok { ratio } => format!("  ok        {:<44} {:>6.2}x", l.id, ratio),
                Verdict::Regressed { ratio } => {
                    format!("  REGRESSED {:<44} {:>6.2}x", l.id, ratio)
                }
                Verdict::Advisory { reason } => {
                    format!("  advisory  {:<44} {}", l.id, reason)
                }
                Verdict::Removed => format!("  REMOVED   {}", l.id),
                Verdict::Added => format!("  added     {}", l.id),
            });
        }
        let reg = self.regressed().len();
        let rem = self.removed().len();
        out.push(format!(
            "{} entr{} compared: {} regression(s), {} removed",
            self.lines.len(),
            if self.lines.len() == 1 { "y" } else { "ies" },
            reg,
            rem
        ));
        out.join("\n")
    }

    /// Gate verdict: `Err` (nonzero exit) on any same-machine regression
    /// or on coverage loss, `Ok` otherwise. Both carry the rendered report.
    pub fn gate(&self) -> Result<String, String> {
        if self.regressed().is_empty() && self.removed().is_empty() {
            Ok(self.render())
        } else {
            Err(self.render())
        }
    }
}

/// Diffs `cur` against `base` entry by entry. Never panics: added and
/// removed entries become verdicts, and zero/near-zero baseline times are
/// advisory instead of divided by.
pub fn compare(base: &BenchRecord, cur: &BenchRecord, opts: &CompareOptions) -> CompareReport {
    let machine_match = base.machine == cur.machine;
    let mut lines = Vec::new();
    for b in &base.entries {
        let Some(c) = cur.entries.iter().find(|c| c.id == b.id) else {
            lines.push(CompareLine {
                id: b.id.clone(),
                verdict: Verdict::Removed,
            });
            continue;
        };
        if b.min_secs <= opts.min_gate_secs {
            lines.push(CompareLine {
                id: b.id.clone(),
                verdict: Verdict::Advisory {
                    reason: format!(
                        "baseline {:.1} us at or below the {:.1} us gate floor",
                        b.min_secs * 1e6,
                        opts.min_gate_secs * 1e6
                    ),
                },
            });
            continue;
        }
        let ratio = c.min_secs / b.min_secs;
        let verdict = if ratio > 1.0 + opts.tolerance {
            if machine_match {
                Verdict::Regressed { ratio }
            } else {
                Verdict::Advisory {
                    reason: format!("{ratio:.2}x slower, but measured on a different machine"),
                }
            }
        } else {
            Verdict::Ok { ratio }
        };
        lines.push(CompareLine {
            id: b.id.clone(),
            verdict,
        });
    }
    for c in &cur.entries {
        if !base.entries.iter().any(|b| b.id == c.id) {
            lines.push(CompareLine {
                id: c.id.clone(),
                verdict: Verdict::Added,
            });
        }
    }
    CompareReport {
        lines,
        machine_match,
        base_suite: base.suite.clone(),
        cur_suite: cur.suite.clone(),
    }
}
