//! # tenblock-bench
//!
//! The benchmark harness: one binary per table/figure of the paper plus
//! criterion micro-benchmarks. See DESIGN.md §5 for the experiment index
//! and EXPERIMENTS.md for recorded results.
//!
//! All binaries accept `--scale <f>` (default 1.0) to shrink/grow the data
//! sets relative to the registry defaults (which are themselves scaled-down
//! analogues of Table II — see `tenblock_tensor::gen::Dataset`), and most
//! accept `--reps <n>` for timing repetitions.

pub mod suite;

use tenblock_core::timing::{time_reps, TimingStats};
use tenblock_core::MttkrpKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Simple `--flag value` argument lookup (keeps the harness dependency-free).
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `--scale` (default 1.0).
pub fn arg_scale() -> f64 {
    arg_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Parses `--reps` (default `default`).
pub fn arg_reps(default: usize) -> usize {
    arg_value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses `--seed` (default 42).
pub fn arg_seed() -> u64 {
    arg_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Generates a data set scaled by `scale`: nnz scales linearly, dimensions
/// by `sqrt(scale)` (so density changes slowly), both clamped to sane
/// minima.
pub fn scaled_dataset(ds: Dataset, scale: f64, seed: u64) -> CooTensor {
    let spec = ds.spec();
    let dim_f = scale.sqrt();
    let dims: [usize; NMODES] =
        std::array::from_fn(|m| ((spec.default_dims[m] as f64 * dim_f) as usize).max(8));
    let nnz = ((spec.default_nnz as f64 * scale) as usize).max(1_000);
    ds.generate_with(dims, nnz, seed)
}

/// Deterministic factor matrices for benchmarking (values in [-0.5, 0.5)).
pub fn bench_factors(dims: [usize; NMODES], rank: usize, seed: u64) -> Vec<DenseMatrix> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| {
            DenseMatrix::from_fn(d, rank, |r, c| {
                let mut h = seed ^ ((r as u64) << 24) ^ ((c as u64) << 4) ^ (m as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51afd7ed558ccd);
                h ^= h >> 29;
                (h % 1024) as f64 / 1024.0 - 0.5
            })
        })
        .collect()
}

/// Times `kernel` against `factors`: best of `reps` runs (after one
/// discarded warmup rep), in seconds.
pub fn time_kernel(
    kernel: &dyn MttkrpKernel,
    factors: &[DenseMatrix],
    out: &mut DenseMatrix,
    reps: usize,
) -> f64 {
    time_kernel_stats(kernel, factors, out, reps).min_secs
}

/// Full min/mean/stddev timing of `kernel` with one discarded warmup rep.
pub fn time_kernel_stats(
    kernel: &dyn MttkrpKernel,
    factors: &[DenseMatrix],
    out: &mut DenseMatrix,
    reps: usize,
) -> TimingStats {
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
    let stats = time_reps(1, reps, || kernel.mttkrp(&fs, out));
    std::hint::black_box(out.as_slice());
    stats
}

/// MTTKRP Gflop/s at the SPLATT flop count `W = 2R(nnz + F)` (Equation 2).
pub fn gflops(nnz: usize, fibers: usize, rank: usize, secs: f64) -> f64 {
    2.0 * rank as f64 * (nnz + fibers) as f64 / secs / 1e9
}

/// The six data sets used in Figure 6 (Poisson1 is analysis-only in the
/// paper's evaluation).
pub const FIG6_DATASETS: [Dataset; 6] = [
    Dataset::Poisson2,
    Dataset::Poisson3,
    Dataset::Nell2,
    Dataset::Netflix,
    Dataset::Reddit,
    Dataset::Amazon,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dataset_respects_scale() {
        let small = scaled_dataset(Dataset::Poisson1, 0.01, 1);
        let spec = Dataset::Poisson1.spec();
        assert!(small.nnz() < spec.default_nnz / 10);
        assert!(small.dims()[0] <= spec.default_dims[0]);
    }

    #[test]
    fn gflops_formula() {
        // 2 * 32 * (1000 + 100) flops in 1 ms = 70.4 Mflop / 1e-3 s
        let g = gflops(1000, 100, 32, 1e-3);
        assert!((g - 2.0 * 32.0 * 1100.0 / 1e-3 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn factors_are_deterministic() {
        let a = bench_factors([10, 10, 10], 4, 7);
        let b = bench_factors([10, 10, 10], 4, 7);
        assert_eq!(a[0].as_slice(), b[0].as_slice());
    }
}
