//! Figure 5: performance vs multi-dimensional blocking size for Poisson2
//! and Poisson3. The paper's grids are expressed in *mode* order
//! (mode1 x mode2 x mode3); kernel axes for the mode-1 MTTKRP coincide with
//! that order.
//!
//! Run: `cargo run -p tenblock-bench --release --bin fig5_mb [--scale f] [--rank r] [--reps n]`

use tenblock_bench::{
    arg_reps, arg_scale, arg_seed, arg_value, bench_factors, gflops, scaled_dataset, time_kernel,
};
use tenblock_core::block::MbKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(3);
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let seed = arg_seed();

    // Grids mirroring the paper's Figure 5 sweeps: blocking the long mode
    // alone at several counts, cross-mode combinations, and the extreme
    // cases that degrade performance.
    let grids: &[[usize; 3]] = &[
        [1, 2, 1],
        [1, 4, 1],
        [1, 8, 1],
        [1, 16, 1],
        [1, 32, 1],
        [2, 4, 1],
        [1, 4, 2],
        [1, 10, 5],
        [8, 1, 1],
        [1, 1, 8],
        [16, 16, 1],
        [32, 32, 1],
    ];

    println!("Figure 5: performance vs MB blocking size (rank {rank})");
    println!(
        "{:<10} {:>12} {:>11} {:>10} {:>9}",
        "dataset", "grid", "time (s)", "Gflop/s", "vs SPLATT"
    );

    for ds in [Dataset::Poisson2, Dataset::Poisson3] {
        let x = scaled_dataset(ds, scale, seed);
        let name = ds.spec().name;
        let dims = x.dims();
        let factors = bench_factors(dims, rank, seed);
        let mut out = DenseMatrix::zeros(dims[0], rank);
        let fibers = x.count_fibers(tenblock_tensor::coo::MODE1_PERM);

        let baseline = SplattKernel::new(&x, 0);
        let base_secs = time_kernel(&baseline, &factors, &mut out, reps);
        println!(
            "{:<10} {:>12} {:>11.4} {:>10.2} {:>8.2}x  (SPLATT baseline)",
            name,
            "1x1x1",
            base_secs,
            gflops(x.nnz(), fibers, rank, base_secs),
            1.0
        );

        for &grid in grids {
            let clamped: [usize; 3] = std::array::from_fn(|m| grid[m].min(dims[m].max(1)));
            let k = MbKernel::new(&x, 0, clamped);
            let secs = time_kernel(&k, &factors, &mut out, reps);
            println!(
                "{:<10} {:>12} {:>11.4} {:>10.2} {:>8.2}x",
                name,
                format!("{}x{}x{}", clamped[0], clamped[1], clamped[2]),
                secs,
                gflops(x.nnz(), fibers, rank, secs),
                base_secs / secs
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper): blocking the long mode (mode 2) helps most and \
         the exact count matters little; blocking mode 3 beats blocking mode 1 \
         (8x1x1 vs 1x1x8); extreme grids degrade below baseline."
    );
}
