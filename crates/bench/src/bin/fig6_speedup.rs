//! Figure 6: speedup of MB, RankB, and MB+RankB over baseline SPLATT across
//! the six evaluation data sets and a sweep of ranks, with block sizes
//! chosen by the Section V-C heuristic.
//!
//! Run: `cargo run -p tenblock-bench --release --bin fig6_speedup \
//!        [--scale f] [--reps n] [--ranks 16,32,64,128,256]`

use tenblock_bench::{
    arg_reps, arg_scale, arg_seed, arg_value, bench_factors, scaled_dataset, time_kernel,
    FIG6_DATASETS,
};
use tenblock_core::block::{MbKernel, MbRankBKernel, RankBKernel};
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::{tune, TuneOptions};
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(2);
    let seed = arg_seed();
    let ranks: Vec<usize> = arg_value("--ranks")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![16, 32, 64, 128, 256]);
    // optional machine-readable series, one row per (dataset, rank)
    let mut csv: Option<std::fs::File> = arg_value("--csv").map(|p| {
        use std::io::Write;
        let mut f = std::fs::File::create(p).expect("create csv");
        writeln!(
            f,
            "dataset,rank,splatt_secs,mb_speedup,rankb_speedup,mb_rankb_speedup"
        )
        .unwrap();
        f
    });

    println!("Figure 6: speedup over SPLATT (heuristic-tuned blocks)");
    println!(
        "{:<10} {:>6} {:>12} {:>6} {:>9} {:>8} {:>8} {:>9}",
        "dataset", "rank", "grid", "strip", "SPLATT(s)", "MB", "RankB", "MB+RankB"
    );

    for ds in FIG6_DATASETS {
        let x = scaled_dataset(ds, scale, seed);
        let name = ds.spec().name;
        let dims = x.dims();

        for &rank in &ranks {
            let factors = bench_factors(dims, rank, seed);
            let mut out = DenseMatrix::zeros(dims[0], rank);

            // Section V-C heuristic picks the grid and strip width.
            let mut topts = TuneOptions::new(rank);
            topts.reps = 1;
            topts.max_blocks = 32;
            let tuned = tune(&x, 0, &topts);

            let base = SplattKernel::new(&x, 0);
            let base_secs = time_kernel(&base, &factors, &mut out, reps);

            let mb = MbKernel::new(&x, 0, tuned.grid);
            let mb_secs = time_kernel(&mb, &factors, &mut out, reps);

            let rb = RankBKernel::new(&x, 0, tuned.strip_width);
            let rb_secs = time_kernel(&rb, &factors, &mut out, reps);

            let both = MbRankBKernel::new(&x, 0, tuned.grid, tuned.strip_width);
            let both_secs = time_kernel(&both, &factors, &mut out, reps);

            println!(
                "{:<10} {:>6} {:>12} {:>6} {:>9.4} {:>7.2}x {:>7.2}x {:>8.2}x",
                name,
                rank,
                format!("{}x{}x{}", tuned.grid[0], tuned.grid[1], tuned.grid[2]),
                tuned.strip_width,
                base_secs,
                base_secs / mb_secs,
                base_secs / rb_secs,
                base_secs / both_secs
            );
            if let Some(f) = csv.as_mut() {
                use std::io::Write;
                writeln!(
                    f,
                    "{name},{rank},{base_secs},{},{},{}",
                    base_secs / mb_secs,
                    base_secs / rb_secs,
                    base_secs / both_secs
                )
                .unwrap();
            }
        }
        println!();
    }
    println!(
        "Expected shape (paper): speedups grow with rank for the smaller tensors \
         (Poisson2/3, NELL-2), peak at moderate ranks for the huge-mode tensors \
         (Netflix, Reddit, Amazon); real/clustered data beats synthetic \
         (up to 3.5x vs up to 2.0x); MB+RankB >= MB >= RankB on most points."
    );
}
