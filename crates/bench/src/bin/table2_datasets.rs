//! Table II: the synthetic and real-world data sets.
//!
//! Prints the paper's values next to this reproduction's scaled analogues
//! (generated, then measured).
//!
//! Run: `cargo run -p tenblock-bench --release --bin table2_datasets [--scale f]`

use tenblock_bench::{arg_scale, arg_seed, scaled_dataset};
use tenblock_tensor::gen::ALL_DATASETS;
use tenblock_tensor::TensorStats;

fn main() {
    let scale = arg_scale();
    let seed = arg_seed();

    println!("Table II: data sets (paper vs scaled analogue at --scale {scale})");
    println!(
        "{:<10} {:>28} {:>12} {:>10} | {:>24} {:>10} {:>10} {:>9}",
        "Name", "paper dims", "paper nnz", "sparsity", "repro dims", "nnz", "sparsity", "fibers"
    );
    for ds in ALL_DATASETS {
        let spec = ds.spec();
        let paper_cells: f64 = spec.paper_dims.iter().map(|&d| d as f64).product();
        let t = scaled_dataset(ds, scale, seed);
        let s = TensorStats::of(&t);
        println!(
            "{:<10} {:>8}x{:>8}x{:>9} {:>12} {:>10.1e} | {:>6}x{:>7}x{:>8} {:>10} {:>10.1e} {:>9}",
            spec.name,
            spec.paper_dims[0],
            spec.paper_dims[1],
            spec.paper_dims[2],
            spec.paper_nnz,
            spec.paper_nnz as f64 / paper_cells,
            s.dims[0],
            s.dims[1],
            s.dims[2],
            s.nnz,
            s.sparsity,
            s.fibers[0],
        );
    }
}
