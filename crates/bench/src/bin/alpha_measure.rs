//! Measured cache hit rate `α` per kernel, via the POWER8 cache simulator —
//! the bridge between Figure 2's model (where `α` is a free parameter) and
//! the blocking results (which work precisely by raising `α`).
//!
//! For each kernel the simulator replays the exact access stream and
//! reports the factor-matrix hit rate, the per-structure hit rates, and the
//! Equation (1) traffic predicted by the measured `α`.
//!
//! Run: `cargo run -p tenblock-bench --release --bin alpha_measure \
//!        [--scale f] [--rank r] [--dataset poisson3]`

use tenblock_analysis::roofline::RooflineInputs;
use tenblock_analysis::trace::{trace_kernel, TraceKernel};
use tenblock_analysis::CacheSim;
use tenblock_bench::{arg_scale, arg_seed, arg_value, scaled_dataset};
use tenblock_tensor::coo::MODE1_PERM;
use tenblock_tensor::gen::{Dataset, ALL_DATASETS};

fn main() {
    // Tracing is ~100x slower than running, so default to a small slice.
    let scale = arg_value("--scale").map(|_| arg_scale()).unwrap_or(0.05);
    let seed = arg_seed();
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let ds = arg_value("--dataset")
        .and_then(|n| {
            ALL_DATASETS
                .into_iter()
                .find(|d| d.spec().name.eq_ignore_ascii_case(&n))
        })
        .unwrap_or(Dataset::Poisson3);

    let x = scaled_dataset(ds, scale, seed);
    let nnz = x.nnz();
    let fibers = x.count_fibers(MODE1_PERM);
    println!(
        "Measured alpha on {} analogue: dims {:?}, nnz {}, fibers {}, rank {}",
        ds.spec().name,
        x.dims(),
        nnz,
        fibers,
        rank
    );
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} {:>14} {:>13}",
        "kernel", "alpha", "B hit", "C hit", "A hit", "tens.", "mem bytes", "Eq.(1) bytes"
    );

    let kernels = [
        ("SPLATT", TraceKernel::Splatt),
        ("MB 4x4x2", TraceKernel::Mb([4, 4, 2])),
        ("RankB 16", TraceKernel::RankB(16)),
        ("MB+RankB", TraceKernel::MbRankB([4, 4, 2], 16)),
    ];
    for (name, k) in kernels {
        let r = trace_kernel(&x, 0, rank, k, CacheSim::power8(4));
        let eq1 = RooflineInputs {
            nnz: nnz as u64,
            fibers: fibers as u64,
            rank: rank as u64,
            alpha: r.alpha_factors,
        }
        .traffic_bytes();
        println!(
            "{:<18} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>14} {:>13.3e}",
            name,
            r.alpha_factors,
            r.hierarchy[1],
            r.hierarchy[2],
            r.hierarchy[3],
            r.hierarchy[0],
            r.memory_bytes,
            eq1
        );
    }
    println!();
    println!(
        "Expected shape: blocking raises the factor hit rate alpha (and with it \
         the arithmetic intensity of Figure 2), which is the mechanism behind \
         the Figure 6 speedups."
    );
}
