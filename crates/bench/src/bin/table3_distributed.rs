//! Table III: distributed execution time comparison — distributed SPLATT
//! (medium-grained 3D + baseline local kernel) vs this paper's 3D and 4D
//! partitionings with the blocked local kernel, on NELL-2 and Netflix
//! analogues, 1 to 64 nodes (2 MPI ranks per node, as in the paper).
//!
//! Run: `cargo run -p tenblock-bench --release --bin table3_distributed \
//!        [--scale f] [--rank r] [--nodes 1,2,4,8,16,32,64]`

use tenblock_bench::{arg_scale, arg_seed, arg_value, scaled_dataset};
use tenblock_dist::{best_3d, best_4d, DistConfig, LocalKernel};
use tenblock_tensor::gen::Dataset;

fn main() {
    let scale = arg_scale();
    let seed = arg_seed();
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let nodes: Vec<usize> = arg_value("--nodes")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16, 32, 64]);

    println!("Table III: distributed execution time comparison (rank {rank}, 2 ranks/node)");
    for ds in [Dataset::Nell2, Dataset::Netflix] {
        let x = scaled_dataset(ds, scale, seed);
        let name = ds.spec().name;
        println!();
        println!("{name}: dims {:?}, nnz {}", x.dims(), x.nnz());
        println!(
            "{:>6} {:>10} {:>12} {:>10} {:>14} {:>10} {:>8} {:>8}",
            "Nodes", "SPLATT(s)", "3D grid", "3D (s)", "4D grid", "4D (s)", "3D spd", "4D spd"
        );
        for &n in &nodes {
            let p = 2 * n; // one MPI rank per socket
            let mut cfg = DistConfig::new(rank);
            cfg.seed = seed;

            cfg.local = LocalKernel::Baseline;
            let splatt = best_3d(&x, &cfg, p);

            cfg.local = DistConfig::new(rank).local; // blocked default
            let ours3 = best_3d(&x, &cfg, p);
            let ours4 = best_4d(&x, &cfg, p);

            println!(
                "{:>6} {:>10.4} {:>12} {:>10.4} {:>14} {:>10.4} {:>7.2}x {:>7.2}x",
                n,
                splatt.total_secs,
                format!("{}x{}x{}", ours3.grid[0], ours3.grid[1], ours3.grid[2]),
                ours3.total_secs,
                format!(
                    "{}x{}x{}x{}",
                    ours4.grid[0], ours4.grid[1], ours4.grid[2], ours4.grid[3]
                ),
                ours4.total_secs,
                splatt.total_secs / ours3.total_secs,
                splatt.total_secs / ours4.total_secs
            );
        }
    }
    println!();
    println!(
        "Expected shape (paper): both 3D and 4D beat distributed SPLATT at every \
         node count (blocked local kernel); 4D overtakes 3D at high node counts \
         (1.4x NELL-2 and 1.6x Netflix at 64 nodes)."
    );
}
