//! Reordering vs blocking — the paper's Section I/V claim that nonzero
//! re-ordering "yielded little improvement in performance" (referring to
//! Smith et al.'s hypergraph partitioning) while blocking, which "requires
//! very little data rearrangement and overhead", does better.
//!
//! We compare the SPLATT baseline on: the original tensor, a randomly
//! scrambled tensor (collection-order worst case), degree-sorted and
//! first-touch reorderings of the scrambled tensor — against MB+RankB
//! blocking of the scrambled tensor with *no* reordering at all.
//!
//! Run: `cargo run -p tenblock-bench --release --bin reordering [--scale f] [--rank r]`

use tenblock_bench::{
    arg_reps, arg_scale, arg_seed, arg_value, bench_factors, scaled_dataset, time_kernel,
};
use tenblock_core::block::MbRankBKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::{tune, TuneOptions};
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::reorder::{mode2_jump_score, Reordering};
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(3);
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let seed = arg_seed();

    let original = scaled_dataset(Dataset::Nell2, scale, seed);
    let scrambled = Reordering::random(original.dims(), seed).apply(&original);
    println!(
        "reordering study on NELL2 analogue: dims {:?}, nnz {}, rank {rank}",
        original.dims(),
        original.nnz()
    );
    println!(
        "{:<38} {:>11} {:>9} {:>11}",
        "configuration", "time (s)", "speedup", "jump score"
    );

    let factors = bench_factors(original.dims(), rank, seed);
    let mut out = DenseMatrix::zeros(original.dims()[0], rank);

    // baseline: scrambled tensor, no treatment
    let base_k = SplattKernel::new(&scrambled, 0);
    let base = time_kernel(&base_k, &factors, &mut out, reps);
    println!(
        "{:<38} {:>11.4} {:>8.2}x {:>11.2}",
        "SPLATT on scrambled tensor",
        base,
        1.0,
        mode2_jump_score(&scrambled)
    );

    // reorderings (factors are permuted consistently; timing uses the same
    // synthetic values so only the access pattern changes)
    for (name, reordering) in [
        (
            "SPLATT + degree-sort reordering",
            Reordering::by_degree(&scrambled),
        ),
        (
            "SPLATT + first-touch reordering",
            Reordering::by_first_touch(&scrambled),
        ),
    ] {
        let rt = reordering.apply(&scrambled);
        let rfactors: Vec<DenseMatrix> = (0..3)
            .map(|m| reordering.apply_to_factor(m, &factors[m]))
            .collect();
        let k = SplattKernel::new(&rt, 0);
        let secs = time_kernel(&k, &rfactors, &mut out, reps);
        println!(
            "{:<38} {:>11.4} {:>8.2}x {:>11.2}",
            name,
            secs,
            base / secs,
            mode2_jump_score(&rt)
        );
    }

    // blocking, no reordering (tuned by the Section V-C heuristic)
    let mut topts = TuneOptions::new(rank);
    topts.reps = 1;
    topts.max_blocks = 16;
    let tuned = tune(&scrambled, 0, &topts);
    let blocked = MbRankBKernel::new(&scrambled, 0, tuned.grid, tuned.strip_width);
    let secs = time_kernel(&blocked, &factors, &mut out, reps);
    println!(
        "{:<38} {:>11.4} {:>8.2}x {:>11.2}",
        format!(
            "MB+RankB {}x{}x{}/{} (no reordering)",
            tuned.grid[0], tuned.grid[1], tuned.grid[2], tuned.strip_width
        ),
        secs,
        base / secs,
        mode2_jump_score(&scrambled)
    );

    println!(
        "\nExpected shape (paper): reorderings move the needle far less than \
         blocking — locality must be *created* by restricting the working \
         set, not just by renaming indices."
    );
}
