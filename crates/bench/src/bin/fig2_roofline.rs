//! Figure 2: arithmetic intensity of SPLATT MTTKRP for different cache hit
//! rates and rank sizes (Equation 3), plus the POWER8 roofline context.
//!
//! Run: `cargo run -p tenblock-bench --release --bin fig2_roofline`

use tenblock_analysis::roofline::{fig2_series, MachineBalance, FIG2_RANKS};

fn main() {
    println!("Figure 2: arithmetic intensity I = R / (8 + 4R(1-alpha))");
    println!();
    print!("{:>8}", "alpha\\R");
    for r in FIG2_RANKS {
        print!("{r:>9}");
    }
    println!();
    for (alpha, pts) in fig2_series() {
        print!("{alpha:>8.2}");
        for (_, i) in pts {
            print!("{i:>9.3}");
        }
        println!();
    }

    let m = MachineBalance::power8_socket();
    println!();
    println!(
        "POWER8 socket balance: {:.2} flop/byte ({} Gflop/s peak, {} GB/s read)",
        m.balance(),
        m.peak_gflops,
        m.mem_bw_gbs
    );
    println!(
        "Paper's conclusion: with balance 6-12 on modern machines, MTTKRP is \
         memory-bound at every rank unless alpha ~= 1 and R > 64."
    );
    for &(rank, alpha) in &[(16u64, 0.95), (2048, 0.95), (128, 1.0)] {
        let i = tenblock_analysis::roofline::arithmetic_intensity(rank, alpha);
        println!(
            "  R={rank:>5} alpha={alpha:.2}: I={i:>6.2} -> {} on POWER8 \
             (attainable {:.0} Gflop/s)",
            if m.is_memory_bound(i) {
                "memory-bound"
            } else {
                "compute-bound"
            },
            m.attainable_gflops(i)
        );
    }
}
