//! Figure 4: performance vs RankB blocking size for Poisson2 and Poisson3
//! at rank 512 (larger block size = fewer blocks; block count 1 is the
//! unblocked case).
//!
//! Run: `cargo run -p tenblock-bench --release --bin fig4_rankb [--scale f] [--rank r] [--reps n]`

use tenblock_bench::{
    arg_reps, arg_scale, arg_seed, arg_value, bench_factors, gflops, scaled_dataset, time_kernel,
};
use tenblock_core::block::RankBKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(3);
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let seed = arg_seed();

    println!("Figure 4: performance vs RankB block count (rank {rank})");
    println!(
        "{:<10} {:>8} {:>11} {:>11} {:>10} {:>9}",
        "dataset", "nblocks", "block size", "time (s)", "Gflop/s", "vs SPLATT"
    );

    for ds in [Dataset::Poisson2, Dataset::Poisson3] {
        let x = scaled_dataset(ds, scale, seed);
        let name = ds.spec().name;
        let factors = bench_factors(x.dims(), rank, seed);
        let mut out = DenseMatrix::zeros(x.dims()[0], rank);
        let fibers = x.count_fibers(tenblock_tensor::coo::MODE1_PERM);

        let baseline = SplattKernel::new(&x, 0);
        let base_secs = time_kernel(&baseline, &factors, &mut out, reps);
        println!(
            "{:<10} {:>8} {:>11} {:>11.4} {:>10.2} {:>8.2}x  (SPLATT baseline)",
            name,
            "-",
            "-",
            base_secs,
            gflops(x.nnz(), fibers, rank, base_secs),
            1.0
        );

        // paper x-axis: 512, 256, 128, 64, 32, 16 block sizes (1..32 blocks)
        let mut nblocks = 1;
        while rank / nblocks >= 16 {
            let width = rank / nblocks;
            let k = RankBKernel::new(&x, 0, width);
            let secs = time_kernel(&k, &factors, &mut out, reps);
            println!(
                "{:<10} {:>8} {:>11} {:>11.4} {:>10.2} {:>8.2}x",
                name,
                nblocks,
                width,
                secs,
                gflops(x.nnz(), fibers, rank, secs),
                base_secs / secs
            );
            nblocks *= 2;
        }
        println!();
    }
    println!(
        "Expected shape (paper): Poisson2 has a sweet spot (16 blocks at R=512); \
         Poisson3 peaks at few blocks (4) and degrades below baseline with too many."
    );
}
