//! Model-guided vs measured block-size selection — the paper's future-work
//! autotuner (Section VII) head-to-head against the Section V-C timing
//! heuristic.
//!
//! For each data set, both tuners pick a `(grid, strip)` configuration; the
//! chosen configurations are then *measured* so the quality of the model's
//! blind pick is visible.
//!
//! Run: `cargo run -p tenblock-bench --release --bin model_tuner [--scale f] [--rank r]`

use tenblock_analysis::{tune_by_model, ModelTuneOptions};
use tenblock_bench::{arg_scale, arg_seed, arg_value, bench_factors, scaled_dataset, time_kernel};
use tenblock_core::block::MbRankBKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::{tune, TuneOptions};
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let seed = arg_seed();
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("model-guided vs measured tuning (rank {rank})");
    println!(
        "{:<10} {:>16} {:>10} {:>16} {:>10} {:>10}",
        "dataset", "measured pick", "time (s)", "model pick", "time (s)", "SPLATT(s)"
    );

    for ds in [Dataset::Poisson2, Dataset::Nell2, Dataset::Netflix] {
        let x = scaled_dataset(ds, scale, seed);
        let factors = bench_factors(x.dims(), rank, seed);
        let mut out = DenseMatrix::zeros(x.dims()[0], rank);

        let mut topts = TuneOptions::new(rank);
        topts.reps = 1;
        topts.max_blocks = 16;
        let measured = tune(&x, 0, &topts);

        let mut mopts = ModelTuneOptions::new(rank);
        mopts.max_blocks = 16;
        mopts.sample_nnz = 60_000;
        let modeled = tune_by_model(&x, 0, &mopts);

        let k_meas = MbRankBKernel::new(&x, 0, measured.grid, measured.strip_width);
        let k_model = MbRankBKernel::new(&x, 0, modeled.grid, modeled.strip_width);
        let base = SplattKernel::new(&x, 0);
        let t_meas = time_kernel(&k_meas, &factors, &mut out, 3);
        let t_model = time_kernel(&k_model, &factors, &mut out, 3);
        let t_base = time_kernel(&base, &factors, &mut out, 3);

        let fmt = |g: [usize; 3], s: usize| format!("{}x{}x{} / {}", g[0], g[1], g[2], s);
        println!(
            "{:<10} {:>16} {:>10.4} {:>16} {:>10.4} {:>10.4}",
            ds.spec().name,
            fmt(measured.grid, measured.strip_width),
            t_meas,
            fmt(modeled.grid, modeled.strip_width),
            t_model,
            t_base
        );
    }
    println!(
        "\nThe model tuner never runs the kernel — it replays sampled access \
         traces through the POWER8 cache simulator and minimizes predicted \
         memory traffic (the paper's proposed data-movement-model autotuning)."
    );
}
