//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Strip factor layout** (Section V-B's "small rearrangement of the
//!    factor matrix") vs reading strips out of the plain row-major layout.
//! 2. **Block traversal order**: `b`-major (reuse the expensive mode-2
//!    factor block, per Section IV-B) vs `c`-major.
//! 3. **Format**: the COO kernel vs the SPLATT kernel (the Section III-C
//!    motivation for the fiber format).
//! 4. **Parallelism**: rayon on/off for the baseline and blocked kernels.
//!
//! Run: `cargo run -p tenblock-bench --release --bin ablations [--scale f] [--rank r] [--reps n]`

use tenblock_bench::{
    arg_reps, arg_scale, arg_seed, arg_value, bench_factors, scaled_dataset, time_kernel,
};
use tenblock_core::block::{MbKernel, MbRankBKernel, RankBKernel, RankbLayout, Traversal};
use tenblock_core::mttkrp::{CooKernel, SplattKernel};
use tenblock_core::ExecPolicy;
use tenblock_tensor::gen::Dataset;
use tenblock_tensor::DenseMatrix;

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(3);
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let seed = arg_seed();

    let x = scaled_dataset(Dataset::Nell2, scale, seed);
    println!(
        "ablations on NELL2 analogue: dims {:?}, nnz {}, rank {rank}",
        x.dims(),
        x.nnz()
    );
    let factors = bench_factors(x.dims(), rank, seed);
    let mut out = DenseMatrix::zeros(x.dims()[0], rank);
    let row = |name: &str, secs: f64, base: Option<f64>| {
        match base {
            Some(b) => println!("  {name:<34} {secs:>9.4} s   ({:>5.2}x)", b / secs),
            None => println!("  {name:<34} {secs:>9.4} s",),
        }
        secs
    };

    println!("\n[1] RankB factor layout (strip width 16):");
    let plain = RankBKernel::new(&x, 0, 16);
    let strip = RankBKernel::new(&x, 0, 16).with_layout(RankbLayout::Strip);
    let tp = time_kernel(&plain, &factors, &mut out, reps);
    row("plain row-major reads", tp, None);
    let ts = time_kernel(&strip, &factors, &mut out, reps);
    row("stacked strip layout", ts, Some(tp));

    println!("\n[2] MB block traversal order (grid 4x4x4):");
    let bmaj = MbKernel::new(&x, 0, [4, 4, 4]);
    let cmaj = MbKernel::new(&x, 0, [4, 4, 4]).with_traversal(Traversal::CMajor);
    let tb = time_kernel(&bmaj, &factors, &mut out, reps);
    row("b-major (mode-2 block reused)", tb, None);
    let tc = time_kernel(&cmaj, &factors, &mut out, reps);
    row("c-major (mode-3 block reused)", tc, Some(tb));

    println!("\n[3] Storage format (Section III-C):");
    println!("  -- thin fibers (this NELL2 analogue, nnz/F ~= 1):");
    let coo = CooKernel::new(&x, 0);
    let splatt = SplattKernel::new(&x, 0);
    let tcoo = time_kernel(&coo, &factors, &mut out, reps);
    row("COO kernel", tcoo, None);
    let tsp = time_kernel(&splatt, &factors, &mut out, reps);
    row("SPLATT kernel (Algorithm 1)", tsp, Some(tcoo));
    // Algorithm 1's per-fiber factoring only pays when fibers hold several
    // nonzeros ("more nonzeros there are in the fiber, more computation and
    // data movement that can be saved") — show the dense-fiber regime too.
    {
        use tenblock_tensor::gen::{poisson_tensor, PoissonConfig};
        let dim = ((x.dims()[0] as f64) * 1.5) as usize;
        let mut pcfg = PoissonConfig::new([dim; 3], x.nnz());
        pcfg.gen_rank = 8;
        pcfg.support_frac_per_mode = Some([0.01, 0.08, 0.01]);
        let xf = poisson_tensor(&pcfg, seed);
        let f = xf.count_fibers(tenblock_tensor::coo::MODE1_PERM);
        println!(
            "  -- dense fibers (Poisson, nnz/F = {:.1}):",
            xf.nnz() as f64 / f as f64
        );
        let ffac = bench_factors(xf.dims(), rank, seed);
        let mut fout = DenseMatrix::zeros(xf.dims()[0], rank);
        let coo_f = CooKernel::new(&xf, 0);
        let splatt_f = SplattKernel::new(&xf, 0);
        let tcoo_f = time_kernel(&coo_f, &ffac, &mut fout, reps);
        row("COO kernel", tcoo_f, None);
        let tsp_f = time_kernel(&splatt_f, &ffac, &mut fout, reps);
        row("SPLATT kernel (Algorithm 1)", tsp_f, Some(tcoo_f));
    }

    println!(
        "\n[4] rayon parallelism ({} threads available):",
        rayon::current_num_threads()
    );
    let base_seq = SplattKernel::new(&x, 0);
    let base_par = SplattKernel::new(&x, 0).with_exec(ExecPolicy::auto());
    let t1 = time_kernel(&base_seq, &factors, &mut out, reps);
    row("SPLATT sequential", t1, None);
    let t2 = time_kernel(&base_par, &factors, &mut out, reps);
    row("SPLATT parallel", t2, Some(t1));
    let blk_seq = MbRankBKernel::new(&x, 0, [4, 2, 2], 16);
    let blk_par = MbRankBKernel::new(&x, 0, [4, 2, 2], 16).with_exec(ExecPolicy::auto());
    let t3 = time_kernel(&blk_seq, &factors, &mut out, reps);
    row("MB+RankB sequential", t3, None);
    let t4 = time_kernel(&blk_par, &factors, &mut out, reps);
    row("MB+RankB parallel", t4, Some(t3));
}
