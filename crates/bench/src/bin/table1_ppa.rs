//! Table I: pressure points for SPLATT MTTKRP.
//!
//! The paper runs the six PPA variants on a 30K x 30K x 30K Poisson tensor
//! with 135M nonzeros at rank 128, single core. This harness uses the
//! scaled Poisson3 analogue (same shape, ~1M nnz by default).
//!
//! Run: `cargo run -p tenblock-bench --release --bin table1_ppa [--scale f] [--reps n] [--rank r]`

use tenblock_analysis::run_ppa;
use tenblock_bench::{arg_reps, arg_scale, arg_seed, arg_value};
use tenblock_tensor::coo::MODE1_PERM;
use tenblock_tensor::gen::{poisson_tensor, PoissonConfig};

fn main() {
    let scale = arg_scale();
    let reps = arg_reps(3);
    let rank: usize = arg_value("--rank")
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let seed = arg_seed();

    eprintln!("generating Poisson3 analogue (scale {scale}) ...");
    // Match the paper's regime: the Table I tensor has nnz >> F ("nnz is
    // typically much larger than F", Section IV-A), so the Poisson model
    // uses sharper mode-1/mode-3 supports to concentrate events onto fewer
    // fibers.
    let dim = ((6_000.0 * scale.sqrt()) as usize).max(64);
    let mut cfg = PoissonConfig::new([dim; 3], (1_200_000.0 * scale) as usize);
    cfg.gen_rank = 8;
    cfg.support_frac_per_mode = Some([0.01, 0.08, 0.01]);
    let x = poisson_tensor(&cfg, seed);
    eprintln!(
        "tensor: {:?}, nnz {}, fibers {} (nnz/F = {:.1}), rank {rank}, single thread",
        x.dims(),
        x.nnz(),
        x.count_fibers(MODE1_PERM),
        x.nnz() as f64 / x.count_fibers(MODE1_PERM) as f64
    );

    let results = run_ppa(&x, 0, rank, reps);
    let baseline = results
        .iter()
        .find(|r| r.variant.type_no() == 6)
        .expect("baseline present")
        .secs;

    println!("Table I: pressure points for SPLATT MTTKRP (mode 1, rank {rank})");
    println!(
        "{:<5} {:>10} {:>8}  Description",
        "Type", "Time (s)", "vs base"
    );
    for r in &results {
        println!(
            "{:<5} {:>10.4} {:>7.1}%  {}",
            r.variant.type_no(),
            r.secs,
            (r.secs / baseline - 1.0) * 100.0,
            r.variant.description()
        );
    }
    println!();
    println!("Paper (POWER8, 135M nnz): 1.63 / 1.81 / 2.11 / 2.43 / 2.64 / 2.60 s");
    println!(
        "Expected shape: removing B saves the most; pinning B to L1 saves almost \
         as much; register accumulation (type 3) saves noticeably; removing C \
         saves little; moving flops inward (type 5) changes little."
    );
}
