//! # tenblock-dist
//!
//! The distributed MTTKRP of Section VI-D, as a *simulated* distributed
//! runtime: the paper ran on a 64-node POWER8 cluster over MPI; here each
//! MPI rank's local computation is executed for real on this machine, and
//! network time is supplied by an α–β communication model. Strong-scaling
//! shape is determined by (a) per-rank nonzero counts after partitioning,
//! (b) per-iteration communication volume of the partition, and (c) the
//! local kernel — all three of which are computed exactly; only the wire
//! constants are modeled.
//!
//! * [`comm`] — α–β cost models for point-to-point and the collectives the
//!   decomposition needs (AllGather, Reduce-Scatter).
//! * [`part3d`] — the medium-grained decomposition of Smith & Karypis
//!   (random mode permutation + greedy nnz-balanced slice chunking into a
//!   `q x r x s` processor grid), as described in Section VI-D.
//! * [`part4d`] — the paper's 4D partitioning: processors split into `t`
//!   rank-strips x a 3D grid of `p/t`, with `t` tensor replicas and an
//!   extra (cheap) AllGather along the rank dimension.
//! * [`exec`] — runs every rank's local MTTKRP, validates that the
//!   partition reassembles to the sequential result, and produces the
//!   Table III rows (grid auto-search included).

//! * [`msg`] / [`mpi_exec`] — a thread-backed message-passing world and an
//!   *executed* (not modeled) distributed MTTKRP on top of it: factor
//!   chunks are really exchanged, partials really reduced, and wire bytes
//!   really counted — validating the α–β model's volume assumptions.

// Index-based loops are the clearer idiom for the numeric code in this
// crate (triangular solves, coordinate walks); silence the style lint.
#![allow(clippy::needless_range_loop)]

pub mod als_dist;
pub mod comm;
pub mod exec;
pub mod mpi_exec;
pub mod msg;
pub mod part3d;
pub mod part4d;

pub use als_dist::{distributed_als, sequential_als_reference, DistAlsOptions, DistAlsResult};
pub use comm::CommParams;
pub use exec::{best_3d, best_4d, run_3d, run_4d, DistConfig, DistResult, LocalKernel};
pub use mpi_exec::{execute_3d, execute_4d, ExecOutcome};
pub use part3d::Partition3D;
pub use part4d::Partition4D;
