//! The medium-grained decomposition (Smith & Karypis, ref. [8]), as
//! described in Section VI-D:
//!
//! 1. Randomly permute the indices of every mode (removing any ordering
//!    bias from data collection).
//! 2. Partition mode 1 into `q` chunks by greedily adding slices to a chunk
//!    until it holds at least `nnz/q` nonzeros.
//! 3. Repeat for the other modes (`r`, `s` chunks).
//!
//! Rank `(a, b, c)` of the `q x r x s` processor grid owns the nonzeros
//! falling in chunk `a` of mode 1, `b` of mode 2 and `c` of mode 3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tenblock_tensor::{CooTensor, Entry, Idx, NMODES};

/// A medium-grained 3D partition of a tensor.
///
/// ```
/// use tenblock_dist::Partition3D;
/// use tenblock_tensor::gen::uniform_tensor;
///
/// let x = uniform_tensor([40, 40, 40], 2_000, 3);
/// let part = Partition3D::new(&x, [2, 2, 2], 42);
/// assert_eq!(part.n_ranks(), 8);
/// assert_eq!(part.rank_nnz().iter().sum::<usize>(), 2_000);
/// assert!(part.imbalance() < 2.0); // greedy nnz balancing
/// ```
pub struct Partition3D {
    grid: [usize; NMODES],
    dims: [usize; NMODES],
    /// Greedy chunk boundaries per mode (in relabeled index space),
    /// `grid[m] + 1` entries each.
    bounds: [Vec<usize>; NMODES],
    /// Relabeling maps: `new_index = perm_maps[m][old_index]`.
    perm_maps: [Vec<Idx>; NMODES],
    /// Per-rank local tensors (relabeled coordinates, global dims), indexed
    /// `a*(r*s) + b*s + c`.
    locals: Vec<CooTensor>,
    nnz: usize,
}

/// Greedy nnz-balanced boundaries: walk indices in order, cutting a chunk
/// once it holds at least `nnz / n` nonzeros (the paper's step 2), while
/// leaving enough indices for the remaining chunks.
fn greedy_bounds(per_index_nnz: &[usize], n: usize) -> Vec<usize> {
    let dim = per_index_nnz.len();
    let total: usize = per_index_nnz.iter().sum();
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0);
    let mut idx = 0;
    for chunk in 0..n {
        let remaining_chunks = n - chunk;
        let target = total.div_ceil(n);
        let mut acc = 0;
        // leave at least one index per remaining chunk
        let max_end = dim - (remaining_chunks - 1);
        while idx < max_end && (acc < target || chunk == n - 1) {
            acc += per_index_nnz[idx];
            idx += 1;
            if chunk == n - 1 && idx == dim {
                break;
            }
        }
        if chunk == n - 1 {
            idx = dim;
        }
        bounds.push(idx);
    }
    debug_assert_eq!(*bounds.last().unwrap(), dim);
    bounds
}

/// The chunk containing `idx`.
#[inline]
fn find_chunk(bounds: &[usize], idx: usize) -> usize {
    bounds.partition_point(|&b| b <= idx) - 1
}

impl Partition3D {
    /// Partitions `coo` over a `grid[0] x grid[1] x grid[2]` processor
    /// grid, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if a grid count is zero or exceeds its mode length.
    pub fn new(coo: &CooTensor, grid: [usize; NMODES], seed: u64) -> Self {
        let dims = coo.dims();
        for m in 0..NMODES {
            assert!(grid[m] > 0, "grid counts must be positive");
            assert!(
                grid[m] <= dims[m].max(1),
                "grid count {} exceeds mode length {}",
                grid[m],
                dims[m]
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Step 1: random relabeling per mode.
        let perm_maps: [Vec<Idx>; NMODES] = std::array::from_fn(|m| {
            let mut map: Vec<Idx> = (0..dims[m] as Idx).collect();
            map.shuffle(&mut rng);
            map
        });

        // Relabel all entries once.
        let relabeled: Vec<Entry> = coo
            .entries()
            .iter()
            .map(|e| Entry {
                idx: std::array::from_fn(|m| perm_maps[m][e.idx[m] as usize]),
                val: e.val,
            })
            .collect();

        // Steps 2-3: greedy nnz-balanced boundaries per mode.
        let bounds: [Vec<usize>; NMODES] = std::array::from_fn(|m| {
            let mut per_index = vec![0usize; dims[m]];
            for e in &relabeled {
                per_index[e.idx[m] as usize] += 1;
            }
            greedy_bounds(&per_index, grid[m])
        });

        // Bucket entries by rank.
        let (r, s) = (grid[1], grid[2]);
        let n_ranks = grid[0] * r * s;
        let mut buckets: Vec<Vec<Entry>> = vec![Vec::new(); n_ranks];
        for e in &relabeled {
            let a = find_chunk(&bounds[0], e.idx[0] as usize);
            let b = find_chunk(&bounds[1], e.idx[1] as usize);
            let c = find_chunk(&bounds[2], e.idx[2] as usize);
            buckets[(a * r + b) * s + c].push(*e);
        }
        let locals = buckets
            .into_iter()
            .map(|entries| CooTensor::from_entries(dims, entries))
            .collect();

        Partition3D {
            grid,
            dims,
            bounds,
            perm_maps,
            locals,
            nnz: coo.nnz(),
        }
    }

    /// The processor grid.
    pub fn grid(&self) -> [usize; NMODES] {
        self.grid
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> [usize; NMODES] {
        self.dims
    }

    /// Number of ranks (`q·r·s`).
    pub fn n_ranks(&self) -> usize {
        self.locals.len()
    }

    /// The local tensor of one rank (relabeled coordinates, global dims).
    pub fn local(&self, rank: usize) -> &CooTensor {
        &self.locals[rank]
    }

    /// Chunk boundaries of mode `m` (relabeled index space).
    pub fn bounds(&self, m: usize) -> &[usize] {
        &self.bounds[m]
    }

    /// The relabeling map of mode `m`.
    pub fn perm_map(&self, m: usize) -> &[Idx] {
        &self.perm_maps[m]
    }

    /// Per-rank nonzero counts.
    pub fn rank_nnz(&self) -> Vec<usize> {
        self.locals.iter().map(|t| t.nnz()).collect()
    }

    /// Load imbalance: `max_rank_nnz / mean_rank_nnz` (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        let counts = self.rank_nnz();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.nnz as f64 / counts.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// The whole tensor in relabeled coordinates (for validation).
    pub fn relabeled(&self) -> CooTensor {
        let entries = self
            .locals
            .iter()
            .flat_map(|t| t.entries().iter().copied())
            .collect();
        CooTensor::from_entries(self.dims, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn greedy_bounds_basics() {
        // 10 indices, uniform nnz, 3 chunks
        let b = greedy_bounds(&[2; 10], 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 10);
        for w in b.windows(2) {
            assert!(w[1] > w[0], "chunks must be non-empty: {b:?}");
        }
    }

    #[test]
    fn greedy_bounds_skewed() {
        // one heavy index must not starve later chunks
        let mut nnz = vec![1usize; 8];
        nnz[0] = 100;
        let b = greedy_bounds(&nnz, 4);
        assert_eq!(b.len(), 5);
        assert_eq!(b[4], 8);
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn partition_covers_all_nonzeros() {
        let x = uniform_tensor([30, 40, 20], 1_000, 11);
        let p = Partition3D::new(&x, [3, 2, 4], 7);
        assert_eq!(p.n_ranks(), 24);
        assert_eq!(p.rank_nnz().iter().sum::<usize>(), 1_000);
        // relabeled tensor has the same values multiset
        let rel = p.relabeled();
        assert_eq!(rel.nnz(), 1_000);
        let mut a: Vec<u64> = x.entries().iter().map(|e| e.val.to_bits()).collect();
        let mut b: Vec<u64> = rel.entries().iter().map(|e| e.val.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn locals_respect_chunk_boundaries() {
        let x = uniform_tensor([25, 25, 25], 600, 13);
        let p = Partition3D::new(&x, [2, 3, 2], 5);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    let rank = (a * 3 + b) * 2 + c;
                    for e in p.local(rank).entries() {
                        assert!(find_chunk(p.bounds(0), e.idx[0] as usize) == a);
                        assert!(find_chunk(p.bounds(1), e.idx[1] as usize) == b);
                        assert!(find_chunk(p.bounds(2), e.idx[2] as usize) == c);
                    }
                }
            }
        }
    }

    #[test]
    fn balance_is_reasonable_on_uniform_data() {
        let x = uniform_tensor([100, 100, 100], 20_000, 3);
        let p = Partition3D::new(&x, [2, 2, 2], 9);
        let imb = p.imbalance();
        assert!(imb < 1.5, "imbalance {imb}");
    }

    #[test]
    fn deterministic_in_seed() {
        let x = uniform_tensor([20, 20, 20], 300, 1);
        let a = Partition3D::new(&x, [2, 2, 1], 42);
        let b = Partition3D::new(&x, [2, 2, 1], 42);
        assert_eq!(a.rank_nnz(), b.rank_nnz());
        assert_ne!(
            Partition3D::new(&x, [2, 2, 1], 43).perm_map(0),
            a.perm_map(0)
        );
    }

    #[test]
    fn single_rank_partition() {
        let x = uniform_tensor([10, 10, 10], 100, 2);
        let p = Partition3D::new(&x, [1, 1, 1], 0);
        assert_eq!(p.n_ranks(), 1);
        assert_eq!(p.local(0).nnz(), 100);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }
}
