//! Distributed CP-ALS, executed on the thread-backed message world.
//!
//! Each rank owns a medium-grained block of the tensor (Section VI-D) and a
//! full replica of the factor matrices (the replicated-factor variant of
//! distributed ALS; the medium-grained *partial* factor exchange is
//! exercised separately by [`crate::mpi_exec`]). Per mode update:
//!
//! 1. every rank runs its local MTTKRP at the current factors,
//! 2. partial outputs are all-reduced (counted on the wire),
//! 3. every rank solves the same normal equations (`V = ∘ grams`) and
//!    applies the identical update — replicas stay bit-identical because
//!    the reduction order is fixed by rank id.
//!
//! The result is *executed* distributed ALS whose trajectory can be checked
//! against a sequential run.

use crate::msg::{run_world, RankCtx};
use crate::part3d::Partition3D;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Options for [`distributed_als`].
#[derive(Debug, Clone, Copy)]
pub struct DistAlsOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// ALS iterations (no early stopping, so ranks stay in lockstep).
    pub iters: usize,
    /// Seed for the partition and the initial factors.
    pub seed: u64,
}

/// Result of a distributed ALS run.
pub struct DistAlsResult {
    /// Final factor matrices (identical on every rank; rank 0's copy).
    pub factors: Vec<DenseMatrix>,
    /// Component weights.
    pub lambda: Vec<f64>,
    /// Fit after each iteration, computed against the relabeled tensor.
    pub fit_history: Vec<f64>,
    /// Total bytes sent on the simulated wire.
    pub wire_bytes: u64,
}

/// Deterministic initial factor (shared by every rank and by the
/// sequential reference).
pub fn init_factor(mode: usize, rows: usize, rank: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, rank, |r, c| {
        let mut h = seed ^ ((r as u64) << 18) ^ ((c as u64) << 6) ^ (mode as u64);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8feb86659fd93);
        h ^= h >> 28;
        (h % 1000) as f64 / 1000.0 + 0.05
    })
}

/// One ALS mode update given the (already reduced, global) MTTKRP result.
fn als_update(mttkrp: &DenseMatrix, grams: &[DenseMatrix], mode: usize) -> (DenseMatrix, Vec<f64>) {
    use tenblock_cpd_linalg::{hadamard_assign, normalize_columns, solve_spd_rhs_rows};
    let others: Vec<usize> = (0..NMODES).filter(|&o| o != mode).collect();
    let mut v = grams[others[0]].clone();
    hadamard_assign(&mut v, &grams[others[1]]);
    let mut updated = solve_spd_rhs_rows(&v, mttkrp);
    let lambda = normalize_columns(&mut updated);
    (updated, lambda)
}

// Local re-exports of the linalg helpers (tenblock-dist deliberately does
// not depend on tenblock-cpd to keep the dependency graph a tree, so the
// few small routines ALS needs are duplicated here with tests asserting
// they match the cpd crate's behaviour at the call sites).
mod tenblock_cpd_linalg {
    use tenblock_tensor::DenseMatrix;

    pub fn gram(a: &DenseMatrix) -> DenseMatrix {
        let r = a.cols();
        let mut g = DenseMatrix::zeros(r, r);
        for i in 0..a.rows() {
            let row = a.row(i);
            for p in 0..r {
                let v = row[p];
                if v != 0.0 {
                    let grow = g.row_mut(p);
                    for (q, &w) in row.iter().enumerate() {
                        grow[q] += v * w;
                    }
                }
            }
        }
        g
    }

    pub fn hadamard_assign(a: &mut DenseMatrix, b: &DenseMatrix) {
        for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *x *= y;
        }
    }

    pub fn cholesky(a: &DenseMatrix) -> Option<DenseMatrix> {
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    pub fn solve_spd_rhs_rows(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let l = cholesky(a).unwrap_or_else(|| {
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let mut eps = (trace / n as f64).max(1.0) * 1e-10;
            let mut reg = a.clone();
            loop {
                for i in 0..n {
                    reg.set(i, i, reg.get(i, i) + eps);
                }
                if let Some(l) = cholesky(&reg) {
                    return l;
                }
                eps *= 100.0;
                assert!(eps.is_finite(), "ridge regularization diverged");
            }
        });
        let mut out = DenseMatrix::zeros(b.rows(), n);
        let mut y = vec![0.0; n];
        for r in 0..b.rows() {
            let rhs = b.row(r);
            for i in 0..n {
                let mut s = rhs[i];
                for k in 0..i {
                    s -= l.get(i, k) * y[k];
                }
                y[i] = s / l.get(i, i);
            }
            let orow = out.row_mut(r);
            for i in (0..n).rev() {
                let mut s = y[i];
                for k in i + 1..n {
                    s -= l.get(k, i) * orow[k];
                }
                orow[i] = s / l.get(i, i);
            }
        }
        out
    }

    pub fn normalize_columns(a: &mut DenseMatrix) -> Vec<f64> {
        let rank = a.cols();
        let mut sums = vec![0.0; rank];
        for i in 0..a.rows() {
            for (s, &v) in sums.iter_mut().zip(a.row(i)) {
                *s += v * v;
            }
        }
        let norms: Vec<f64> = sums.iter().map(|s| s.sqrt()).collect();
        for i in 0..a.rows() {
            for (v, &n) in a.row_mut(i).iter_mut().zip(&norms) {
                if n > 0.0 {
                    *v /= n;
                }
            }
        }
        norms
    }
}

/// Fit of the Kruskal model against a sparse tensor (local helper; mirrors
/// `tenblock_cpd::KruskalTensor::fit`).
fn model_fit(x: &CooTensor, lambda: &[f64], factors: &[DenseMatrix]) -> f64 {
    use tenblock_cpd_linalg::{gram, hadamard_assign};
    let rank = lambda.len();
    let inner: f64 = x
        .entries()
        .iter()
        .map(|e| {
            (0..rank)
                .map(|r| {
                    lambda[r]
                        * factors[0].get(e.idx[0] as usize, r)
                        * factors[1].get(e.idx[1] as usize, r)
                        * factors[2].get(e.idx[2] as usize, r)
                })
                .sum::<f64>()
                * e.val
        })
        .sum();
    let mut g = gram(&factors[0]);
    hadamard_assign(&mut g, &gram(&factors[1]));
    hadamard_assign(&mut g, &gram(&factors[2]));
    let mut model_sq = 0.0;
    for p in 0..rank {
        for q in 0..rank {
            model_sq += lambda[p] * lambda[q] * g.get(p, q);
        }
    }
    let x_sq = x.sq_norm();
    if x_sq == 0.0 {
        return if model_sq == 0.0 { 1.0 } else { 0.0 };
    }
    let resid = (x_sq - 2.0 * inner + model_sq).max(0.0);
    1.0 - resid.sqrt() / x_sq.sqrt()
}

/// Runs distributed CP-ALS on `grid` thread-ranks.
pub fn distributed_als(
    coo: &CooTensor,
    grid: [usize; NMODES],
    opts: &DistAlsOptions,
) -> DistAlsResult {
    let part = Partition3D::new(coo, grid, opts.seed);
    let p = part.n_ranks();
    let dims = coo.dims();
    let rank = opts.rank;
    let rel = part.relabeled();

    let (mut results, wire_bytes) = run_world(p, |ctx: &mut RankCtx| {
        let me = ctx.rank();
        let all: Vec<usize> = (0..p).collect();
        let mut factors: Vec<DenseMatrix> = (0..NMODES)
            .map(|m| init_factor(m, dims[m], rank, opts.seed))
            .collect();
        let mut grams: Vec<DenseMatrix> = factors.iter().map(tenblock_cpd_linalg::gram).collect();
        let mut lambda = vec![1.0; rank];
        let local = part.local(me);
        let kernels: Vec<Option<SplattKernel>> = (0..NMODES)
            .map(|m| (local.nnz() > 0).then(|| SplattKernel::new(local, m)))
            .collect();

        for it in 0..opts.iters {
            for m in 0..NMODES {
                let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
                let mut partial = DenseMatrix::zeros(dims[m], rank);
                if let Some(k) = &kernels[m] {
                    k.mttkrp(&fs, &mut partial);
                }
                let tag = (it * NMODES + m) as u64;
                let reduced = ctx.allreduce_sum(&all, tag, partial.as_slice().to_vec());
                let global = DenseMatrix::from_vec(dims[m], rank, reduced);
                let (updated, l) = als_update(&global, &grams, m);
                lambda = l;
                grams[m] = tenblock_cpd_linalg::gram(&updated);
                factors[m] = updated;
            }
        }
        (me == 0).then_some((factors, lambda))
    });

    let (factors, lambda) = results.remove(0).expect("rank 0 returns the factors");
    // fit history is recomputed post-hoc against the relabeled tensor for
    // the final state only; per-iteration fits would need per-iteration
    // snapshots — we recompute the final fit, which tests compare.
    let fit = model_fit(&rel, &lambda, &factors);
    DistAlsResult {
        factors,
        lambda,
        fit_history: vec![fit],
        wire_bytes,
    }
}

/// Sequential reference: the identical algorithm on a single rank. The
/// medium-grained relabeling is seed-determined and grid-independent, so
/// the single-rank trajectory is directly comparable (up to floating-point
/// reduction order) with any multi-rank run at the same seed.
pub fn sequential_als_reference(coo: &CooTensor, opts: &DistAlsOptions) -> DistAlsResult {
    distributed_als(coo, [1, 1, 1], opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn distributed_als_matches_single_rank_run() {
        let x = uniform_tensor([15, 12, 10], 400, 6);
        let opts = DistAlsOptions {
            rank: 4,
            iters: 6,
            seed: 11,
        };
        // identical partition seed => identical relabeling => identical math
        let single = distributed_als(&x, [1, 1, 1], &opts);
        let multi = distributed_als(&x, [2, 2, 1], &opts);
        // The relabeled tensors differ only by... nothing: the relabeling
        // depends on the seed, not the grid (per-mode shuffles are drawn
        // before boundaries). Factors must agree to fp-reduction tolerance.
        for m in 0..NMODES {
            assert!(
                single.factors[m].approx_eq(&multi.factors[m], 1e-8),
                "mode {m} factors diverge: max diff {}",
                single.factors[m].max_abs_diff(&multi.factors[m])
            );
        }
        assert!((single.fit_history[0] - multi.fit_history[0]).abs() < 1e-8);
        assert_eq!(single.wire_bytes, 0);
        assert!(multi.wire_bytes > 0);
    }

    #[test]
    fn distributed_als_improves_fit() {
        let x = uniform_tensor([20, 20, 20], 800, 9);
        let short = distributed_als(
            &x,
            [2, 1, 2],
            &DistAlsOptions {
                rank: 4,
                iters: 1,
                seed: 3,
            },
        );
        let long = distributed_als(
            &x,
            [2, 1, 2],
            &DistAlsOptions {
                rank: 4,
                iters: 10,
                seed: 3,
            },
        );
        assert!(
            long.fit_history[0] >= short.fit_history[0] - 1e-9,
            "fit regressed: {} vs {}",
            long.fit_history[0],
            short.fit_history[0]
        );
    }

    #[test]
    fn wire_volume_scales_with_iterations() {
        let x = uniform_tensor([12, 12, 12], 300, 4);
        let one = distributed_als(
            &x,
            [2, 2, 2],
            &DistAlsOptions {
                rank: 3,
                iters: 1,
                seed: 5,
            },
        );
        let three = distributed_als(
            &x,
            [2, 2, 2],
            &DistAlsOptions {
                rank: 3,
                iters: 3,
                seed: 5,
            },
        );
        assert_eq!(three.wire_bytes, 3 * one.wire_bytes);
    }
}
