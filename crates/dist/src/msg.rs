//! A thread-backed message-passing world: the MPI-like substrate under the
//! *executed* (as opposed to modeled) distributed MTTKRP.
//!
//! Every rank is a thread; sends are tagged, buffered, and matched out of
//! order, exactly like MPI point-to-point semantics. Collectives are
//! implemented on top of point-to-point so the byte counters measure real
//! wire volume, which the tests compare against the α–β model's volume
//! assumptions.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type Packet = (usize, u64, Vec<f64>);

/// Per-rank communication context handed to the rank body.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Out-of-order buffer: (from, tag) -> queued payloads.
    pending: HashMap<(usize, u64), Vec<Vec<f64>>>,
    bytes_sent: Arc<AtomicU64>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to rank `to` under `tag` (non-blocking; unbounded
    /// buffering).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.bytes_sent
            .fetch_add((data.len() * 8) as u64, Ordering::Relaxed);
        self.senders[to]
            .send((self.rank, tag, data))
            .expect("receiver alive");
    }

    /// Receives the next message from `from` with `tag`, blocking until it
    /// arrives; other messages are buffered for later matching.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if !q.is_empty() {
                return q.remove(0);
            }
        }
        loop {
            let (f, t, data) = self.receiver.recv().expect("sender alive");
            if f == from && t == tag {
                return data;
            }
            self.pending.entry((f, t)).or_default().push(data);
        }
    }

    /// AllGather within `group` (must contain this rank): returns every
    /// member's contribution, ordered as in `group`. Naive all-to-all
    /// exchange — the byte count is the true total volume.
    pub fn allgather(&mut self, group: &[usize], tag: u64, mine: Vec<f64>) -> Vec<Vec<f64>> {
        debug_assert!(group.contains(&self.rank));
        for &peer in group {
            if peer != self.rank {
                self.send(peer, tag, mine.clone());
            }
        }
        group
            .iter()
            .map(|&peer| {
                if peer == self.rank {
                    mine.clone()
                } else {
                    self.recv(peer, tag)
                }
            })
            .collect()
    }

    /// AllReduce (sum) within `group`: every member returns the
    /// element-wise sum of all contributions.
    pub fn allreduce_sum(&mut self, group: &[usize], tag: u64, mine: Vec<f64>) -> Vec<f64> {
        let parts = self.allgather(group, tag, mine);
        let mut out = vec![0.0; parts[0].len()];
        for p in parts {
            debug_assert_eq!(p.len(), out.len());
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
        out
    }

    /// Bytes sent by ALL ranks so far (shared counter).
    pub fn world_bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
}

/// Runs `body` on `p` rank-threads and returns their results in rank
/// order, plus the total bytes sent on the (simulated) wire.
pub fn run_world<F, R>(p: usize, body: F) -> (Vec<R>, u64)
where
    F: Fn(&mut RankCtx) -> R + Sync,
    R: Send,
{
    assert!(p > 0, "world must have at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let bytes = Arc::new(AtomicU64::new(0));

    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| {
                let senders = senders.clone();
                let bytes = Arc::clone(&bytes);
                let body = &body;
                scope.spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        size: p,
                        senders,
                        receiver,
                        pending: HashMap::new(),
                        bytes_sent: bytes,
                    };
                    body(&mut ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    let total = bytes.load(Ordering::Relaxed);
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptp_roundtrip() {
        let (results, bytes) = run_world(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0, 2.0, 3.0]);
                0.0
            } else {
                ctx.recv(0, 7).iter().sum::<f64>()
            }
        });
        assert_eq!(results[1], 6.0);
        assert_eq!(bytes, 24);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let (results, _) = run_world(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![10.0]);
                ctx.send(1, 2, vec![20.0]);
                0.0
            } else {
                // receive tag 2 first even though tag 1 arrives first
                let b = ctx.recv(0, 2)[0];
                let a = ctx.recv(0, 1)[0];
                a * 100.0 + b
            }
        });
        assert_eq!(results[1], 1020.0);
    }

    #[test]
    fn allgather_ordering_and_volume() {
        let (results, bytes) = run_world(4, |ctx| {
            let mine = vec![ctx.rank() as f64; 2];
            let all = ctx.allgather(&[0, 1, 2, 3], 5, mine);
            all.iter().map(|v| v[0]).collect::<Vec<f64>>()
        });
        for r in &results {
            assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
        }
        // each of 4 ranks sends 2 doubles to 3 peers
        assert_eq!(bytes, 4 * 3 * 16);
    }

    #[test]
    fn allreduce_sums() {
        let (results, _) = run_world(3, |ctx| {
            ctx.allreduce_sum(&[0, 1, 2], 9, vec![ctx.rank() as f64 + 1.0])
        });
        for r in results {
            assert_eq!(r, vec![6.0]);
        }
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        let (results, _) = run_world(4, |ctx| {
            let group: Vec<usize> = if ctx.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            ctx.allreduce_sum(&group, 3, vec![ctx.rank() as f64])[0]
        });
        assert_eq!(results, vec![1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn single_rank_world() {
        let (results, bytes) = run_world(1, |ctx| ctx.allreduce_sum(&[0], 0, vec![42.0])[0]);
        assert_eq!(results, vec![42.0]);
        assert_eq!(bytes, 0);
    }
}
