//! α–β communication cost models.
//!
//! A message of `n` bytes costs `α + n·β`. Collectives use the standard
//! bandwidth-optimal algorithm costs (Thakur et al.): recursive doubling /
//! ring, `log₂(p)` latency terms and `(p-1)/p` of the data volume on the
//! wire.

/// Network parameters.
#[derive(Debug, Clone, Copy)]
pub struct CommParams {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-byte transfer time in seconds (1 / bandwidth).
    pub beta: f64,
}

impl CommParams {
    /// A 2018-era InfiniBand EDR-class cluster like the paper's: ~1.5 µs
    /// latency, ~12 GB/s per-link bandwidth.
    pub fn cluster_2018() -> Self {
        CommParams {
            alpha: 1.5e-6,
            beta: 1.0 / 12.0e9,
        }
    }

    /// Point-to-point message of `bytes`.
    pub fn ptp(&self, bytes: f64) -> f64 {
        self.alpha + bytes * self.beta
    }

    /// AllGather over `p` ranks where the *gathered total* is `total_bytes`
    /// (each rank contributes `total_bytes / p`). Ring/recursive-doubling
    /// cost: `log₂(p)·α + (p-1)/p · total·β`.
    pub fn allgather(&self, p: usize, total_bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        (pf.log2().ceil()) * self.alpha + (pf - 1.0) / pf * total_bytes * self.beta
    }

    /// Reduce-Scatter over `p` ranks of a `total_bytes` buffer; same wire
    /// cost shape as AllGather (reduction flops ignored).
    pub fn reduce_scatter(&self, p: usize, total_bytes: f64) -> f64 {
        self.allgather(p, total_bytes)
    }

    /// AllReduce = Reduce-Scatter + AllGather.
    pub fn allreduce(&self, p: usize, total_bytes: f64) -> f64 {
        self.reduce_scatter(p, total_bytes) + self.allgather(p, total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        let c = CommParams::cluster_2018();
        assert_eq!(c.allgather(1, 1e9), 0.0);
        assert_eq!(c.reduce_scatter(1, 1e9), 0.0);
        assert_eq!(c.allreduce(1, 1e9), 0.0);
    }

    #[test]
    fn costs_scale_with_volume_and_ranks() {
        let c = CommParams::cluster_2018();
        let small = c.allgather(4, 1e6);
        let big = c.allgather(4, 1e7);
        assert!(big > small);
        // more ranks -> more latency terms and larger (p-1)/p factor
        assert!(c.allgather(64, 1e6) > c.allgather(4, 1e6));
        // allreduce is exactly two phases
        assert!((c.allreduce(8, 1e6) - 2.0 * c.allgather(8, 1e6)).abs() < 1e-15);
    }

    #[test]
    fn ptp_affine() {
        let c = CommParams {
            alpha: 1e-6,
            beta: 1e-9,
        };
        assert!((c.ptp(0.0) - 1e-6).abs() < 1e-18);
        assert!((c.ptp(1000.0) - (1e-6 + 1e-6)).abs() < 1e-12);
    }
}
