//! The *executed* distributed MTTKRP: every rank is a thread, factor-row
//! chunks are really exchanged over the message world, local kernels really
//! run, and partial outputs are really reduced — validating both the
//! medium-grained algorithm and the α–β model's volume assumptions with
//! counted bytes.
//!
//! Protocol per mode-1 MTTKRP iteration (Section VI-D):
//!
//! 1. The owner of each mode-2 row chunk broadcasts it within its
//!    `j`-layer; same for mode-3 chunks within the `k`-layer.
//! 2. Every rank runs its local kernel on its sub-tensor.
//! 3. Partial output rows are all-reduced within each `i`-layer.
//! 4. One representative per `i`-layer ships the reduced rows to rank 0,
//!    which assembles the final factor (verification step, not part of the
//!    timed iteration).

use crate::exec::LocalKernel;
use crate::msg::{run_world, RankCtx};
use crate::part3d::Partition3D;
use tenblock_core::block::MbRankBKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Result of one executed distributed MTTKRP.
pub struct ExecOutcome {
    /// The assembled mode-1 MTTKRP of the **relabeled** tensor
    /// (coordinates are permuted by the medium-grained relabeling; compare
    /// against a sequential MTTKRP of [`Partition3D::relabeled`]).
    pub output: DenseMatrix,
    /// Total bytes actually sent between ranks.
    pub wire_bytes: u64,
    /// Ranks in the world.
    pub n_ranks: usize,
}

/// Deterministic factor rows for global row indices `[lo, hi)` of `mode`.
fn factor_chunk(mode: usize, lo: usize, hi: usize, rank: usize, seed: u64) -> Vec<f64> {
    let mut out = Vec::with_capacity((hi - lo) * rank);
    for row in lo..hi {
        for col in 0..rank {
            let mut h = seed ^ ((row as u64) << 20) ^ ((col as u64) << 2) ^ (mode as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0x2545f4914f6cdd1d);
            h ^= h >> 29;
            out.push((h % 997) as f64 / 997.0 - 0.5);
        }
    }
    out
}

/// The full factor matrix rank 0 would assemble — used by tests to run the
/// sequential comparison.
pub fn full_factor(mode: usize, rows: usize, rank: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_vec(rows, rank, factor_chunk(mode, 0, rows, rank, seed))
}

/// Executes a 3D medium-grained distributed mode-1 MTTKRP for real on
/// thread-ranks.
pub fn execute_3d(
    coo: &CooTensor,
    grid: [usize; NMODES],
    rank: usize,
    local: LocalKernel,
    seed: u64,
) -> ExecOutcome {
    let part = Partition3D::new(coo, grid, seed);
    let (q, r, s) = (grid[0], grid[1], grid[2]);
    let p = q * r * s;
    let dims = coo.dims();
    let rank_id = |a: usize, b: usize, c: usize| (a * r + b) * s + c;

    let (mut results, wire_bytes) = run_world(p, |ctx: &mut RankCtx| {
        let me = ctx.rank();
        let (a, b, c) = (me / (r * s), (me / s) % r, me % s);

        // --- step 1: factor-chunk broadcasts -------------------------------
        // mode-2 chunk b: owner (0, b, 0)
        let (jb_lo, jb_hi) = (part.bounds(1)[b], part.bounds(1)[b + 1]);
        let b_chunk = if (a, c) == (0, 0) {
            let data = factor_chunk(1, jb_lo, jb_hi, rank, seed);
            for aa in 0..q {
                for cc in 0..s {
                    if (aa, cc) != (0, 0) {
                        ctx.send(rank_id(aa, b, cc), 100 + b as u64, data.clone());
                    }
                }
            }
            data
        } else {
            ctx.recv(rank_id(0, b, 0), 100 + b as u64)
        };
        // mode-3 chunk c: owner (0, 0, c)
        let (kc_lo, kc_hi) = (part.bounds(2)[c], part.bounds(2)[c + 1]);
        let c_chunk = if (a, b) == (0, 0) {
            let data = factor_chunk(2, kc_lo, kc_hi, rank, seed);
            for aa in 0..q {
                for bb in 0..r {
                    if (aa, bb) != (0, 0) {
                        ctx.send(rank_id(aa, bb, c), 200 + c as u64, data.clone());
                    }
                }
            }
            data
        } else {
            ctx.recv(rank_id(0, 0, c), 200 + c as u64)
        };

        // scatter the chunks into full-size factor matrices (rows outside
        // the chunk are never read: the local tensor only references its
        // own chunk ranges)
        let mut bmat = DenseMatrix::zeros(dims[1], rank);
        bmat.as_mut_slice()[jb_lo * rank..jb_hi * rank].copy_from_slice(&b_chunk);
        let mut cmat = DenseMatrix::zeros(dims[2], rank);
        cmat.as_mut_slice()[kc_lo * rank..kc_hi * rank].copy_from_slice(&c_chunk);
        let amat = DenseMatrix::zeros(dims[0], rank);

        // --- step 2: local kernel ------------------------------------------
        let local_t = part.local(me);
        let mut out = DenseMatrix::zeros(dims[0], rank);
        if local_t.nnz() > 0 {
            let kernel: Box<dyn MttkrpKernel> = match local {
                LocalKernel::Baseline => Box::new(SplattKernel::new(local_t, 0)),
                LocalKernel::Blocked { grid: g, strip } => {
                    let clamped = std::array::from_fn(|ax| g[ax].clamp(1, dims[ax].max(1)));
                    Box::new(MbRankBKernel::new(
                        local_t,
                        0,
                        clamped,
                        strip.clamp(1, rank),
                    ))
                }
            };
            kernel.mttkrp(&[&amat, &bmat, &cmat], &mut out);
        }

        // --- step 3: reduce partial rows within the i-layer -----------------
        let (ia_lo, ia_hi) = (part.bounds(0)[a], part.bounds(0)[a + 1]);
        let mine: Vec<f64> = out.as_slice()[ia_lo * rank..ia_hi * rank].to_vec();
        let layer: Vec<usize> = (0..r)
            .flat_map(|bb| (0..s).map(move |cc| rank_id(a, bb, cc)))
            .collect();
        let reduced = ctx.allreduce_sum(&layer, 300 + a as u64, mine);

        // --- step 4: representatives ship to rank 0 ------------------------
        if (b, c) == (0, 0) && me != 0 {
            ctx.send(0, 400 + a as u64, reduced.clone());
        }
        if me == 0 {
            let mut assembled = DenseMatrix::zeros(dims[0], rank);
            for aa in 0..q {
                let (lo, hi) = (part.bounds(0)[aa], part.bounds(0)[aa + 1]);
                let chunk = if aa == a {
                    reduced.clone()
                } else {
                    ctx.recv(rank_id(aa, 0, 0), 400 + aa as u64)
                };
                assembled.as_mut_slice()[lo * rank..hi * rank].copy_from_slice(&chunk);
            }
            Some(assembled)
        } else {
            None
        }
    });

    let output = results.remove(0).expect("rank 0 assembles the output");
    ExecOutcome {
        output,
        wire_bytes,
        n_ranks: p,
    }
}

/// Executes a 4D (rank-split) distributed mode-1 MTTKRP for real: `t`
/// replica groups of `q x r x s` thread-ranks each. Group `g` runs the 3D
/// protocol on columns `strip_cols(g)` only; rank 0 assembles the full
/// output column-wise. The only cross-group traffic is the final
/// column-strip gather — the paper's "extra AllGather along the rank
/// dimension".
pub fn execute_4d(
    coo: &CooTensor,
    grid3: [usize; NMODES],
    t: usize,
    rank: usize,
    local: LocalKernel,
    seed: u64,
) -> ExecOutcome {
    use crate::part4d::Partition4D;
    let part4 = Partition4D::new(coo, grid3, t, rank, seed);
    let part = Partition3D::new(coo, grid3, seed); // same seed => same layout
    let (q, r, s) = (grid3[0], grid3[1], grid3[2]);
    let p3 = q * r * s;
    let p = t * p3;
    let dims = coo.dims();
    let rank_id = |g: usize, a: usize, b: usize, c: usize| g * p3 + (a * r + b) * s + c;

    let (mut results, wire_bytes) = run_world(p, |ctx: &mut RankCtx| {
        let me = ctx.rank();
        let g = me / p3;
        let m3 = me % p3;
        let (a, b, c) = (m3 / (r * s), (m3 / s) % r, m3 % s);
        let cols = part4.strip_cols(g);
        let w = cols.len();

        // factor-chunk broadcasts within the replica group, strip columns
        // only (full-width rows are generated, then windowed: ownership of
        // the column strips is what the 4D scheme distributes)
        let (jb_lo, jb_hi) = (part.bounds(1)[b], part.bounds(1)[b + 1]);
        let strip_of = |mode: usize, lo: usize, hi: usize| -> Vec<f64> {
            let full = factor_chunk(mode, lo, hi, rank, seed);
            let mut out = Vec::with_capacity((hi - lo) * w);
            for row in 0..hi - lo {
                out.extend_from_slice(&full[row * rank + cols.start..row * rank + cols.end]);
            }
            out
        };
        let b_chunk = if (a, c) == (0, 0) {
            let data = strip_of(1, jb_lo, jb_hi);
            for aa in 0..q {
                for cc in 0..s {
                    if (aa, cc) != (0, 0) {
                        ctx.send(rank_id(g, aa, b, cc), 100 + b as u64, data.clone());
                    }
                }
            }
            data
        } else {
            ctx.recv(rank_id(g, 0, b, 0), 100 + b as u64)
        };
        let (kc_lo, kc_hi) = (part.bounds(2)[c], part.bounds(2)[c + 1]);
        let c_chunk = if (a, b) == (0, 0) {
            let data = strip_of(2, kc_lo, kc_hi);
            for aa in 0..q {
                for bb in 0..r {
                    if (aa, bb) != (0, 0) {
                        ctx.send(rank_id(g, aa, bb, c), 200 + c as u64, data.clone());
                    }
                }
            }
            data
        } else {
            ctx.recv(rank_id(g, 0, 0, c), 200 + c as u64)
        };

        let mut bmat = DenseMatrix::zeros(dims[1], w);
        bmat.as_mut_slice()[jb_lo * w..jb_hi * w].copy_from_slice(&b_chunk);
        let mut cmat = DenseMatrix::zeros(dims[2], w);
        cmat.as_mut_slice()[kc_lo * w..kc_hi * w].copy_from_slice(&c_chunk);
        let amat = DenseMatrix::zeros(dims[0], w);

        let local_t = part.local(m3);
        let mut out = DenseMatrix::zeros(dims[0], w);
        if local_t.nnz() > 0 {
            let kernel: Box<dyn MttkrpKernel> = match local {
                LocalKernel::Baseline => Box::new(SplattKernel::new(local_t, 0)),
                LocalKernel::Blocked { grid: gg, strip } => {
                    let clamped = std::array::from_fn(|ax| gg[ax].clamp(1, dims[ax].max(1)));
                    Box::new(MbRankBKernel::new(local_t, 0, clamped, strip.clamp(1, w)))
                }
            };
            kernel.mttkrp(&[&amat, &bmat, &cmat], &mut out);
        }

        // reduce partial rows within this replica's i-layer
        let (ia_lo, ia_hi) = (part.bounds(0)[a], part.bounds(0)[a + 1]);
        let mine: Vec<f64> = out.as_slice()[ia_lo * w..ia_hi * w].to_vec();
        let layer: Vec<usize> = (0..r)
            .flat_map(|bb| (0..s).map(move |cc| rank_id(g, a, bb, cc)))
            .collect();
        let reduced = ctx.allreduce_sum(&layer, 300 + a as u64, mine);

        // layer representatives ship their (strip-wide) chunk to rank 0
        if (b, c) == (0, 0) && me != 0 {
            ctx.send(0, 400 + (g * q + a) as u64, reduced.clone());
        }
        if me == 0 {
            let mut assembled = DenseMatrix::zeros(dims[0], rank);
            for gg in 0..t {
                let gcols = part4.strip_cols(gg);
                let gw = gcols.len();
                for aa in 0..q {
                    let (lo, hi) = (part.bounds(0)[aa], part.bounds(0)[aa + 1]);
                    let chunk = if (gg, aa) == (g, a) {
                        reduced.clone()
                    } else {
                        ctx.recv(rank_id(gg, aa, 0, 0), 400 + (gg * q + aa) as u64)
                    };
                    for (row_off, row) in (lo..hi).enumerate() {
                        assembled.row_mut(row)[gcols.clone()]
                            .copy_from_slice(&chunk[row_off * gw..(row_off + 1) * gw]);
                    }
                }
            }
            Some(assembled)
        } else {
            None
        }
    });

    let output = results.remove(0).expect("rank 0 assembles the output");
    ExecOutcome {
        output,
        wire_bytes,
        n_ranks: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_core::mttkrp::dense_mttkrp;
    use tenblock_tensor::gen::uniform_tensor;

    fn sequential_reference(
        part_seed: u64,
        x: &CooTensor,
        grid: [usize; NMODES],
        rank: usize,
    ) -> DenseMatrix {
        let part = Partition3D::new(x, grid, part_seed);
        let rel = part.relabeled();
        let dims = x.dims();
        let a = full_factor(0, dims[0], rank, part_seed);
        let b = full_factor(1, dims[1], rank, part_seed);
        let c = full_factor(2, dims[2], rank, part_seed);
        dense_mttkrp(&rel, &[&a, &b, &c], 0)
    }

    #[test]
    fn executed_3d_matches_sequential() {
        let x = uniform_tensor([18, 16, 14], 500, 4);
        for grid in [[1, 1, 1], [2, 2, 2], [3, 1, 2], [1, 4, 1]] {
            let out = execute_3d(&x, grid, 6, LocalKernel::Baseline, 77);
            let expect = sequential_reference(77, &x, grid, 6);
            assert!(
                expect.approx_eq(&out.output, 1e-9),
                "grid {grid:?}: max diff {}",
                expect.max_abs_diff(&out.output)
            );
        }
    }

    #[test]
    fn executed_3d_blocked_local_matches() {
        let x = uniform_tensor([20, 24, 18], 800, 9);
        let out = execute_3d(
            &x,
            [2, 2, 1],
            8,
            LocalKernel::Blocked {
                grid: [2, 2, 2],
                strip: 8,
            },
            5,
        );
        let expect = sequential_reference(5, &x, [2, 2, 1], 8);
        assert!(expect.approx_eq(&out.output, 1e-9));
    }

    #[test]
    fn executed_4d_matches_sequential() {
        let x = uniform_tensor([16, 15, 14], 450, 12);
        for (grid3, t) in [
            ([2, 1, 1], 2),
            ([1, 2, 1], 3),
            ([2, 2, 1], 2),
            ([1, 1, 1], 4),
        ] {
            let out = execute_4d(&x, grid3, t, 8, LocalKernel::Baseline, 21);
            let expect = sequential_reference(21, &x, grid3, 8);
            assert!(
                expect.approx_eq(&out.output, 1e-9),
                "grid {grid3:?} t={t}: max diff {}",
                expect.max_abs_diff(&out.output)
            );
            assert_eq!(out.n_ranks, t * grid3.iter().product::<usize>());
        }
    }

    #[test]
    fn executed_4d_blocked_local_matches() {
        let x = uniform_tensor([18, 20, 16], 700, 2);
        let out = execute_4d(
            &x,
            [2, 1, 2],
            2,
            12,
            LocalKernel::Blocked {
                grid: [2, 2, 2],
                strip: 4,
            },
            9,
        );
        let expect = sequential_reference(9, &x, [2, 1, 2], 12);
        assert!(expect.approx_eq(&out.output, 1e-9));
    }

    #[test]
    fn executed_4d_t1_equals_3d() {
        let x = uniform_tensor([14, 14, 14], 350, 8);
        let o3 = execute_3d(&x, [2, 2, 1], 6, LocalKernel::Baseline, 4);
        let o4 = execute_4d(&x, [2, 2, 1], 1, 6, LocalKernel::Baseline, 4);
        assert!(o3.output.approx_eq(&o4.output, 1e-12));
    }

    #[test]
    fn wire_bytes_grow_with_grid() {
        let x = uniform_tensor([30, 30, 30], 1_000, 2);
        let single = execute_3d(&x, [1, 1, 1], 8, LocalKernel::Baseline, 3);
        let eight = execute_3d(&x, [2, 2, 2], 8, LocalKernel::Baseline, 3);
        assert_eq!(single.wire_bytes, 0, "one rank should not communicate");
        assert!(eight.wire_bytes > 0);
        assert_eq!(eight.n_ranks, 8);
    }

    #[test]
    fn wire_volume_matches_protocol_accounting() {
        // grid 2x2x1, rank width R: volumes are exactly computable
        let x = uniform_tensor([10, 12, 8], 200, 6);
        let rank = 4;
        let grid = [2usize, 2, 1];
        let out = execute_3d(&x, grid, rank, LocalKernel::Baseline, 11);
        let part = Partition3D::new(&x, grid, 11);
        let row = 8 * rank as u64;
        // B chunks: owner (0,b,0) sends to (q*s - 1) = 1 peer each
        let b_bytes: u64 = (0..2)
            .map(|b| (part.bounds(1)[b + 1] - part.bounds(1)[b]) as u64 * row)
            .sum();
        // C chunk: owner (0,0,0) sends to q*r - 1 = 3 peers
        let c_bytes = 3 * (part.bounds(2)[1] - part.bounds(2)[0]) as u64 * row;
        // i-layer allreduce: per layer a, group g = r*s = 2 ranks each
        // send their chunk to g-1 = 1 peer
        let a_bytes: u64 = (0..2)
            .map(|a| 2 * (part.bounds(0)[a + 1] - part.bounds(0)[a]) as u64 * row)
            .sum();
        // rank-0 gather: representative of layer a=1 ships its chunk
        let gather_bytes = (part.bounds(0)[2] - part.bounds(0)[1]) as u64 * row;
        let expect = b_bytes + c_bytes + a_bytes + gather_bytes;
        assert_eq!(out.wire_bytes, expect);
    }
}
