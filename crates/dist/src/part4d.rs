//! The 4D partitioning of Section VI-D: the processor set is first split
//! into `t` groups along the decomposition rank, then each group of `p/t`
//! processors applies the medium-grained 3D decomposition to the *entire*
//! tensor. There are therefore `t` replicas of the tensor, and group `g`
//! computes only columns `[col_begin(g), col_end(g))` of every factor —
//! "operations on different blocks along the rank are completely
//! independent", so the only extra communication is an AllGather along the
//! rank dimension to reassemble full factors.

use crate::part3d::Partition3D;
use tenblock_tensor::{CooTensor, NMODES};

/// A 4D (`q' x r' x s' x t`) partition.
pub struct Partition4D {
    /// The shared 3D partition applied inside every rank-group (the tensor
    /// replica: every group holds the same distribution).
    part3: Partition3D,
    /// Number of rank-strips `t`.
    t: usize,
    /// Column boundaries of the rank strips: `t + 1` entries over `0..R`.
    col_bounds: Vec<usize>,
}

impl Partition4D {
    /// Partitions for `t` rank-strips of a rank-`rank` decomposition, with
    /// the 3D grid `grid3` inside each strip group.
    ///
    /// # Panics
    /// Panics if `t == 0` or `t > rank`.
    pub fn new(coo: &CooTensor, grid3: [usize; NMODES], t: usize, rank: usize, seed: u64) -> Self {
        assert!(t > 0, "t must be positive");
        assert!(t <= rank, "cannot split rank {rank} into {t} strips");
        let col_bounds = (0..=t).map(|g| g * rank / t).collect();
        Partition4D {
            part3: Partition3D::new(coo, grid3, seed),
            t,
            col_bounds,
        }
    }

    /// Number of rank-strips.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The 3D partition shared by every strip group.
    pub fn part3(&self) -> &Partition3D {
        &self.part3
    }

    /// Total ranks: `t * q * r * s`.
    pub fn n_ranks(&self) -> usize {
        self.t * self.part3.n_ranks()
    }

    /// Column range of strip group `g`.
    pub fn strip_cols(&self, g: usize) -> std::ops::Range<usize> {
        self.col_bounds[g]..self.col_bounds[g + 1]
    }

    /// Width of the widest strip (per-group local rank).
    pub fn max_strip_width(&self) -> usize {
        (0..self.t)
            .map(|g| self.strip_cols(g).len())
            .max()
            .unwrap_or(0)
    }

    /// Memory overhead factor of tensor replication: `t` copies.
    pub fn replication_factor(&self) -> usize {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn strips_cover_rank_exactly() {
        let x = uniform_tensor([20, 20, 20], 400, 3);
        let p = Partition4D::new(&x, [2, 1, 2], 3, 32, 1);
        assert_eq!(p.n_ranks(), 12);
        let mut covered = 0;
        for g in 0..3 {
            let r = p.strip_cols(g);
            assert_eq!(r.start, covered);
            covered = r.end;
            assert!(!r.is_empty());
        }
        assert_eq!(covered, 32);
        assert_eq!(p.max_strip_width(), 11);
        assert_eq!(p.replication_factor(), 3);
    }

    #[test]
    fn t_equals_one_degenerates_to_3d() {
        let x = uniform_tensor([10, 10, 10], 100, 5);
        let p = Partition4D::new(&x, [2, 2, 1], 1, 16, 2);
        assert_eq!(p.n_ranks(), 4);
        assert_eq!(p.strip_cols(0), 0..16);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_strips_panics() {
        let x = uniform_tensor([5, 5, 5], 20, 1);
        Partition4D::new(&x, [1, 1, 1], 9, 8, 0);
    }
}
