//! Distributed MTTKRP execution: real local kernels + modeled network.
//!
//! One Table III cell is produced by [`run_3d`] / [`run_4d`]: the tensor is
//! partitioned, the *largest* rank's local mode-1 MTTKRP is executed for
//! real on this machine (per-rank compute is nnz-proportional, so the
//! maximum rank bounds the compute phase), and the per-iteration
//! communication of the medium-grained exchange is priced by the α–β model:
//!
//! * AllGather of the needed mode-2 factor rows within each `j`-layer,
//! * AllGather of the needed mode-3 factor rows within each `k`-layer,
//! * Reduce-Scatter of the partial output rows within each `i`-layer,
//! * (4D only) AllGather of the column strips along the rank dimension.
//!
//! [`best_3d`] / [`best_4d`] search the processor-grid factorizations with
//! the communication model and return the measured result for the winner —
//! mirroring how distributed SPLATT picks its grid.

use crate::comm::CommParams;
use crate::part3d::Partition3D;
use crate::part4d::Partition4D;
use std::time::Instant;
use tenblock_core::block::MbRankBKernel;
use tenblock_core::mttkrp::SplattKernel;
use tenblock_core::MttkrpKernel;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Which kernel each rank runs locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKernel {
    /// Baseline Algorithm 1 (distributed SPLATT's local kernel).
    Baseline,
    /// This paper's MB+RankB kernel with the given grid and strip width.
    Blocked {
        /// MB grid (kernel axes), clamped to the local mode lengths.
        grid: [usize; NMODES],
        /// RankB strip width in columns.
        strip: usize,
    },
}

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Local kernel choice.
    pub local: LocalKernel,
    /// Network parameters.
    pub comm: CommParams,
    /// Seed for the medium-grained random relabeling.
    pub seed: u64,
    /// Timing repetitions for the local kernel (minimum kept).
    pub reps: usize,
}

impl DistConfig {
    /// Defaults: blocked local kernel (register blocking over the full
    /// rank; per-rank sub-tensors are small enough that a single strip and
    /// no MB grid is the right local configuration), 2018-cluster network.
    pub fn new(rank: usize) -> Self {
        DistConfig {
            rank,
            local: LocalKernel::Blocked {
                grid: [1, 1, 1],
                strip: usize::MAX,
            },
            comm: CommParams::cluster_2018(),
            seed: 0x5eed,
            reps: 2,
        }
    }
}

/// One Table III cell.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Processor grid `[q, r, s, t]` (`t = 1` for 3D runs).
    pub grid: [usize; 4],
    /// Modeled per-iteration time: `compute + comm`.
    pub total_secs: f64,
    /// Measured local compute time of the largest rank.
    pub compute_secs: f64,
    /// Modeled communication time.
    pub comm_secs: f64,
    /// Largest per-rank nonzero count.
    pub max_nnz: usize,
    /// Load imbalance (`max/mean` nnz).
    pub imbalance: f64,
}

/// Widest chunk of a bounds vector.
fn max_chunk(bounds: &[usize]) -> usize {
    bounds.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
}

/// Builds and times the local mode-1 MTTKRP of `local` at factor width
/// `width`; returns seconds (min over `reps`).
fn time_local(local: &CooTensor, kernel: LocalKernel, width: usize, reps: usize) -> f64 {
    let dims = local.dims();
    let mk = |d: usize, salt: usize| {
        DenseMatrix::from_fn(d, width, |r, c| {
            (((r * 31 + c * 7 + salt) % 17) as f64 - 8.0) * 0.05
        })
    };
    let b = mk(dims[1], 1);
    let c = mk(dims[2], 2);
    let a = DenseMatrix::zeros(dims[0], width);
    let mut out = DenseMatrix::zeros(dims[0], width);
    let fs: [&DenseMatrix; NMODES] = [&a, &b, &c];

    let kernel: Box<dyn MttkrpKernel> = match kernel {
        LocalKernel::Baseline => Box::new(SplattKernel::new(local, 0)),
        LocalKernel::Blocked { grid, strip } => {
            let clamped = std::array::from_fn(|ax| grid[ax].clamp(1, dims[ax].max(1)));
            Box::new(MbRankBKernel::new(
                local,
                0,
                clamped,
                strip.clamp(1, width.max(1)),
            ))
        }
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        kernel.mttkrp(&fs, &mut out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(out.as_slice());
    best
}

/// Modeled per-iteration communication of the medium-grained exchange for
/// the mode-1 MTTKRP on a `q x r x s` grid at factor width `width`.
fn comm_3d(
    comm: &CommParams,
    grid: [usize; NMODES],
    mode_chunks: [usize; NMODES],
    width: usize,
) -> f64 {
    let (q, r, s) = (grid[0], grid[1], grid[2]);
    let row_bytes = (width * 8) as f64;
    // B rows gathered within each j-layer (q*s ranks share a j-chunk)
    let b_gather = comm.allgather(q * s, mode_chunks[1] as f64 * row_bytes);
    // C rows gathered within each k-layer
    let c_gather = comm.allgather(q * r, mode_chunks[2] as f64 * row_bytes);
    // partial A rows reduce-scattered within each i-layer (r*s ranks)
    let a_reduce = comm.reduce_scatter(r * s, mode_chunks[0] as f64 * row_bytes);
    b_gather + c_gather + a_reduce
}

/// Ideal-balance communication score used by the grid search (no
/// partitioning required): assumes chunk widths `dim/g`.
fn comm_score(
    comm: &CommParams,
    dims: [usize; NMODES],
    grid: [usize; NMODES],
    width: usize,
) -> f64 {
    let chunks = std::array::from_fn(|m| dims[m].div_ceil(grid[m]));
    comm_3d(comm, grid, chunks, width)
}

/// All ordered factorizations `q*r*s = p` with each factor within the mode
/// length.
fn factorizations(p: usize, dims: [usize; NMODES]) -> Vec<[usize; NMODES]> {
    let mut out = Vec::new();
    for q in 1..=p {
        if !p.is_multiple_of(q) || q > dims[0].max(1) {
            continue;
        }
        let rs = p / q;
        for r in 1..=rs {
            if !rs.is_multiple_of(r) || r > dims[1].max(1) {
                continue;
            }
            let s = rs / r;
            if s > dims[2].max(1) {
                continue;
            }
            out.push([q, r, s]);
        }
    }
    out
}

/// Runs a 3D (medium-grained) distributed MTTKRP on `p = q*r*s` ranks.
pub fn run_3d(coo: &CooTensor, cfg: &DistConfig, grid: [usize; NMODES]) -> DistResult {
    let part = Partition3D::new(coo, grid, cfg.seed);
    let counts = part.rank_nnz();
    let (argmax, &max_nnz) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &n)| n)
        .expect("at least one rank");
    let compute = time_local(part.local(argmax), cfg.local, cfg.rank, cfg.reps);
    let chunks = std::array::from_fn(|m| max_chunk(part.bounds(m)));
    let comm = comm_3d(&cfg.comm, grid, chunks, cfg.rank);
    DistResult {
        grid: [grid[0], grid[1], grid[2], 1],
        total_secs: compute + comm,
        compute_secs: compute,
        comm_secs: comm,
        max_nnz,
        imbalance: part.imbalance(),
    }
}

/// Runs a 4D distributed MTTKRP: `t` rank-strips x a 3D grid of `p/t`.
pub fn run_4d(coo: &CooTensor, cfg: &DistConfig, grid3: [usize; NMODES], t: usize) -> DistResult {
    let part = Partition4D::new(coo, grid3, t, cfg.rank, cfg.seed);
    let p3 = part.part3();
    let counts = p3.rank_nnz();
    let (argmax, &max_nnz) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &n)| n)
        .expect("at least one rank");
    let width = part.max_strip_width();
    let compute = time_local(p3.local(argmax), cfg.local, width, cfg.reps);
    let chunks: [usize; NMODES] = std::array::from_fn(|m| max_chunk(p3.bounds(m)));
    let mut comm = comm_3d(&cfg.comm, grid3, chunks, width);
    // the extra AllGather along the rank dimension: full-width rows of the
    // updated factor's chunk are reassembled from t strips
    comm += cfg.comm.allgather(t, (chunks[0] * cfg.rank * 8) as f64);
    DistResult {
        grid: [grid3[0], grid3[1], grid3[2], t],
        total_secs: compute + comm,
        compute_secs: compute,
        comm_secs: comm,
        max_nnz,
        imbalance: p3.imbalance(),
    }
}

/// Picks the best 3D grid for `p` ranks by the communication model, then
/// measures it.
pub fn best_3d(coo: &CooTensor, cfg: &DistConfig, p: usize) -> DistResult {
    let dims = coo.dims();
    let grid = factorizations(p, dims)
        .into_iter()
        .min_by(|a, b| {
            comm_score(&cfg.comm, dims, *a, cfg.rank)
                .total_cmp(&comm_score(&cfg.comm, dims, *b, cfg.rank))
        })
        .expect("no valid grid factorization");
    run_3d(coo, cfg, grid)
}

/// Picks the best `(t, 3D grid)` for `p` ranks by the communication model
/// (including the rank-dimension AllGather), then measures it.
pub fn best_4d(coo: &CooTensor, cfg: &DistConfig, p: usize) -> DistResult {
    let dims = coo.dims();
    let mut best: Option<([usize; NMODES], usize, f64)> = None;
    for t in 1..=p {
        if !p.is_multiple_of(t) || t > cfg.rank {
            continue;
        }
        let width = cfg.rank.div_ceil(t);
        // strips narrower than one register block (16 doubles) destroy the
        // local kernel's vectorization; don't consider them
        if t > 1 && width < 16 {
            continue;
        }
        for grid in factorizations(p / t, dims) {
            let mut score = comm_score(&cfg.comm, dims, grid, width);
            score += cfg
                .comm
                .allgather(t, (dims[0].div_ceil(grid[0]) * cfg.rank * 8) as f64);
            if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                best = Some((grid, t, score));
            }
        }
    }
    let (grid, t, _) = best.expect("no valid 4D configuration");
    run_4d(coo, cfg, grid, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_core::mttkrp::dense_mttkrp;
    use tenblock_tensor::gen::uniform_tensor;

    /// Distributed correctness: the sum of all ranks' local mode-1 MTTKRPs
    /// equals the sequential MTTKRP of the relabeled tensor.
    #[test]
    fn partial_sums_reassemble_3d() {
        let x = uniform_tensor([16, 14, 12], 400, 8);
        let part = Partition3D::new(&x, [2, 2, 2], 3);
        let rel = part.relabeled();
        let rank = 6;
        let factors: Vec<DenseMatrix> = rel
            .dims()
            .iter()
            .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 5 + c) % 9) as f64 * 0.2))
            .collect();
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&rel, &fs, 0);

        let mut sum = DenseMatrix::zeros(16, rank);
        for r in 0..part.n_ranks() {
            let local = part.local(r);
            if local.nnz() == 0 {
                continue;
            }
            let k = SplattKernel::new(local, 0);
            let mut out = DenseMatrix::zeros(16, rank);
            k.mttkrp(&fs, &mut out);
            for (s, o) in sum.as_mut_slice().iter_mut().zip(out.as_slice()) {
                *s += o;
            }
        }
        assert!(expect.approx_eq(&sum, 1e-10));
    }

    /// 4D correctness: per-strip results assemble column-wise into the full
    /// MTTKRP.
    #[test]
    fn strips_reassemble_4d() {
        let x = uniform_tensor([12, 12, 12], 300, 9);
        let rank = 10;
        let part = Partition4D::new(&x, [2, 1, 2], 2, rank, 5);
        let rel = part.part3().relabeled();
        let factors: Vec<DenseMatrix> = rel
            .dims()
            .iter()
            .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r + 3 * c) % 7) as f64 * 0.3))
            .collect();
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&rel, &fs, 0);

        let mut assembled = DenseMatrix::zeros(12, rank);
        for g in 0..part.t() {
            let cols = part.strip_cols(g);
            // strip factors: the column window of each factor
            let strip_factors: Vec<DenseMatrix> = factors
                .iter()
                .map(|f| {
                    DenseMatrix::from_fn(f.rows(), cols.len(), |r, c| f.get(r, cols.start + c))
                })
                .collect();
            let sfs: [&DenseMatrix; NMODES] =
                [&strip_factors[0], &strip_factors[1], &strip_factors[2]];
            for r in 0..part.part3().n_ranks() {
                let local = part.part3().local(r);
                if local.nnz() == 0 {
                    continue;
                }
                let k = SplattKernel::new(local, 0);
                let mut out = DenseMatrix::zeros(12, cols.len());
                k.mttkrp(&sfs, &mut out);
                for row in 0..12 {
                    for (c, col) in cols.clone().enumerate() {
                        assembled.set(row, col, assembled.get(row, col) + out.get(row, c));
                    }
                }
            }
        }
        assert!(expect.approx_eq(&assembled, 1e-10));
    }

    #[test]
    fn run_3d_produces_sane_result() {
        let x = uniform_tensor([60, 50, 40], 5_000, 2);
        let cfg = DistConfig::new(16);
        let r = run_3d(&x, &cfg, [2, 2, 1]);
        assert_eq!(r.grid, [2, 2, 1, 1]);
        assert!(r.total_secs > 0.0);
        assert!((r.total_secs - (r.compute_secs + r.comm_secs)).abs() < 1e-12);
        assert!(r.max_nnz >= 5_000 / 4);
        assert!(r.imbalance >= 1.0);
    }

    #[test]
    fn more_ranks_fewer_nnz_per_rank() {
        let x = uniform_tensor([80, 80, 80], 20_000, 4);
        let cfg = DistConfig::new(16);
        let r1 = run_3d(&x, &cfg, [1, 1, 1]);
        let r8 = run_3d(&x, &cfg, [2, 2, 2]);
        assert!(r8.max_nnz < r1.max_nnz);
        assert_eq!(r1.comm_secs, 0.0); // single rank: no network
        assert!(r8.comm_secs > 0.0);
    }

    #[test]
    fn factorization_enumeration() {
        let f = factorizations(8, [100, 100, 100]);
        assert!(f.contains(&[2, 2, 2]));
        assert!(f.contains(&[8, 1, 1]));
        assert!(f.contains(&[1, 1, 8]));
        for g in &f {
            assert_eq!(g.iter().product::<usize>(), 8);
        }
        // dims cap the factors
        let capped = factorizations(8, [2, 100, 100]);
        assert!(capped.iter().all(|g| g[0] <= 2));
    }

    #[test]
    fn best_grids_prefer_long_modes() {
        // Netflix-shaped: mode 1 enormous, mode 3 tiny -> q should dominate
        let x = uniform_tensor([2_000, 180, 8], 6_000, 6);
        let cfg = DistConfig::new(32);
        let r = best_3d(&x, &cfg, 8);
        assert!(
            r.grid[0] >= r.grid[2],
            "expected q >= s for a tall tensor: {:?}",
            r.grid
        );
    }

    #[test]
    fn best_4d_uses_rank_dimension_at_scale() {
        let x = uniform_tensor([300, 250, 200], 8_000, 7);
        let cfg = DistConfig::new(64);
        let r = best_4d(&x, &cfg, 16);
        assert_eq!(r.grid.iter().product::<usize>(), 16);
        assert!(r.grid[3] >= 1);
        assert!(r.total_secs > 0.0);
    }
}
