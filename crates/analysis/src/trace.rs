//! Replays the exact memory-access sequence of each MTTKRP kernel through
//! the cache simulator, yielding measured per-structure hit rates — the `α`
//! of Equation (1), measured instead of assumed.
//!
//! Four access streams are distinguished, matching the structures of
//! Section IV-A: the tensor itself (`val`, `j_index`, fiber metadata), the
//! mode-2 factor `B`, the mode-3 factor `C`, and the destination factor
//! `A`. The per-fiber accumulator is excluded, as in the paper's Equation
//! (1) (it is register/L1-resident; its cost is load-unit pressure, not
//! memory traffic — that half of the story is [`crate::ppa`]).

use crate::cache::{CacheSim, LevelStats};
use tenblock_core::block::BlockGrid;
use tenblock_tensor::{CooTensor, SplattTensor, NMODES};

/// The access streams tracked by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Tensor storage: values, `j_index`, fiber `k_index`/`k_pointer`.
    Tensor = 0,
    /// The within-fiber ("mode-2") factor matrix.
    B = 1,
    /// The fiber ("mode-3") factor matrix.
    C = 2,
    /// The destination factor matrix.
    A = 3,
}

const N_STREAMS: usize = 4;
const T: usize = Stream::Tensor as usize;
const SB: usize = Stream::B as usize;
const SC: usize = Stream::C as usize;
const SA: usize = Stream::A as usize;

/// Which kernel's access pattern to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKernel {
    /// Baseline Algorithm 1.
    Splatt,
    /// Multi-dimensional blocking with the given grid (kernel axes).
    Mb([usize; NMODES]),
    /// Rank blocking with the given strip width.
    RankB(usize),
    /// Combined MB + RankB.
    MbRankB([usize; NMODES], usize),
}

/// Measured locality of one kernel replay.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Kernel that was replayed.
    pub kernel: TraceKernel,
    /// L1 stats per stream.
    pub l1: [LevelStats; N_STREAMS],
    /// Whole-hierarchy hit rate per stream (fraction not going to memory).
    pub hierarchy: [f64; N_STREAMS],
    /// Bytes fetched from main memory across all streams.
    pub memory_bytes: u64,
    /// Measured `α` over the factor-matrix accesses (B and C combined) —
    /// the quantity Equation (1) parameterizes.
    pub alpha_factors: f64,
}

/// Virtual addresses of one (sub-)tensor's arrays.
#[derive(Clone, Copy)]
struct BlockAddrs {
    val: u64,
    jix: u64,
    kid: u64,
    ptr: u64,
}

/// Trivial bump allocator for laying structures out in the simulated
/// address space (page-aligned regions, never overlapping).
struct Alloc {
    next: u64,
}

impl Alloc {
    fn new() -> Self {
        Alloc { next: 0x10_000 }
    }

    fn region(&mut self, bytes: usize) -> u64 {
        let base = self.next;
        self.next += ((bytes as u64 + 4095) & !4095) + 4096;
        base
    }
}

fn alloc_block(a: &mut Alloc, t: &SplattTensor) -> BlockAddrs {
    BlockAddrs {
        val: a.region(t.nnz() * 8),
        jix: a.region(t.nnz() * 4),
        kid: a.region(t.n_fibers() * 4),
        ptr: a.region((t.n_fibers() + 1) * 8),
    }
}

/// Replays Algorithm 1 over one (sub-)tensor.
fn walk_plain(
    sim: &mut CacheSim,
    t: &SplattTensor,
    ad: &BlockAddrs,
    b_base: u64,
    c_base: u64,
    a_base: u64,
    rank: usize,
) {
    let (_, _, _, j_idx, _) = t.raw();
    let row_bytes = rank * 8;
    for s in 0..t.n_slices() {
        let g = t.slice_global(s);
        for f in t.slice_fibers(s) {
            sim.access(ad.kid + f as u64 * 4, T);
            sim.access(ad.ptr + f as u64 * 8, T);
            for n in t.fiber_nnz(f) {
                sim.access(ad.val + n as u64 * 8, T);
                sim.access(ad.jix + n as u64 * 4, T);
                sim.access_range(b_base + j_idx[n] as u64 * row_bytes as u64, row_bytes, SB);
            }
            let kid = t.fiber_kid(f) as u64;
            sim.access_range(c_base + kid * row_bytes as u64, row_bytes, SC);
            sim.access_range(a_base + g as u64 * row_bytes as u64, row_bytes, SA);
        }
    }
}

/// Replays the register-blocked pass of Algorithm 2 over one column window.
#[allow(clippy::too_many_arguments)]
fn walk_rankb(
    sim: &mut CacheSim,
    t: &SplattTensor,
    ad: &BlockAddrs,
    b_base: u64,
    c_base: u64,
    a_base: u64,
    rank: usize,
    col0: usize,
    width: usize,
) {
    let (_, _, _, j_idx, _) = t.raw();
    let row_bytes = rank as u64 * 8;
    for s in 0..t.n_slices() {
        let g = t.slice_global(s);
        for f in t.slice_fibers(s) {
            sim.access(ad.kid + f as u64 * 4, T);
            sim.access(ad.ptr + f as u64 * 8, T);
            let mut col = col0;
            while col < col0 + width {
                let w = (col0 + width - col).min(REG_BLOCK);
                // fiber nonzeros re-traversed per register chunk
                for n in t.fiber_nnz(f) {
                    sim.access(ad.val + n as u64 * 8, T);
                    sim.access(ad.jix + n as u64 * 4, T);
                    sim.access_range(
                        b_base + j_idx[n] as u64 * row_bytes + col as u64 * 8,
                        w * 8,
                        SB,
                    );
                }
                let kid = t.fiber_kid(f) as u64;
                sim.access_range(c_base + kid * row_bytes + col as u64 * 8, w * 8, SC);
                sim.access_range(a_base + g as u64 * row_bytes + col as u64 * 8, w * 8, SA);
                col += w;
            }
        }
    }
}

pub(crate) const REG_BLOCK: usize = tenblock_core::mttkrp::REG_BLOCK;

/// Replays the mode-`mode` MTTKRP of `coo` at rank `rank` with the given
/// kernel through a fresh simulator built by `sim` (e.g.
/// `CacheSim::power8`).
pub fn trace_kernel(
    coo: &CooTensor,
    mode: usize,
    rank: usize,
    kernel: TraceKernel,
    mut sim: CacheSim,
) -> TraceReport {
    let mut alloc = Alloc::new();
    let dims = coo.dims();
    let perm = tenblock_tensor::coo::perm_for_mode(mode);
    let b_base = alloc.region(dims[perm[1]] * rank * 8);
    let c_base = alloc.region(dims[perm[2]] * rank * 8);
    let a_base = alloc.region(dims[perm[0]] * rank * 8);

    match kernel {
        TraceKernel::Splatt => {
            let t = SplattTensor::for_mode(coo, mode);
            let ad = alloc_block(&mut alloc, &t);
            walk_plain(&mut sim, &t, &ad, b_base, c_base, a_base, rank);
        }
        TraceKernel::Mb(grid) => {
            let g = BlockGrid::new(coo, mode, grid);
            // blocks stored contiguously, in traversal order
            for a in 0..grid[0] {
                let addrs: Vec<(BlockAddrs, &SplattTensor)> = g
                    .row_blocks(a)
                    .map(|t| (alloc_block(&mut alloc, t), t))
                    .collect();
                for (ad, t) in addrs {
                    walk_plain(&mut sim, t, &ad, b_base, c_base, a_base, rank);
                }
            }
        }
        TraceKernel::RankB(width) => {
            let t = SplattTensor::for_mode(coo, mode);
            let ad = alloc_block(&mut alloc, &t);
            let mut col0 = 0;
            while col0 < rank {
                let w = width.min(rank - col0);
                walk_rankb(&mut sim, &t, &ad, b_base, c_base, a_base, rank, col0, w);
                col0 += w;
            }
        }
        TraceKernel::MbRankB(grid, width) => {
            let g = BlockGrid::new(coo, mode, grid);
            let rows: Vec<Vec<(BlockAddrs, &SplattTensor)>> = (0..grid[0])
                .map(|a| {
                    g.row_blocks(a)
                        .map(|t| (alloc_block(&mut alloc, t), t))
                        .collect()
                })
                .collect();
            let mut col0 = 0;
            while col0 < rank {
                let w = width.min(rank - col0);
                for row in &rows {
                    for (ad, t) in row {
                        walk_rankb(&mut sim, t, ad, b_base, c_base, a_base, rank, col0, w);
                    }
                }
                col0 += w;
            }
        }
    }

    let l1: [LevelStats; N_STREAMS] = std::array::from_fn(|s| sim.tag_stats(0, s));
    let hierarchy = std::array::from_fn(|s| sim.hierarchy_hit_rate(s));
    // α over factor accesses: combined B + C fraction served by any cache,
    // weighted by each stream's access count.
    let acc_b = (l1[SB].hits + l1[SB].misses) as f64;
    let acc_c = (l1[SC].hits + l1[SC].misses) as f64;
    let alpha_factors = if acc_b + acc_c == 0.0 {
        1.0
    } else {
        (acc_b * sim.hierarchy_hit_rate(SB) + acc_c * sim.hierarchy_hit_rate(SC)) / (acc_b + acc_c)
    };

    TraceReport {
        kernel,
        l1,
        hierarchy,
        memory_bytes: sim.memory_bytes(),
        alpha_factors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    fn sim() -> CacheSim {
        CacheSim::power8(N_STREAMS)
    }

    #[test]
    fn splatt_trace_counts_are_sane() {
        let x = uniform_tensor([100, 100, 100], 3_000, 1);
        let r = trace_kernel(&x, 0, 32, TraceKernel::Splatt, sim());
        // tensor stream: 2 accesses per nonzero + 2 per fiber
        let t_accesses = r.l1[T].hits + r.l1[T].misses;
        assert!(t_accesses >= 2 * 3_000);
        assert!(r.memory_bytes > 0);
        for s in 0..N_STREAMS {
            assert!((0.0..=1.0).contains(&r.hierarchy[s]));
        }
        assert!((0.0..=1.0).contains(&r.alpha_factors));
    }

    #[test]
    fn tiny_working_set_has_high_alpha() {
        // tensor + factors fit easily in L2 -> factor alpha near 1 after
        // compulsory misses
        let x = uniform_tensor([32, 32, 32], 2_000, 2);
        let r = trace_kernel(&x, 0, 16, TraceKernel::Splatt, sim());
        assert!(r.alpha_factors > 0.9, "alpha = {}", r.alpha_factors);
    }

    #[test]
    fn blocking_improves_alpha_on_clustered_data() {
        // factors far larger than L2: B is 4000 x 64 x 8B = 2 MiB
        let cfg = ClusteredConfig {
            dims: [4_000, 4_000, 4_000],
            nnz: 40_000,
            n_clusters: 32,
            cluster_frac: 0.9,
            box_frac: 0.05,
        };
        let x = clustered_tensor(&cfg, 7);
        let base = trace_kernel(&x, 0, 64, TraceKernel::Splatt, sim());
        let blocked = trace_kernel(&x, 0, 64, TraceKernel::MbRankB([4, 4, 2], 16), sim());
        assert!(
            blocked.alpha_factors > base.alpha_factors,
            "blocked {} <= baseline {}",
            blocked.alpha_factors,
            base.alpha_factors
        );
    }

    #[test]
    fn equation1_predicts_simulated_traffic() {
        // Equation (1) with the *measured* alpha should match the cache
        // simulator's memory-byte count closely for the baseline kernel —
        // the paper's model and our simulator describe the same traffic.
        use crate::roofline::RooflineInputs;
        use tenblock_tensor::coo::MODE1_PERM;
        let x = uniform_tensor([1_200, 1_200, 1_200], 50_000, 13);
        let rank = 64;
        let r = trace_kernel(&x, 0, rank, TraceKernel::Splatt, sim());
        let eq1 = RooflineInputs {
            nnz: x.nnz() as u64,
            fibers: x.count_fibers(MODE1_PERM) as u64,
            rank: rank as u64,
            alpha: r.alpha_factors,
        }
        .traffic_bytes();
        let measured = r.memory_bytes as f64;
        let ratio = eq1 / measured;
        assert!(
            (0.7..1.3).contains(&ratio),
            "Eq.(1) {eq1:.3e} vs simulated {measured:.3e} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn rankb_rereads_tensor_per_strip() {
        let x = uniform_tensor([50, 50, 50], 1_000, 3);
        let base = trace_kernel(&x, 0, 64, TraceKernel::Splatt, sim());
        let rb = trace_kernel(&x, 0, 64, TraceKernel::RankB(16), sim());
        let base_t = base.l1[T].hits + base.l1[T].misses;
        let rb_t = rb.l1[T].hits + rb.l1[T].misses;
        // 4 strips x 1 register chunk each -> ~4x the per-nonzero tensor
        // accesses (fiber metadata is also re-read per strip)
        assert!(rb_t > 3 * base_t, "rb {rb_t} vs base {base_t}");
        // ...but they come from cache: L1 rate of the tensor stream is high
        assert!(rb.l1[T].hit_rate() > 0.8);
    }
}
