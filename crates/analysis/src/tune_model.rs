//! Model-guided block-size selection — the paper's future-work item
//! ("finding the optimal sizes would require a more accurate model for
//! data movement … a well designed autotuning framework", Section VII),
//! built from the pieces this crate already has: instead of *timing* each
//! candidate like the Section V-C heuristic, each candidate's exact access
//! stream is replayed through the cache simulator and scored by predicted
//! memory traffic.
//!
//! The search structure mirrors `tenblock_core::tune` (strip widths in
//! cache-line increments, then axes longest-first with doubling block
//! counts), so the two tuners are directly comparable — see the
//! `model_tuner` bench binary.

use crate::cache::CacheSim;
use crate::trace::{trace_kernel, TraceKernel};
use tenblock_core::mttkrp::REG_BLOCK;
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, Entry, NMODES};

/// Options for [`tune_by_model`].
#[derive(Debug, Clone)]
pub struct ModelTuneOptions {
    /// Decomposition rank to tune for.
    pub rank: usize,
    /// Upper bound on blocks per axis.
    pub max_blocks: usize,
    /// Trace at most this many nonzeros (a leading slice-contiguous sample
    /// is used beyond it — locality within the sample is preserved).
    pub sample_nnz: usize,
}

impl ModelTuneOptions {
    /// Defaults: sample 100K nonzeros.
    pub fn new(rank: usize) -> Self {
        ModelTuneOptions {
            rank,
            max_blocks: 64,
            sample_nnz: 100_000,
        }
    }
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct ModelTuneSample {
    /// Candidate MB grid (kernel axes).
    pub grid: [usize; NMODES],
    /// Candidate RankB strip width.
    pub strip_width: usize,
    /// Predicted bytes fetched from memory.
    pub memory_bytes: u64,
    /// Measured factor-matrix hit rate of the candidate.
    pub alpha: f64,
}

/// Result of the model-guided search.
#[derive(Debug, Clone)]
pub struct ModelTuneResult {
    /// Selected grid (kernel axes).
    pub grid: [usize; NMODES],
    /// Selected strip width.
    pub strip_width: usize,
    /// Predicted memory traffic of the selection.
    pub memory_bytes: u64,
    /// Every candidate scored, in search order.
    pub history: Vec<ModelTuneSample>,
}

/// A slice-contiguous sample of at most `cap` nonzeros.
fn sample(coo: &CooTensor, mode: usize, cap: usize) -> CooTensor {
    if coo.nnz() <= cap {
        return coo.clone();
    }
    let mut sorted = coo.clone();
    sorted.sort(perm_for_mode(mode));
    let entries: Vec<Entry> = sorted.entries()[..cap].to_vec();
    CooTensor::from_entries(coo.dims(), entries)
}

/// Scores one candidate: predicted memory bytes under the POWER8 hierarchy.
fn score(x: &CooTensor, mode: usize, rank: usize, k: TraceKernel) -> (u64, f64) {
    let r = trace_kernel(x, mode, rank, k, CacheSim::power8(4));
    (r.memory_bytes, r.alpha_factors)
}

/// Runs the model-guided search for the mode-`mode` MTTKRP of `coo`.
pub fn tune_by_model(coo: &CooTensor, mode: usize, opts: &ModelTuneOptions) -> ModelTuneResult {
    let x = sample(coo, mode, opts.sample_nnz);
    let dims = x.dims();
    let perm = perm_for_mode(mode);
    let mut history = Vec::new();

    let eval = |grid: [usize; NMODES], strip: usize, history: &mut Vec<ModelTuneSample>| {
        let (bytes, alpha) = score(&x, mode, opts.rank, TraceKernel::MbRankB(grid, strip));
        history.push(ModelTuneSample {
            grid,
            strip_width: strip,
            memory_bytes: bytes,
            alpha,
        });
        bytes
    };

    // Phase 1: strip width.
    let mut best_strip = opts.rank.max(1);
    let mut best_bytes = eval([1, 1, 1], best_strip, &mut history);
    let mut width = REG_BLOCK;
    while width < opts.rank {
        let bytes = eval([1, 1, 1], width, &mut history);
        if bytes < best_bytes {
            best_bytes = bytes;
            best_strip = width;
            width += REG_BLOCK;
        } else {
            break;
        }
    }

    // Phase 2: MB grid, longest axis first (access-volume tie-break).
    let axis_len = [dims[perm[0]], dims[perm[1]], dims[perm[2]]];
    let tie_rank = [2usize, 0, 1];
    let mut axes = [0usize, 1, 2];
    axes.sort_by_key(|&ax| (std::cmp::Reverse(axis_len[ax]), tie_rank[ax]));

    let mut grid = [1usize; NMODES];
    for &ax in &axes {
        let mut n = 1usize;
        loop {
            let next = (n * 2).min(axis_len[ax].max(1)).min(opts.max_blocks);
            if next == n {
                break;
            }
            let mut cand = grid;
            cand[ax] = next;
            let bytes = eval(cand, best_strip, &mut history);
            if bytes < best_bytes {
                best_bytes = bytes;
                grid = cand;
                n = next;
            } else {
                break;
            }
        }
    }

    ModelTuneResult {
        grid,
        strip_width: best_strip,
        memory_bytes: best_bytes,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::{clustered_tensor, ClusteredConfig};

    #[test]
    fn model_tuner_returns_valid_config() {
        let cfg = ClusteredConfig {
            dims: [2_000, 3_000, 1_500],
            nnz: 20_000,
            n_clusters: 16,
            cluster_frac: 0.9,
            box_frac: 0.04,
        };
        let x = clustered_tensor(&cfg, 5);
        let opts = ModelTuneOptions {
            rank: 32,
            max_blocks: 8,
            sample_nnz: 10_000,
        };
        let r = tune_by_model(&x, 0, &opts);
        assert!(r.strip_width >= 1 && r.strip_width <= 32);
        for ax in 0..3 {
            assert!(r.grid[ax] >= 1 && r.grid[ax] <= 8);
        }
        // the selection's predicted traffic can't exceed the unblocked
        // candidate's
        let unblocked = r
            .history
            .iter()
            .find(|s| s.grid == [1, 1, 1] && s.strip_width == 32)
            .expect("unblocked candidate scored");
        assert!(r.memory_bytes <= unblocked.memory_bytes);
    }

    #[test]
    fn blocking_reduces_predicted_traffic_when_factors_spill() {
        // factors far larger than L2: the model must prefer some blocking
        let cfg = ClusteredConfig {
            dims: [4_000, 4_000, 4_000],
            nnz: 30_000,
            n_clusters: 32,
            cluster_frac: 0.95,
            box_frac: 0.05,
        };
        let x = clustered_tensor(&cfg, 9);
        let opts = ModelTuneOptions {
            rank: 64,
            max_blocks: 8,
            sample_nnz: 30_000,
        };
        let r = tune_by_model(&x, 0, &opts);
        let base = r.history.first().unwrap();
        assert!(
            r.memory_bytes < base.memory_bytes,
            "model found no improvement: {} vs {}",
            r.memory_bytes,
            base.memory_bytes
        );
        // and the chosen config's alpha is at least the baseline's
        let chosen = r
            .history
            .iter()
            .find(|s| s.grid == r.grid && s.strip_width == r.strip_width)
            .unwrap();
        assert!(chosen.alpha >= base.alpha - 1e-9);
    }

    #[test]
    fn sampling_caps_trace_size() {
        let cfg = ClusteredConfig::new([500, 500, 500], 30_000);
        let x = clustered_tensor(&cfg, 2);
        let s = sample(&x, 0, 5_000);
        assert_eq!(s.nnz(), 5_000);
        assert_eq!(s.dims(), x.dims());
        // sample is slice-contiguous: its slice ids are a prefix range
        let max_slice = s.entries().iter().map(|e| e.idx[0]).max().unwrap();
        let full_sorted_prefix_max = {
            let mut t = x.clone();
            t.sort(tenblock_tensor::coo::MODE1_PERM);
            t.entries()[..5_000].iter().map(|e| e.idx[0]).max().unwrap()
        };
        assert_eq!(max_slice, full_sorted_prefix_max);
    }
}
