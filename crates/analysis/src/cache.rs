//! A multi-level, set-associative, LRU cache simulator.
//!
//! Substitutes for the POWER8 performance counters the paper used: instead
//! of *inferring* the hit rate `α` of Equation (1), we replay the kernel's
//! exact access stream ([`crate::trace`]) through a model of the paper's
//! cache hierarchy and *measure* it, per data structure.
//!
//! The model is deliberately simple — physical = virtual addresses, true
//! LRU, inclusive levels, no prefetcher — because the quantity of interest
//! is the locality of the access *pattern*, which these simplifications
//! preserve.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }
}

/// Hit/miss counts for one level (optionally per stream tag).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed (and were forwarded to the next level).
    pub misses: u64,
}

impl LevelStats {
    /// `hits / (hits + misses)`, or 1.0 for an untouched level.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Level {
    cfg: CacheConfig,
    set_shift: u32,
    set_mask: u64,
    /// Per set: line tags in LRU order, most recent last.
    sets: Vec<Vec<u64>>,
    totals: LevelStats,
    by_tag: Vec<LevelStats>,
}

impl Level {
    fn new(cfg: CacheConfig, n_tags: usize) -> Self {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        let n_sets = cfg.n_sets();
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Level {
            cfg,
            set_shift: cfg.line.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            sets: vec![Vec::with_capacity(cfg.assoc); n_sets],
            totals: LevelStats::default(),
            by_tag: vec![LevelStats::default(); n_tags],
        }
    }

    /// Accesses one line address; returns true on hit.
    fn access_line(&mut self, line_addr: u64, tag: usize) -> bool {
        let set = &mut self.sets[((line_addr >> self.set_shift) & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line_addr) {
            // move to MRU position
            let t = set.remove(pos);
            set.push(t);
            self.totals.hits += 1;
            self.by_tag[tag].hits += 1;
            true
        } else {
            if set.len() == self.cfg.assoc {
                set.remove(0); // evict LRU
            }
            set.push(line_addr);
            self.totals.misses += 1;
            self.by_tag[tag].misses += 1;
            false
        }
    }
}

/// A hierarchy of cache levels with per-stream accounting.
///
/// ```
/// use tenblock_analysis::CacheSim;
/// let mut sim = CacheSim::power8(1);
/// sim.access(0x1000, 0);      // compulsory miss
/// sim.access(0x1000, 0);      // hit
/// assert_eq!(sim.level_stats(0).hits, 1);
/// assert_eq!(sim.memory_bytes(), 128); // one POWER8 line fetched
/// ```
pub struct CacheSim {
    levels: Vec<Level>,
    line: usize,
    n_tags: usize,
}

impl CacheSim {
    /// Builds a hierarchy (L1 first). All levels must share the line size.
    /// `n_tags` is the number of access-stream tags tracked.
    pub fn new(configs: &[CacheConfig], n_tags: usize) -> Self {
        assert!(!configs.is_empty(), "need at least one level");
        let line = configs[0].line;
        assert!(
            configs.iter().all(|c| c.line == line),
            "all levels must share one line size"
        );
        CacheSim {
            levels: configs.iter().map(|&c| Level::new(c, n_tags)).collect(),
            line,
            n_tags,
        }
    }

    /// The paper's POWER8 per-core hierarchy: 64 KiB 8-way L1 and 512 KiB
    /// 8-way L2, 128-byte lines (Section VI-A1).
    pub fn power8(n_tags: usize) -> Self {
        CacheSim::new(
            &[
                CacheConfig {
                    size: 64 * 1024,
                    line: 128,
                    assoc: 8,
                },
                CacheConfig {
                    size: 512 * 1024,
                    line: 128,
                    assoc: 8,
                },
            ],
            n_tags,
        )
    }

    /// Line size in bytes.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Accesses a single byte address under stream `tag`; the access walks
    /// down the hierarchy until it hits.
    pub fn access(&mut self, addr: u64, tag: usize) {
        debug_assert!(tag < self.n_tags);
        let line_addr = addr & !((self.line as u64) - 1);
        for level in &mut self.levels {
            if level.access_line(line_addr, tag) {
                return;
            }
        }
    }

    /// Accesses every line of the byte range `[addr, addr + len)`.
    pub fn access_range(&mut self, addr: u64, len: usize, tag: usize) {
        let first = addr & !((self.line as u64) - 1);
        let last = (addr + len.max(1) as u64 - 1) & !((self.line as u64) - 1);
        let mut a = first;
        while a <= last {
            self.access(a, tag);
            a += self.line as u64;
        }
    }

    /// Total stats for level `l` (0 = L1).
    pub fn level_stats(&self, l: usize) -> LevelStats {
        self.levels[l].totals.clone()
    }

    /// Per-tag stats for level `l`.
    pub fn tag_stats(&self, l: usize, tag: usize) -> LevelStats {
        self.levels[l].by_tag[tag].clone()
    }

    /// Overall hit rate of the whole hierarchy for one tag: the fraction of
    /// that stream's accesses served by *any* cache level (only last-level
    /// misses go to memory).
    pub fn hierarchy_hit_rate(&self, tag: usize) -> f64 {
        let l1 = &self.levels[0].by_tag[tag];
        let accesses = l1.hits + l1.misses;
        if accesses == 0 {
            return 1.0;
        }
        let mem = self.levels.last().unwrap().by_tag[tag].misses;
        1.0 - mem as f64 / accesses as f64
    }

    /// Bytes fetched from main memory (last-level misses × line size),
    /// summed over all tags.
    pub fn memory_bytes(&self) -> u64 {
        self.levels.last().unwrap().totals.misses * self.line as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets x 2 ways x 64B lines = 512B L1; 1KiB L2
        CacheSim::new(
            &[
                CacheConfig {
                    size: 512,
                    line: 64,
                    assoc: 2,
                },
                CacheConfig {
                    size: 1024,
                    line: 64,
                    assoc: 2,
                },
            ],
            2,
        )
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        c.access(0x1000, 0);
        assert_eq!(c.level_stats(0), LevelStats { hits: 0, misses: 1 });
        for _ in 0..5 {
            c.access(0x1000, 0);
        }
        assert_eq!(c.level_stats(0), LevelStats { hits: 5, misses: 1 });
        assert!((c.hierarchy_hit_rate(0) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn same_line_is_one_entry() {
        let mut c = tiny();
        c.access(0x1000, 0);
        c.access(0x1030, 0); // same 64B line
        assert_eq!(c.level_stats(0).hits, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64 = 256B)
        c.access(0x0000, 0);
        c.access(0x0100, 0);
        c.access(0x0200, 0); // evicts 0x0000 from L1
        c.access(0x0000, 0); // L1 miss, L2 hit
        assert_eq!(c.level_stats(0).misses, 4);
        assert_eq!(c.level_stats(1).hits, 1);
    }

    #[test]
    fn lru_order_updated_on_hit() {
        let mut c = tiny();
        c.access(0x0000, 0);
        c.access(0x0100, 0);
        c.access(0x0000, 0); // refresh 0x0000 to MRU
        c.access(0x0200, 0); // should evict 0x0100, not 0x0000
        c.access(0x0000, 0);
        let s = c.level_stats(0);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn capacity_streaming_misses() {
        // streaming 4 KiB through a 512B cache: every new line misses L1
        let mut c = tiny();
        for i in 0..64u64 {
            c.access(i * 64, 1);
        }
        assert_eq!(
            c.tag_stats(0, 1),
            LevelStats {
                hits: 0,
                misses: 64
            }
        );
        assert_eq!(c.tag_stats(0, 0), LevelStats::default());
        assert!(c.hierarchy_hit_rate(1) < 1e-12);
        assert_eq!(c.memory_bytes(), 64 * 64);
    }

    #[test]
    fn working_set_fitting_in_l2_hits_there() {
        let mut c = tiny();
        // 768B working set: fits in L2 (1KiB), not L1 (512B)
        for _ in 0..10 {
            for i in 0..12u64 {
                c.access(i * 64, 0);
            }
        }
        let rate = c.hierarchy_hit_rate(0);
        assert!(rate > 0.85, "hierarchy rate {rate}");
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = tiny();
        c.access_range(0x10, 200, 0); // spans lines 0x00, 0x40, 0x80, 0xC0
        assert_eq!(c.level_stats(0).misses, 4);
        c.access_range(0x40, 1, 0);
        assert_eq!(c.level_stats(0).hits, 1);
    }

    #[test]
    fn power8_preset_geometry() {
        let c = CacheSim::power8(1);
        assert_eq!(c.line(), 128);
        assert_eq!(c.levels[0].cfg.n_sets(), 64);
        assert_eq!(c.levels[1].cfg.n_sets(), 512);
    }
}
