//! Pressure-point analysis (PPA) of the SPLATT MTTKRP kernel — Section
//! IV-B, Table I.
//!
//! PPA inserts artificial "pressure points" into a kernel — deleting
//! instructions, pinning access addresses, renaming accumulators — and
//! observes the execution-time delta to attribute cost to specific
//! micro-architectural resources. The five transformations of Table I are
//! implemented here as real kernel variants:
//!
//! | Type | Transformation | Resource probed |
//! |---|---|---|
//! | 1 | accesses to `B` removed | memory traffic of the mode-2 factor |
//! | 2 | all `B` accesses pinned to row 0 (L1-resident) | same, cache-served |
//! | 3 | accumulator loads eliminated (register accumulation) | load-unit pressure |
//! | 4 | accesses to `C` removed | memory traffic of the mode-3 factor |
//! | 5 | per-fiber flops moved into the per-nonzero loop | FPU (COO emulation) |
//! | 6 | unchanged Algorithm 1 | baseline |
//!
//! Variants 1, 2, 4 and 5 intentionally compute *different results* — they
//! are probes, not kernels.

use std::hint::black_box;
use std::time::Instant;
use tenblock_tensor::{CooTensor, DenseMatrix, SplattTensor};

/// The six rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpaVariant {
    /// Type 1: access to B removed.
    NoB,
    /// Type 2: all accesses to B limited to L1 (row 0 only).
    BInL1,
    /// Type 3: eliminating load instructions (register accumulation).
    NoAccumLoads,
    /// Type 4: access to C removed.
    NoC,
    /// Type 5: moving flops to the inner loop (COO emulation).
    FlopsInner,
    /// Type 6: unchanged.
    Unchanged,
}

impl PpaVariant {
    /// All variants in Table I order (types 1–6).
    pub const ALL: [PpaVariant; 6] = [
        PpaVariant::NoB,
        PpaVariant::BInL1,
        PpaVariant::NoAccumLoads,
        PpaVariant::NoC,
        PpaVariant::FlopsInner,
        PpaVariant::Unchanged,
    ];

    /// The paper's Table I type number.
    pub fn type_no(&self) -> usize {
        match self {
            PpaVariant::NoB => 1,
            PpaVariant::BInL1 => 2,
            PpaVariant::NoAccumLoads => 3,
            PpaVariant::NoC => 4,
            PpaVariant::FlopsInner => 5,
            PpaVariant::Unchanged => 6,
        }
    }

    /// Table I description text.
    pub fn description(&self) -> &'static str {
        match self {
            PpaVariant::NoB => "Access to B removed",
            PpaVariant::BInL1 => "All accesses to B is limited to L1",
            PpaVariant::NoAccumLoads => "Eliminating load instructions",
            PpaVariant::NoC => "Access to C removed",
            PpaVariant::FlopsInner => "Moving flops to the inner-loop",
            PpaVariant::Unchanged => "Unchanged",
        }
    }
}

/// Timing result for one variant.
#[derive(Debug, Clone)]
pub struct PpaResult {
    /// Which transformation was applied.
    pub variant: PpaVariant,
    /// Best-of-`reps` execution time in seconds.
    pub secs: f64,
}

/// Runs one variant once. The result matrix is consumed via `black_box` by
/// the caller so no variant is dead-code-eliminated.
pub fn run_variant(
    variant: PpaVariant,
    t: &SplattTensor,
    b: &DenseMatrix,
    c: &DenseMatrix,
    out: &mut DenseMatrix,
    accum: &mut [f64],
) {
    let (_, _, _, j_idx, vals) = t.raw();
    out.fill_zero();
    match variant {
        PpaVariant::Unchanged => {
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    accum.fill(0.0);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        let brow = b.row(j_idx[n] as usize);
                        for (a, &bv) in accum.iter_mut().zip(brow) {
                            *a += v * bv;
                        }
                    }
                    let crow = c.row(t.fiber_kid(f) as usize);
                    for ((o, &a), &cv) in orow.iter_mut().zip(accum.iter()).zip(crow) {
                        *o += a * cv;
                    }
                }
            }
        }
        PpaVariant::NoB => {
            // line 7 loses its B load: s[r] += val
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    accum.fill(0.0);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        // keep the j_index load: only the B access is removed
                        let j = black_box(j_idx[n]);
                        let _ = j;
                        for a in accum.iter_mut() {
                            *a += v;
                        }
                    }
                    let crow = c.row(t.fiber_kid(f) as usize);
                    for ((o, &a), &cv) in orow.iter_mut().zip(accum.iter()).zip(crow) {
                        *o += a * cv;
                    }
                }
            }
        }
        PpaVariant::BInL1 => {
            // every B access reads row 0: same instructions, L1-resident data
            let brow0 = b.row(0);
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    accum.fill(0.0);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        let j = black_box(j_idx[n]);
                        let _ = j;
                        for (a, &bv) in accum.iter_mut().zip(brow0) {
                            *a += v * bv;
                        }
                    }
                    let crow = c.row(t.fiber_kid(f) as usize);
                    for ((o, &a), &cv) in orow.iter_mut().zip(accum.iter()).zip(crow) {
                        *o += a * cv;
                    }
                }
            }
        }
        PpaVariant::NoAccumLoads => {
            // the PPA probe deletes the *loads* of lines 7 and 9: the
            // accumulator and output are overwritten instead of
            // read-modify-written. Same stores, same flops minus the adds,
            // no accumulator/output load traffic. (The result is wrong —
            // this is a probe, not a kernel; the production fix is the
            // register blocking of Algorithm 2.)
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    accum.fill(0.0);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        let brow = b.row(j_idx[n] as usize);
                        for (a, &bv) in accum.iter_mut().zip(brow) {
                            *a = v * bv; // '=' not '+=': accumulator load deleted
                        }
                    }
                    let crow = c.row(t.fiber_kid(f) as usize);
                    for ((o, &a), &cv) in orow.iter_mut().zip(accum.iter()).zip(crow) {
                        *o = a * cv; // '=' not '+=': output load deleted
                    }
                }
            }
        }
        PpaVariant::NoC => {
            // line 9 loses its C load: A[i][r] += s[r]
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    accum.fill(0.0);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        let brow = b.row(j_idx[n] as usize);
                        for (a, &bv) in accum.iter_mut().zip(brow) {
                            *a += v * bv;
                        }
                    }
                    let k = black_box(t.fiber_kid(f));
                    let _ = k;
                    for (o, &a) in orow.iter_mut().zip(accum.iter()) {
                        *o += a;
                    }
                }
            }
        }
        PpaVariant::FlopsInner => {
            // per-fiber Hadamard moved inside the per-nonzero loop:
            // A[i][r] += val * B[j][r] * C[k][r], emulating COO
            for s in 0..t.n_slices() {
                let orow = out.row_mut(t.slice_global(s));
                for f in t.slice_fibers(s) {
                    let crow = c.row(t.fiber_kid(f) as usize);
                    for n in t.fiber_nnz(f) {
                        let v = vals[n];
                        let brow = b.row(j_idx[n] as usize);
                        for ((o, &bv), &cv) in orow.iter_mut().zip(brow).zip(crow) {
                            *o += v * bv * cv;
                        }
                    }
                }
            }
        }
    }
}

/// Runs the full Table I experiment: every variant, best of `reps` timings.
pub fn run_ppa(coo: &CooTensor, mode: usize, rank: usize, reps: usize) -> Vec<PpaResult> {
    let t = SplattTensor::for_mode(coo, mode);
    let perm = t.perm();
    let dims = coo.dims();
    let mk = |d: usize, salt: usize| {
        DenseMatrix::from_fn(d, rank, |r, c| {
            (((r * 37 + c * 13 + salt) % 29) as f64 - 14.0) * 0.03
        })
    };
    let b = mk(dims[perm[1]], 1);
    let c = mk(dims[perm[2]], 2);
    let mut out = DenseMatrix::zeros(dims[perm[0]], rank);
    let mut accum = vec![0.0; rank];

    PpaVariant::ALL
        .iter()
        .map(|&variant| {
            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                run_variant(variant, &t, &b, &c, &mut out, &mut accum);
                best = best.min(t0.elapsed().as_secs_f64());
                black_box(out.as_slice());
            }
            PpaResult {
                variant,
                secs: best,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_core::kernel::MttkrpKernel;
    use tenblock_core::mttkrp::SplattKernel;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn unchanged_variant_is_the_real_kernel() {
        let x = uniform_tensor([20, 25, 30], 500, 3);
        let rank = 12;
        let t = SplattTensor::for_mode(&x, 0);
        let b = DenseMatrix::from_fn(25, rank, |r, c| ((r + c) % 7) as f64 * 0.2);
        let c = DenseMatrix::from_fn(30, rank, |r, c| ((r * c) % 5) as f64 * 0.3);
        let a = DenseMatrix::zeros(20, rank);
        let mut out = DenseMatrix::zeros(20, rank);
        let mut accum = vec![0.0; rank];
        run_variant(PpaVariant::Unchanged, &t, &b, &c, &mut out, &mut accum);

        let kernel = SplattKernel::new(&x, 0);
        let mut expect = DenseMatrix::zeros(20, rank);
        kernel.mttkrp(&[&a, &b, &c], &mut expect);
        assert!(expect.approx_eq(&out, 1e-12));
    }

    #[test]
    fn no_accum_loads_probe_deletes_reads() {
        // type 3 deletes accumulator/output loads: results are finite but
        // intentionally wrong on multi-nonzero fibers (it's a probe)
        let x = CooTensor::from_triples(
            [2, 3, 2],
            &[0, 0, 0],
            &[0, 1, 2],
            &[1, 1, 1],
            &[1.0, 1.0, 1.0],
        ); // one fiber with three nonzeros
        let rank = 4;
        let t = SplattTensor::for_mode(&x, 0);
        let b = DenseMatrix::from_fn(3, rank, |r, _| (r + 1) as f64);
        let c = DenseMatrix::from_fn(2, rank, |_, _| 1.0);
        let mut o1 = DenseMatrix::zeros(2, rank);
        let mut o2 = DenseMatrix::zeros(2, rank);
        let mut accum = vec![0.0; rank];
        run_variant(PpaVariant::Unchanged, &t, &b, &c, &mut o1, &mut accum);
        run_variant(PpaVariant::NoAccumLoads, &t, &b, &c, &mut o2, &mut accum);
        // baseline sums the fiber (1+2+3 = 6); the probe keeps only the
        // last nonzero (3)
        assert_eq!(o1.get(0, 0), 6.0);
        assert_eq!(o2.get(0, 0), 3.0);
        assert!(o2.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn flops_inner_matches_unchanged_numerically() {
        // type 5 reassociates but computes the same quantity
        let x = uniform_tensor([10, 12, 8], 250, 6);
        let rank = 8;
        let t = SplattTensor::for_mode(&x, 0);
        let b = DenseMatrix::from_fn(12, rank, |r, c| ((r + c) % 4) as f64);
        let c = DenseMatrix::from_fn(8, rank, |r, c| ((r * c + 1) % 3) as f64);
        let mut o1 = DenseMatrix::zeros(10, rank);
        let mut o2 = DenseMatrix::zeros(10, rank);
        let mut accum = vec![0.0; rank];
        run_variant(PpaVariant::Unchanged, &t, &b, &c, &mut o1, &mut accum);
        run_variant(PpaVariant::FlopsInner, &t, &b, &c, &mut o2, &mut accum);
        assert!(o1.approx_eq(&o2, 1e-10));
    }

    #[test]
    fn harness_runs_all_six() {
        let x = uniform_tensor([30, 30, 30], 1_000, 9);
        let results = run_ppa(&x, 0, 16, 1);
        assert_eq!(results.len(), 6);
        for (r, v) in results.iter().zip(PpaVariant::ALL) {
            assert_eq!(r.variant, v);
            assert!(r.secs.is_finite() && r.secs >= 0.0);
        }
        assert_eq!(results[5].variant.type_no(), 6);
        assert_eq!(results[0].variant.description(), "Access to B removed");
    }
}
