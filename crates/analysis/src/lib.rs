//! # tenblock-analysis
//!
//! The performance-analysis half of the paper (Section IV):
//!
//! * [`roofline`] — Equations (1)–(3): data traffic `Q`, flop count `W`, and
//!   arithmetic intensity `I(R, α)` of the SPLATT MTTKRP kernel, plus the
//!   Figure 2 series generator.
//! * [`cache`] — a set-associative LRU multi-level cache simulator with a
//!   POWER8 preset (64 KiB / 512 KiB, 128-byte lines). This substitutes for
//!   the paper's PMU measurements: it *measures* the cache hit rate `α`
//!   that Equation (1) treats as a free parameter.
//! * [`trace`] — walks the exact memory-access sequence of the baseline and
//!   blocked kernels through the simulator, producing per-structure hit
//!   rates (tensor stream, factor B, factor C, output A).
//! * [`ppa`] — the pressure-point analysis of Table I: the five code
//!   transformations (remove B, pin B to one row, register accumulator,
//!   remove C, move flops inward) implemented as real kernel variants and
//!   timed against the unchanged kernel.

//! * [`tune_model`] — the paper's future-work autotuner: block-size
//!   selection driven by the cache simulator's predicted memory traffic
//!   instead of wall-clock timing.

/// Re-export of the observability crate: recorders, spans, and the
/// [`obs::KernelCounters`] model the kernels report against (the same
/// quantities [`roofline`] predicts).
pub use tenblock_obs as obs;

pub mod cache;
pub mod ppa;
pub mod roofline;
pub mod trace;
pub mod tune_model;

pub use cache::{CacheConfig, CacheSim, LevelStats};
pub use ppa::{run_ppa, PpaResult, PpaVariant};
pub use roofline::{arithmetic_intensity, fig2_series, MachineBalance, RooflineInputs};
pub use trace::{trace_kernel, Stream, TraceKernel, TraceReport};
pub use tune_model::{tune_by_model, ModelTuneOptions, ModelTuneResult};
