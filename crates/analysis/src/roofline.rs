//! The roofline analysis of Section IV-A — Equations (1), (2), (3) and the
//! Figure 2 arithmetic-intensity series.
//!
//! With `nnz` nonzeros, `F` non-empty fibers, rank `R`, and overall cache
//! hit rate `α` (all data 64-bit):
//!
//! ```text
//! Q = 2·nnz + 2·F + (1-α)·R·nnz + (1-α)·R·F     (words from memory)
//! W = 2·R·(nnz + F)                              (flops)
//! I = W / (Q·8 bytes) = R / (8 + 4·R·(1-α))      (flops per byte)
//! ```
//!
//! The first two terms of `Q` are the tensor stream (`val`/`j_index`, then
//! `k_index`/`k_pointer`); the `(1-α)` terms are the factor-matrix rows
//! missed in cache (B per nonzero, C per fiber). `i_pointer` and the
//! destination factor are ignored as negligible (Section IV-A).

/// Problem parameters for the traffic/flop formulas.
#[derive(Debug, Clone, Copy)]
pub struct RooflineInputs {
    /// Number of nonzeros.
    pub nnz: u64,
    /// Number of non-empty fibers.
    pub fibers: u64,
    /// Decomposition rank.
    pub rank: u64,
    /// Overall cache hit rate in `[0, 1]`.
    pub alpha: f64,
}

impl RooflineInputs {
    /// Equation (1): words required from memory.
    pub fn traffic_words(&self) -> f64 {
        let nnz = self.nnz as f64;
        let f = self.fibers as f64;
        let r = self.rank as f64;
        2.0 * nnz + 2.0 * f + (1.0 - self.alpha) * r * nnz + (1.0 - self.alpha) * r * f
    }

    /// Equation (1) in bytes (64-bit words).
    pub fn traffic_bytes(&self) -> f64 {
        self.traffic_words() * 8.0
    }

    /// Equation (2): floating-point operations.
    pub fn flops(&self) -> f64 {
        2.0 * self.rank as f64 * (self.nnz + self.fibers) as f64
    }

    /// Equation (3): arithmetic intensity `W / (Q · 8)`.
    pub fn intensity(&self) -> f64 {
        self.flops() / self.traffic_bytes()
    }
}

/// Equation (3) in closed form: `I = R / (8 + 4·R·(1-α))`. Independent of
/// `nnz` and `F`.
///
/// ```
/// use tenblock_analysis::arithmetic_intensity;
/// // the paper's quoted checkpoints (Section IV-A)
/// assert!((arithmetic_intensity(16, 0.95) - 1.43).abs() < 0.01);
/// assert!((arithmetic_intensity(2048, 0.95) - 4.90).abs() < 0.01);
/// ```
pub fn arithmetic_intensity(rank: u64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let r = rank as f64;
    r / (8.0 + 4.0 * r * (1.0 - alpha))
}

/// The α values plotted in Figure 2.
pub const FIG2_ALPHAS: [f64; 9] = [1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.4, 0.2, 0.0];

/// The rank axis of Figure 2: 16, 32, …, 2048.
pub const FIG2_RANKS: [u64; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

/// Generates the Figure 2 series: for each α, the arithmetic intensity at
/// every rank. Returns `(alpha, Vec<(rank, intensity)>)` per curve.
pub fn fig2_series() -> Vec<(f64, Vec<(u64, f64)>)> {
    FIG2_ALPHAS
        .iter()
        .map(|&a| {
            let pts = FIG2_RANKS
                .iter()
                .map(|&r| (r, arithmetic_intensity(r, a)))
                .collect();
            (a, pts)
        })
        .collect()
}

/// A machine's balance point: peak flops per byte of memory bandwidth.
/// The paper quotes modern CPU/GPU balances of 6–12 flops/byte.
#[derive(Debug, Clone, Copy)]
pub struct MachineBalance {
    /// Peak floating-point throughput in Gflop/s.
    pub peak_gflops: f64,
    /// Sustainable memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
}

impl MachineBalance {
    /// The paper's POWER8 socket: 10 cores x 3.49 GHz x 2 FMA pipes x
    /// 2 lanes x 2 flops ≈ 279 Gflop/s, 75 GB/s read bandwidth.
    pub fn power8_socket() -> Self {
        MachineBalance {
            peak_gflops: 279.0,
            mem_bw_gbs: 75.0,
        }
    }

    /// Flops per byte at the roofline ridge point.
    pub fn balance(&self) -> f64 {
        self.peak_gflops / self.mem_bw_gbs
    }

    /// True if a kernel with arithmetic intensity `i` is memory-bound on
    /// this machine.
    pub fn is_memory_bound(&self, i: f64) -> bool {
        i < self.balance()
    }

    /// Attainable performance (Gflop/s) at intensity `i`: the roofline.
    pub fn attainable_gflops(&self, i: f64) -> f64 {
        self.peak_gflops.min(self.mem_bw_gbs * i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_full_formula() {
        // I must be independent of nnz and F
        for &(nnz, f) in &[(1000u64, 100u64), (5_000_000, 30_000)] {
            for &rank in &FIG2_RANKS {
                for &alpha in &FIG2_ALPHAS {
                    let inp = RooflineInputs {
                        nnz,
                        fibers: f,
                        rank,
                        alpha,
                    };
                    let closed = arithmetic_intensity(rank, alpha);
                    assert!(
                        (inp.intensity() - closed).abs() < 1e-12,
                        "mismatch at nnz={nnz} R={rank} a={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_quoted_values() {
        // Section IV-A: "for a very high cache hit rate of 95%, the
        // arithmetic intensity ranges from 1.43 at rank 16 to at most 4.90
        // at rank 2048".
        assert!((arithmetic_intensity(16, 0.95) - 1.43).abs() < 0.01);
        assert!((arithmetic_intensity(2048, 0.95) - 4.90).abs() < 0.01);
        // Limits: R/(8+4R) at alpha=0, R/8 at alpha=1.
        assert!((arithmetic_intensity(64, 0.0) - 64.0 / (8.0 + 256.0)).abs() < 1e-12);
        assert!((arithmetic_intensity(64, 1.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_monotone_in_alpha_and_rank() {
        for &rank in &FIG2_RANKS {
            let mut prev = -1.0;
            for &alpha in FIG2_ALPHAS.iter().rev() {
                let i = arithmetic_intensity(rank, alpha);
                assert!(i > prev, "intensity not increasing in alpha");
                prev = i;
            }
        }
        for &alpha in &FIG2_ALPHAS {
            let mut prev = 0.0;
            for &rank in &FIG2_RANKS {
                let i = arithmetic_intensity(rank, alpha);
                assert!(i > prev, "intensity not increasing in rank");
                prev = i;
            }
        }
    }

    #[test]
    fn memory_bound_conclusion() {
        // Section IV conclusion 1: memory-bound unless data fits in cache
        // (alpha ~ 1) and rank > 64.
        let m = MachineBalance::power8_socket();
        assert!(m.balance() > 3.0 && m.balance() < 6.0);
        // On a generic modern machine (balance 6-12 per the paper), MTTKRP
        // is memory-bound at every rank even with a 95% hit rate …
        let modern = MachineBalance {
            peak_gflops: 600.0,
            mem_bw_gbs: 100.0,
        };
        for &rank in &FIG2_RANKS {
            assert!(modern.is_memory_bound(arithmetic_intensity(rank, 0.95)));
        }
        // … and becomes compute-bound only when data fits in cache
        // (alpha = 1) and the rank is large enough (> 64).
        assert!(!m.is_memory_bound(arithmetic_intensity(128, 1.0)));
        assert!(m.is_memory_bound(arithmetic_intensity(16, 1.0)));
    }

    #[test]
    fn fig2_shape() {
        let series = fig2_series();
        assert_eq!(series.len(), 9);
        for (_, pts) in &series {
            assert_eq!(pts.len(), 8);
        }
        // alpha = 1 curve is R/8
        let (a, pts) = &series[0];
        assert_eq!(*a, 1.0);
        for &(r, i) in pts {
            assert!((i - r as f64 / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn attainable_roofline() {
        let m = MachineBalance::power8_socket();
        assert_eq!(m.attainable_gflops(1000.0), m.peak_gflops);
        assert!((m.attainable_gflops(1.0) - m.mem_bw_gbs).abs() < 1e-12);
    }
}
