//! Shared wall-clock measurement for the tuner and the benchmark harness.
//!
//! Every timing loop in the workspace (the Section V-C tuner candidates,
//! the `tenblock bench` CLI, the pinned JSON suite) funnels through
//! [`time_reps`]: a fixed number of *discarded warmup* repetitions followed
//! by `reps` measured repetitions, summarized as min / mean / stddev. The
//! warmup absorbs first-touch page faults and allocator growth, which on
//! small tensors can inflate a cold first rep by an order of magnitude and
//! skew a min-of-1 tuner decision.

use std::time::Instant;

/// Summary statistics over the measured (post-warmup) repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Fastest measured repetition in seconds.
    pub min_secs: f64,
    /// Arithmetic mean over the measured repetitions in seconds.
    pub mean_secs: f64,
    /// Population standard deviation over the measured repetitions in
    /// seconds (0 when `reps == 1`).
    pub stddev_secs: f64,
    /// Number of measured repetitions (warmup excluded).
    pub reps: usize,
}

impl TimingStats {
    /// Summarizes a slice of per-rep durations (seconds).
    ///
    /// Empty input yields a zeroed summary rather than NaN so downstream
    /// JSON serialization stays finite.
    pub fn from_samples(samples: &[f64]) -> TimingStats {
        if samples.is_empty() {
            return TimingStats {
                min_secs: 0.0,
                mean_secs: 0.0,
                stddev_secs: 0.0,
                reps: 0,
            };
        }
        let n = samples.len() as f64;
        let min_secs = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean_secs = samples.iter().sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| (s - mean_secs) * (s - mean_secs))
            .sum::<f64>()
            / n;
        TimingStats {
            min_secs,
            mean_secs,
            stddev_secs: var.sqrt(),
            reps: samples.len(),
        }
    }
}

/// Runs `f` for `warmup` discarded repetitions, then `reps.max(1)` measured
/// repetitions, and summarizes the measured wall-clock times.
///
/// ```
/// use tenblock_core::timing::time_reps;
///
/// let stats = time_reps(1, 3, || {
///     std::hint::black_box((0..1000).sum::<u64>());
/// });
/// assert_eq!(stats.reps, 3);
/// assert!(stats.min_secs <= stats.mean_secs);
/// ```
pub fn time_reps<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> TimingStats {
    for _ in 0..warmup {
        f();
    }
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    TimingStats::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_known_samples() {
        let s = TimingStats::from_samples(&[2.0, 4.0, 6.0]);
        assert_eq!(s.min_secs, 2.0);
        assert!((s.mean_secs - 4.0).abs() < 1e-12);
        // population stddev of [2, 4, 6] is sqrt(8/3)
        assert!((s.stddev_secs - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.reps, 3);
    }

    #[test]
    fn empty_samples_are_zeroed_not_nan() {
        let s = TimingStats::from_samples(&[]);
        assert_eq!(s.min_secs, 0.0);
        assert_eq!(s.mean_secs, 0.0);
        assert_eq!(s.stddev_secs, 0.0);
        assert_eq!(s.reps, 0);
    }

    #[test]
    fn warmup_reps_are_discarded() {
        let mut calls = 0usize;
        let stats = time_reps(2, 3, || calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(stats.reps, 3);
        assert!(stats.min_secs.is_finite() && stats.min_secs >= 0.0);
    }

    #[test]
    fn zero_reps_still_measures_once() {
        let mut calls = 0usize;
        let stats = time_reps(0, 0, || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(stats.reps, 1);
        assert_eq!(stats.stddev_secs, 0.0);
    }
}
