//! Out-of-core streaming MTTKRP over a [`TensorSource`].
//!
//! [`StreamingMttkrp`] runs one mode's MTTKRP by iterating grid tiles
//! instead of holding a layout: a prefetch thread loads and re-sorts the
//! next tile while the compute thread runs the BCOO micro-kernel on the
//! current one (rendezvous channel — classic double buffering, at most
//! two tiles resident). The result is **bit-for-bit identical** to the
//! in-memory MB and BCOO kernels in serial mode, which pins down three
//! invariants this module must never break:
//!
//! 1. tiles execute sorted by kernel-axis cell id — the order the BCOO
//!    block table stores and the MB kernel's block-major loop visits;
//! 2. entries within a tile execute in `(slice, k, j)` local order — the
//!    sort `BcooTensor::from_coo` applies (unique coordinates, so the
//!    unstable sort is deterministic);
//! 3. tile extents come from the same `uniform_bounds` arithmetic, so
//!    per-column accumulation order matches term for term.
//!
//! Checked mode keeps PR 3's write-set discipline without a second pass:
//! each slice-axis band owns its bounds-derived row range, the rows each
//! tile actually decodes are accumulated *during* the stream, and the
//! usual disjointness/coverage verdict runs once at the end.

use crate::exec::ExecPolicy;
use crate::mttkrp::micro::{process_block_bcoo, GatherBuf};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;
use tenblock_check::{write_set_violations, RaceReport, WriteSet};
use tenblock_faults::{is_transient, Backoff, FaultOp, FaultPolicy, IoOutcome};
use tenblock_obs::{KernelCounters, StreamStats};
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::io_bin::BinError;
use tenblock_tensor::{DenseMatrix, SourceTile, TensorSource, NMODES};

/// Why a streaming pass stopped.
#[derive(Debug)]
pub enum StreamError {
    /// The source failed to produce a tile for a non-I/O reason (framing,
    /// validation) — permanent; retrying cannot help.
    Load(BinError),
    /// An I/O failure that survived the transient-retry budget. Carries
    /// the tile index and the tile's byte offset within its backing file
    /// (0 for in-memory sources) so operators can localise bad media.
    Io {
        /// Index of the tile whose load failed.
        tile: usize,
        /// Byte offset of the tile payload in the backing file.
        offset: u64,
        /// The underlying load error.
        source: BinError,
    },
    /// The prefetch thread panicked or vanished before delivering every
    /// tile. The partial output is discarded; this never surfaces as a
    /// silently-truncated result.
    Prefetch(String),
    /// Checked mode refused the result: a tile decoded rows outside its
    /// band's bounds-derived claim.
    Race(RaceReport),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Load(e) => write!(f, "tile load failed: {e}"),
            StreamError::Io {
                tile,
                offset,
                source,
            } => write!(
                f,
                "tile {tile} load failed at byte offset {offset}: {source}"
            ),
            StreamError::Prefetch(what) => write!(f, "prefetch thread failed: {what}"),
            StreamError::Race(r) => write!(f, "streaming write-set check failed: {r}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<BinError> for StreamError {
    fn from(e: BinError) -> Self {
        StreamError::Load(e)
    }
}

/// One prefetched tile, already re-sorted and permuted into kernel axes.
struct KernelTile {
    /// Slice-axis grid cell (for checked-mode band accounting).
    slice_cell: usize,
    origin: [usize; NMODES],
    spans: [usize; NMODES],
    offs: Vec<[u32; NMODES]>,
    vals: Vec<f64>,
    bytes: u64,
}

/// Streaming MTTKRP driver for one mode over any [`TensorSource`].
pub struct StreamingMttkrp<'a> {
    src: &'a dyn TensorSource,
    mode: usize,
    strip_width: usize,
    exec: ExecPolicy,
    stats: Arc<StreamStats>,
}

impl<'a> StreamingMttkrp<'a> {
    /// A driver for the mode-`mode` MTTKRP with `strip_width`-column rank
    /// strips (0 means whole-rank), matching `BcooKernel`'s convention.
    pub fn new(src: &'a dyn TensorSource, mode: usize, strip_width: usize) -> Self {
        StreamingMttkrp {
            src,
            mode,
            strip_width: if strip_width == 0 {
                usize::MAX
            } else {
                strip_width
            },
            exec: ExecPolicy::serial(),
            stats: Arc::new(StreamStats::new()),
        }
    }

    /// Sets the execution policy. Checked mode enables the per-band
    /// write-set verdict; the compute loop itself is single-threaded (the
    /// parallelism is the prefetch overlap).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Shares a stats sink (e.g. one per serve registry entry or CLI
    /// run) instead of the driver's private one.
    pub fn with_stats(mut self, stats: Arc<StreamStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The stream counters this driver updates.
    pub fn stats(&self) -> &Arc<StreamStats> {
        &self.stats
    }

    /// The mode this driver computes.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Runs the mode-`self.mode` MTTKRP into `out`, streaming tiles from
    /// the source with one prefetch thread.
    ///
    /// # Panics
    /// Panics on shape mismatches (wrong `out` rows, factor rank
    /// disagreement) — same contract as the in-memory kernels. I/O and
    /// checked-mode failures come back as typed [`StreamError`]s.
    pub fn run(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), StreamError> {
        let perm = perm_for_mode(self.mode);
        let dims = self.src.dims();
        let grid = self.src.grid();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(out.rows(), dims[self.mode], "output rows != mode length");
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");

        let span = self.exec.recorder.span("mttkrp/STREAM");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.annotate_num("tiles", self.src.n_tiles() as f64);
            span.counters(
                &KernelCounters::coo_model(self.src.nnz() as u64, rank as u64)
                    .with_blocks(self.src.n_tiles() as u64),
            );
        }
        out.fill_zero();

        // Invariant 1: kernel-axis cell order — the BCOO block-id order.
        let mut order: Vec<usize> = (0..self.src.n_tiles()).collect();
        order.sort_unstable_by_key(|&i| {
            let cell = self.src.tile_cell(i);
            [cell[perm[0]], cell[perm[1]], cell[perm[2]]]
        });

        // Grid bounds per original axis — the shared `uniform_bounds`
        // contract every source obeys. Spans fed to the micro-kernel come
        // from here (invariant 3), not from the decoded offsets, so the
        // per-block gather heuristic sees exactly what `BcooKernel` sees.
        let bounds: [Vec<usize>; NMODES] = [
            tenblock_tensor::bcoo::uniform_bounds(dims[0], grid[0]),
            tenblock_tensor::bcoo::uniform_bounds(dims[1], grid[1]),
            tenblock_tensor::bcoo::uniform_bounds(dims[2], grid[2]),
        ];

        // Checked mode: decoded slice rows per slice-axis band,
        // accumulated during the single pass.
        let n_bands = grid[perm[0]];
        let bounds0 = &bounds[perm[0]];
        let mut touched: Vec<Vec<usize>> = vec![Vec::new(); n_bands];

        let src = self.src;
        let stats = Arc::clone(&self.stats);
        let faults = self.exec.faults.clone();
        let n_expected = order.len();
        let mut scratch = GatherBuf::default();
        let out_rows = out.as_mut_slice();

        std::thread::scope(|scope| -> Result<(), StreamError> {
            // Rendezvous channel: the handoff blocks until the compute
            // thread takes the tile, so at most two tiles are ever
            // resident (one computing, one prefetched).
            let (tx, rx) = sync_channel::<Result<KernelTile, StreamError>>(0);
            let bounds = &bounds;
            let prefetch_stats = Arc::clone(&stats);
            scope.spawn(move || {
                for &i in &order {
                    // catch_unwind: a panicking `TensorSource` impl (or a
                    // bug in `prepare_tile`) must surface as a typed error
                    // on the channel, never as a poisoned rendezvous that
                    // the compute side would misread as end-of-stream.
                    let msg = catch_unwind(AssertUnwindSafe(|| {
                        load_tile_retrying(src, i, perm, bounds, &faults, &prefetch_stats)
                    }))
                    .unwrap_or_else(|panic| {
                        Err(StreamError::Prefetch(format!(
                            "panic while loading tile {i}: {}",
                            panic_message(panic.as_ref())
                        )))
                    });
                    let failed = msg.is_err();
                    if tx.send(msg).is_err() || failed {
                        return; // compute side hung up, or error delivered
                    }
                }
            });

            let mut received = 0usize;
            loop {
                let wait = Instant::now();
                let msg = match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => {
                        // The sender is gone. That is only legitimate once
                        // every tile has been delivered — anything earlier
                        // means the prefetch thread died without sending
                        // its error, and a silently-truncated result must
                        // not escape as success.
                        if received == n_expected {
                            break;
                        }
                        return Err(StreamError::Prefetch(format!(
                            "prefetch thread exited after {received} of {n_expected} tiles"
                        )));
                    }
                };
                stats.add_stall_ns(wait.elapsed().as_nanos() as u64);
                let tile = msg?;
                received += 1;
                stats.add_tile(tile.bytes);
                if self.exec.is_checked() {
                    let band = &mut touched[tile.slice_cell];
                    let mut prev = usize::MAX;
                    for o in &tile.offs {
                        let row = tile.origin[0] + o[0] as usize;
                        if row != prev {
                            band.push(row);
                            prev = row;
                        }
                    }
                }
                process_block_bcoo(
                    &tile.offs,
                    &tile.vals,
                    b,
                    c,
                    tile.origin,
                    tile.spans,
                    out_rows,
                    0,
                    rank,
                    self.strip_width,
                    &mut scratch,
                );
            }
            Ok(())
        })?;

        if self.exec.is_checked() {
            let sets: Vec<WriteSet> = touched
                .into_iter()
                .enumerate()
                .map(|(a, rows)| WriteSet::new(a, bounds0[a]..bounds0[a + 1]).touch_all(rows))
                .collect();
            let violations = write_set_violations(dims[self.mode], &sets);
            RaceReport::check("STREAM", violations).map_err(StreamError::Race)?;
        }
        Ok(())
    }
}

/// Permutes a loaded tile into kernel axes and applies invariant 2: the
/// `(slice, k, j)` local entry order the BCOO layout stores. Runs on the
/// prefetch thread so the sort overlaps compute. `bounds` are the grid
/// boundaries per *original* axis; spans are bounds-derived so the
/// micro-kernel's gather heuristic matches the in-memory layout exactly.
fn prepare_tile(
    tile: SourceTile,
    perm: [usize; NMODES],
    bytes: u64,
    bounds: &[Vec<usize>; NMODES],
) -> KernelTile {
    let n = tile.nnz();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&e| {
        let l = tile.locals[e as usize];
        (l[perm[0]], l[perm[2]], l[perm[1]])
    });
    let mut offs = Vec::with_capacity(n);
    let mut vals = Vec::with_capacity(n);
    for &e in &order {
        let l = tile.locals[e as usize];
        offs.push([l[perm[0]], l[perm[1]], l[perm[2]]]);
        vals.push(tile.vals[e as usize]);
    }
    let mut origin = [0usize; NMODES];
    let mut spans = [0usize; NMODES];
    for ax in 0..NMODES {
        let orig_ax = perm[ax];
        let cell = tile.cell[orig_ax];
        origin[ax] = tile.origin[orig_ax];
        spans[ax] = bounds[orig_ax][cell + 1] - bounds[orig_ax][cell];
    }
    KernelTile {
        slice_cell: tile.cell[perm[0]],
        origin,
        spans,
        offs,
        vals,
        bytes,
    }
}

/// Loads and prepares one tile, retrying transient I/O failures with
/// seeded exponential backoff. Classification:
///
/// * transient ([`is_transient`]: `EINTR`/`EAGAIN`/timeouts) → retry up
///   to the [`Backoff`] budget, counting each retry in
///   [`StreamStats::add_retry`];
/// * permanent I/O (any other [`BinError::Io`], or a transient one that
///   exhausted the budget) → [`StreamError::Io`] with the tile index and
///   its byte offset in the backing file;
/// * framing/validation ([`BinError::Format`]) → [`StreamError::Load`] —
///   the bytes arrived fine but mean nothing, so retrying cannot help.
///
/// The [`FaultPolicy`] hook fires before each attempt so `tenblock chaos`
/// can exercise the retry and failure paths against healthy sources.
fn load_tile_retrying(
    src: &dyn TensorSource,
    i: usize,
    perm: [usize; NMODES],
    bounds: &[Vec<usize>; NMODES],
    faults: &FaultPolicy,
    stats: &StreamStats,
) -> Result<KernelTile, StreamError> {
    let io_err = |source: BinError| StreamError::Io {
        tile: i,
        offset: src.tile_offset(i),
        source,
    };
    let mut backoff = Backoff::for_io(i as u64);
    loop {
        let attempt = load_tile_once(src, i, faults);
        match attempt {
            Ok(tile) => return Ok(prepare_tile(tile, perm, src.tile_bytes(i), bounds)),
            Err(BinError::Io(e)) if is_transient(&e) => match backoff.next_delay() {
                Some(delay) => {
                    stats.add_retry();
                    std::thread::sleep(delay);
                }
                None => return Err(io_err(BinError::Io(e))),
            },
            Err(e @ BinError::Format(_)) => return Err(StreamError::Load(e)),
            Err(e) => return Err(io_err(e)),
        }
    }
}

/// One load attempt with the stream-layer fault hook applied. `Errno`
/// faults become the corresponding I/O error (transient errnos then take
/// the retry path); `ShortRead` and `Crash` become an unexpected-EOF /
/// crash error; `FlipByte` perturbs one loaded value, modelling silent
/// media corruption that only checked mode or a downstream consumer can
/// notice.
fn load_tile_once(
    src: &dyn TensorSource,
    i: usize,
    faults: &FaultPolicy,
) -> Result<SourceTile, BinError> {
    match faults.before(FaultOp::Read, src.tile_bytes(i) as usize) {
        IoOutcome::Ok => src.load_tile(i),
        IoOutcome::Err(e) => Err(BinError::Io(e)),
        IoOutcome::Short(_) => Err(BinError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("short read injected on tile {i}"),
        ))),
        IoOutcome::Corrupt(off) => {
            let mut tile = src.load_tile(i)?;
            if !tile.vals.is_empty() {
                let k = off % tile.vals.len();
                tile.vals[k] = f64::from_bits(tile.vals[k].to_bits() ^ 0x40);
            }
            Ok(tile)
        }
    }
}

/// Best-effort text for a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MbKernel;
    use crate::kernel::MttkrpKernel;
    use crate::mttkrp::BcooKernel;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};
    use tenblock_tensor::{BcooSource, BcooTensor, CooSource, CooTensor};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 13 + c * 5 + m) % 23) as f64 - 11.0) * 0.05
                })
            })
            .collect()
    }

    /// Exact (not approximate) equality — the bit-for-bit contract.
    fn assert_bits_equal(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: element {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn streaming_matches_bcoo_bit_for_bit_every_mode() {
        let cfg = ClusteredConfig::new([60, 45, 30], 2_500);
        let x = clustered_tensor(&cfg, 5);
        let grid_orig = [4, 3, 2];
        let rank = 17; // not a multiple of the strip width
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let src = CooSource::new(&x, grid_orig);
        for mode in 0..NMODES {
            let perm = perm_for_mode(mode);
            let grid_kernel = [grid_orig[perm[0]], grid_orig[perm[1]], grid_orig[perm[2]]];
            for strip in [0, 8, 16] {
                let k = BcooKernel::new(&x, mode, grid_kernel, strip);
                let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
                k.mttkrp(&fs, &mut expect);
                let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
                StreamingMttkrp::new(&src, mode, strip)
                    .run(&fs, &mut got)
                    .unwrap();
                assert_bits_equal(&expect, &got, &format!("mode {mode} strip {strip}"));
            }
        }
    }

    #[test]
    fn streaming_matches_mb_bit_for_bit() {
        let x = uniform_tensor([48, 32, 24], 1_800, 31);
        let grid_orig = [3, 2, 2];
        let rank = 16;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let src = CooSource::new(&x, grid_orig);
        for mode in 0..NMODES {
            let perm = perm_for_mode(mode);
            let grid_kernel = [grid_orig[perm[0]], grid_orig[perm[1]], grid_orig[perm[2]]];
            let k = MbKernel::new(&x, mode, grid_kernel);
            let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut expect);
            // Whole-rank strips: the plain per-entry update order.
            let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&src, mode, 0)
                .run(&fs, &mut got)
                .unwrap();
            assert_bits_equal(&expect, &got, &format!("MB mode {mode}"));
        }
    }

    #[test]
    fn bcoo_source_streams_identically_to_coo_source() {
        let cfg = ClusteredConfig::new([40, 40, 40], 1_500);
        let x = clustered_tensor(&cfg, 9);
        let grid_orig = [2, 4, 2];
        let rank = 9;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        // BCOO layout built for mode 1 — the source must still serve
        // modes 0 and 2 correctly through the perm translation.
        let bcoo_grid = [grid_orig[1], grid_orig[2], grid_orig[0]];
        let bsrc = BcooSource::new(BcooTensor::from_coo(&x, 1, bcoo_grid));
        let csrc = CooSource::new(&x, grid_orig);
        assert_eq!(TensorSource::grid(&bsrc), grid_orig);
        for mode in 0..NMODES {
            let mut a = DenseMatrix::zeros(x.dims()[mode], rank);
            let mut b = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&csrc, mode, 16)
                .run(&fs, &mut a)
                .unwrap();
            StreamingMttkrp::new(&bsrc, mode, 16)
                .run(&fs, &mut b)
                .unwrap();
            assert_bits_equal(&a, &b, &format!("source kind, mode {mode}"));
        }
    }

    #[test]
    fn stats_count_tiles_and_bytes_per_pass() {
        let x = uniform_tensor([30, 30, 30], 900, 3);
        let src = CooSource::new(&x, [3, 3, 3]);
        let rank = 4;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let driver = StreamingMttkrp::new(&src, 0, 16);
        let mut out = DenseMatrix::zeros(30, rank);
        driver.run(&fs, &mut out).unwrap();
        driver.run(&fs, &mut out).unwrap();
        let snap = driver.stats().snapshot();
        assert_eq!(snap.tiles_loaded, 2 * src.n_tiles() as u64);
        assert_eq!(snap.bytes_streamed, 2 * src.total_tile_bytes());
    }

    #[test]
    fn checked_streaming_passes_on_healthy_sources() {
        let x = uniform_tensor([25, 20, 15], 700, 77);
        let src = CooSource::new(&x, [3, 2, 2]);
        let rank = 6;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..NMODES {
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&src, mode, 16)
                .with_exec(ExecPolicy::checked())
                .run(&fs, &mut out)
                .unwrap();
        }
    }

    #[test]
    fn checked_streaming_refuses_rows_outside_the_band() {
        /// A source whose single tile claims cell 0 but decodes rows in
        /// the second band — the streamed analogue of a corrupted block
        /// table.
        struct LyingSource {
            inner: CooSource,
        }
        impl TensorSource for LyingSource {
            fn dims(&self) -> [usize; NMODES] {
                self.inner.dims()
            }
            fn nnz(&self) -> usize {
                self.inner.nnz()
            }
            fn grid(&self) -> [usize; NMODES] {
                self.inner.grid()
            }
            fn n_tiles(&self) -> usize {
                self.inner.n_tiles()
            }
            fn tile_cell(&self, i: usize) -> [usize; NMODES] {
                self.inner.tile_cell(i)
            }
            fn tile_nnz(&self, i: usize) -> usize {
                self.inner.tile_nnz(i)
            }
            fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
                let mut t = self.inner.load_tile(i)?;
                if t.cell[0] == 0 {
                    // Shift the tile into the next band's rows without
                    // updating the cell claim.
                    t.origin[0] += self.dims()[0] / 2;
                }
                Ok(t)
            }
        }
        let x = uniform_tensor([16, 10, 10], 300, 5);
        let src = LyingSource {
            inner: CooSource::new(&x, [2, 1, 1]),
        };
        let rank = 3;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(16, rank);
        let err = StreamingMttkrp::new(&src, 0, 16)
            .with_exec(ExecPolicy::checked())
            .run(&fs, &mut out)
            .unwrap_err();
        assert!(matches!(err, StreamError::Race(_)), "got: {err}");
    }

    /// Delegating source that fails or panics on a chosen tile — the
    /// streamed analogue of bad media under the mmap.
    struct FaultySource {
        inner: CooSource,
        bad_tile: usize,
        /// `true` → panic on the bad tile; `false` → return an I/O error.
        panic: bool,
    }
    impl TensorSource for FaultySource {
        fn dims(&self) -> [usize; NMODES] {
            self.inner.dims()
        }
        fn nnz(&self) -> usize {
            self.inner.nnz()
        }
        fn grid(&self) -> [usize; NMODES] {
            self.inner.grid()
        }
        fn n_tiles(&self) -> usize {
            self.inner.n_tiles()
        }
        fn tile_cell(&self, i: usize) -> [usize; NMODES] {
            self.inner.tile_cell(i)
        }
        fn tile_nnz(&self, i: usize) -> usize {
            self.inner.tile_nnz(i)
        }
        fn tile_offset(&self, i: usize) -> u64 {
            (i as u64) * 1000
        }
        fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
            if i == self.bad_tile {
                if self.panic {
                    panic!("injected panic on tile {i}");
                }
                return Err(BinError::Io(std::io::Error::other("injected EIO")));
            }
            self.inner.load_tile(i)
        }
    }

    fn small_run(
        src: &dyn TensorSource,
        exec: ExecPolicy,
    ) -> (Result<(), StreamError>, Arc<StreamStats>) {
        let x = uniform_tensor([20, 12, 12], 400, 11);
        let rank = 4;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(20, rank);
        let driver = StreamingMttkrp::new(src, 0, 16).with_exec(exec);
        let res = driver.run(&fs, &mut out);
        let stats = Arc::clone(driver.stats());
        (res, stats)
    }

    #[test]
    fn permanent_io_error_is_typed_with_tile_and_offset() {
        let x = uniform_tensor([20, 12, 12], 400, 11);
        let src = FaultySource {
            inner: CooSource::new(&x, [2, 2, 2]),
            bad_tile: 3,
            panic: false,
        };
        let (res, _) = small_run(&src, ExecPolicy::serial());
        match res.unwrap_err() {
            StreamError::Io {
                tile,
                offset,
                source,
            } => {
                assert_eq!(tile, 3);
                assert_eq!(offset, 3000, "offset must come from tile_offset");
                assert!(matches!(source, BinError::Io(_)));
            }
            other => panic!("expected StreamError::Io, got: {other}"),
        }
    }

    #[test]
    fn panicking_source_yields_typed_error_not_truncation_or_hang() {
        let x = uniform_tensor([20, 12, 12], 400, 11);
        let src = FaultySource {
            inner: CooSource::new(&x, [2, 2, 2]),
            bad_tile: 0,
            panic: true,
        };
        let (res, _) = small_run(&src, ExecPolicy::serial());
        let err = res.unwrap_err();
        assert!(matches!(err, StreamError::Prefetch(_)), "got: {err}");
        assert!(err.to_string().contains("injected panic"), "got: {err}");
    }

    #[test]
    fn transient_faults_retry_and_heal_bit_exactly() {
        use tenblock_faults::{FaultAction, FaultOp, FaultPolicy, Trigger};
        let x = uniform_tensor([20, 12, 12], 400, 11);
        let src = CooSource::new(&x, [2, 2, 2]);
        let rank = 4;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let mut expect = DenseMatrix::zeros(20, rank);
        StreamingMttkrp::new(&src, 0, 16)
            .run(&fs, &mut expect)
            .unwrap();
        // EINTR on every read until two have fired, then healed.
        let faults = FaultPolicy::transient(
            FaultOp::Read,
            FaultAction::Errno(4),
            Trigger::EveryNth(1),
            7,
            2,
        );
        let mut got = DenseMatrix::zeros(20, rank);
        let driver =
            StreamingMttkrp::new(&src, 0, 16).with_exec(ExecPolicy::serial().with_faults(faults));
        driver.run(&fs, &mut got).unwrap();
        assert_eq!(driver.stats().snapshot().tile_retries, 2);
        assert_bits_equal(&expect, &got, "post-retry stream");
    }

    #[test]
    fn injected_permanent_errno_is_a_typed_io_error() {
        use tenblock_faults::{FaultAction, FaultOp, FaultPolicy, Trigger};
        let x = uniform_tensor([20, 12, 12], 400, 11);
        let src = CooSource::new(&x, [2, 2, 2]);
        // EIO (5) is not transient: fails immediately, no retries.
        let faults = FaultPolicy::new(FaultOp::Read, FaultAction::Errno(5), Trigger::Nth(2), 7);
        let (res, stats) = small_run(&src, ExecPolicy::serial().with_faults(faults));
        let err = res.unwrap_err();
        assert!(matches!(err, StreamError::Io { .. }), "got: {err}");
        assert_eq!(stats.snapshot().tile_retries, 0);
    }

    #[test]
    fn budget_grid_is_deterministic_and_respects_the_budget() {
        let dims = [200usize, 150, 90];
        let nnz = 50_000;
        for budget in [1u64 << 14, 1 << 17, 1 << 20, u64::MAX] {
            let grid = crate::tune::grid_for_tile_budget(dims, nnz, budget);
            assert_eq!(grid, crate::tune::grid_for_tile_budget(dims, nnz, budget));
            for ax in 0..NMODES {
                assert!(grid[ax] >= 1 && grid[ax] <= dims[ax]);
            }
            let cells = grid.iter().product::<usize>() as u64;
            let expected = (nnz as u64 * 20).div_ceil(cells);
            // Either the expected tile fits half the budget or the grid
            // saturated at one index per tile on every axis.
            assert!(
                expected <= (budget / 2).max(20) || grid == dims,
                "budget {budget}: grid {grid:?} expected tile {expected}"
            );
        }
        // Unconstrained budgets stream the whole tensor as one tile.
        assert_eq!(
            crate::tune::grid_for_tile_budget(dims, nnz, u64::MAX),
            [1, 1, 1]
        );
    }
}
