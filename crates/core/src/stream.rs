//! Out-of-core streaming MTTKRP over a [`TensorSource`].
//!
//! [`StreamingMttkrp`] runs one mode's MTTKRP by iterating grid tiles
//! instead of holding a layout: a prefetch thread loads and re-sorts the
//! next tile while the compute thread runs the BCOO micro-kernel on the
//! current one (rendezvous channel — classic double buffering, at most
//! two tiles resident). The result is **bit-for-bit identical** to the
//! in-memory MB and BCOO kernels in serial mode, which pins down three
//! invariants this module must never break:
//!
//! 1. tiles execute sorted by kernel-axis cell id — the order the BCOO
//!    block table stores and the MB kernel's block-major loop visits;
//! 2. entries within a tile execute in `(slice, k, j)` local order — the
//!    sort `BcooTensor::from_coo` applies (unique coordinates, so the
//!    unstable sort is deterministic);
//! 3. tile extents come from the same `uniform_bounds` arithmetic, so
//!    per-column accumulation order matches term for term.
//!
//! Checked mode keeps PR 3's write-set discipline without a second pass:
//! each slice-axis band owns its bounds-derived row range, the rows each
//! tile actually decodes are accumulated *during* the stream, and the
//! usual disjointness/coverage verdict runs once at the end.

use crate::exec::ExecPolicy;
use crate::mttkrp::micro::{process_block_bcoo, GatherBuf};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;
use tenblock_check::{write_set_violations, RaceReport, WriteSet};
use tenblock_obs::{KernelCounters, StreamStats};
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::io_bin::BinError;
use tenblock_tensor::{DenseMatrix, SourceTile, TensorSource, NMODES};

/// Why a streaming pass stopped.
#[derive(Debug)]
pub enum StreamError {
    /// The source failed to produce a tile (I/O or framing).
    Load(BinError),
    /// Checked mode refused the result: a tile decoded rows outside its
    /// band's bounds-derived claim.
    Race(RaceReport),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Load(e) => write!(f, "tile load failed: {e}"),
            StreamError::Race(r) => write!(f, "streaming write-set check failed: {r}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<BinError> for StreamError {
    fn from(e: BinError) -> Self {
        StreamError::Load(e)
    }
}

/// One prefetched tile, already re-sorted and permuted into kernel axes.
struct KernelTile {
    /// Slice-axis grid cell (for checked-mode band accounting).
    slice_cell: usize,
    origin: [usize; NMODES],
    spans: [usize; NMODES],
    offs: Vec<[u32; NMODES]>,
    vals: Vec<f64>,
    bytes: u64,
}

/// Streaming MTTKRP driver for one mode over any [`TensorSource`].
pub struct StreamingMttkrp<'a> {
    src: &'a dyn TensorSource,
    mode: usize,
    strip_width: usize,
    exec: ExecPolicy,
    stats: Arc<StreamStats>,
}

impl<'a> StreamingMttkrp<'a> {
    /// A driver for the mode-`mode` MTTKRP with `strip_width`-column rank
    /// strips (0 means whole-rank), matching `BcooKernel`'s convention.
    pub fn new(src: &'a dyn TensorSource, mode: usize, strip_width: usize) -> Self {
        StreamingMttkrp {
            src,
            mode,
            strip_width: if strip_width == 0 {
                usize::MAX
            } else {
                strip_width
            },
            exec: ExecPolicy::serial(),
            stats: Arc::new(StreamStats::new()),
        }
    }

    /// Sets the execution policy. Checked mode enables the per-band
    /// write-set verdict; the compute loop itself is single-threaded (the
    /// parallelism is the prefetch overlap).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Shares a stats sink (e.g. one per serve registry entry or CLI
    /// run) instead of the driver's private one.
    pub fn with_stats(mut self, stats: Arc<StreamStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The stream counters this driver updates.
    pub fn stats(&self) -> &Arc<StreamStats> {
        &self.stats
    }

    /// The mode this driver computes.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Runs the mode-`self.mode` MTTKRP into `out`, streaming tiles from
    /// the source with one prefetch thread.
    ///
    /// # Panics
    /// Panics on shape mismatches (wrong `out` rows, factor rank
    /// disagreement) — same contract as the in-memory kernels. I/O and
    /// checked-mode failures come back as typed [`StreamError`]s.
    pub fn run(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), StreamError> {
        let perm = perm_for_mode(self.mode);
        let dims = self.src.dims();
        let grid = self.src.grid();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(out.rows(), dims[self.mode], "output rows != mode length");
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");

        let span = self.exec.recorder.span("mttkrp/STREAM");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.annotate_num("tiles", self.src.n_tiles() as f64);
            span.counters(
                &KernelCounters::coo_model(self.src.nnz() as u64, rank as u64)
                    .with_blocks(self.src.n_tiles() as u64),
            );
        }
        out.fill_zero();

        // Invariant 1: kernel-axis cell order — the BCOO block-id order.
        let mut order: Vec<usize> = (0..self.src.n_tiles()).collect();
        order.sort_unstable_by_key(|&i| {
            let cell = self.src.tile_cell(i);
            [cell[perm[0]], cell[perm[1]], cell[perm[2]]]
        });

        // Grid bounds per original axis — the shared `uniform_bounds`
        // contract every source obeys. Spans fed to the micro-kernel come
        // from here (invariant 3), not from the decoded offsets, so the
        // per-block gather heuristic sees exactly what `BcooKernel` sees.
        let bounds: [Vec<usize>; NMODES] = [
            tenblock_tensor::bcoo::uniform_bounds(dims[0], grid[0]),
            tenblock_tensor::bcoo::uniform_bounds(dims[1], grid[1]),
            tenblock_tensor::bcoo::uniform_bounds(dims[2], grid[2]),
        ];

        // Checked mode: decoded slice rows per slice-axis band,
        // accumulated during the single pass.
        let n_bands = grid[perm[0]];
        let bounds0 = &bounds[perm[0]];
        let mut touched: Vec<Vec<usize>> = vec![Vec::new(); n_bands];

        let src = self.src;
        let stats = Arc::clone(&self.stats);
        let mut scratch = GatherBuf::default();
        let out_rows = out.as_mut_slice();

        std::thread::scope(|scope| -> Result<(), StreamError> {
            // Rendezvous channel: the handoff blocks until the compute
            // thread takes the tile, so at most two tiles are ever
            // resident (one computing, one prefetched).
            let (tx, rx) = sync_channel::<Result<KernelTile, BinError>>(0);
            let bounds = &bounds;
            scope.spawn(move || {
                for &i in &order {
                    let msg = src
                        .load_tile(i)
                        .map(|t| prepare_tile(t, perm, src.tile_bytes(i), bounds));
                    let failed = msg.is_err();
                    if tx.send(msg).is_err() || failed {
                        return; // compute side hung up, or error delivered
                    }
                }
            });

            loop {
                let wait = Instant::now();
                let msg = match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break, // prefetcher done
                };
                stats.add_stall_ns(wait.elapsed().as_nanos() as u64);
                let tile = msg?;
                stats.add_tile(tile.bytes);
                if self.exec.is_checked() {
                    let band = &mut touched[tile.slice_cell];
                    let mut prev = usize::MAX;
                    for o in &tile.offs {
                        let row = tile.origin[0] + o[0] as usize;
                        if row != prev {
                            band.push(row);
                            prev = row;
                        }
                    }
                }
                process_block_bcoo(
                    &tile.offs,
                    &tile.vals,
                    b,
                    c,
                    tile.origin,
                    tile.spans,
                    out_rows,
                    0,
                    rank,
                    self.strip_width,
                    &mut scratch,
                );
            }
            Ok(())
        })?;

        if self.exec.is_checked() {
            let sets: Vec<WriteSet> = touched
                .into_iter()
                .enumerate()
                .map(|(a, rows)| WriteSet::new(a, bounds0[a]..bounds0[a + 1]).touch_all(rows))
                .collect();
            let violations = write_set_violations(dims[self.mode], &sets);
            RaceReport::check("STREAM", violations).map_err(StreamError::Race)?;
        }
        Ok(())
    }
}

/// Permutes a loaded tile into kernel axes and applies invariant 2: the
/// `(slice, k, j)` local entry order the BCOO layout stores. Runs on the
/// prefetch thread so the sort overlaps compute. `bounds` are the grid
/// boundaries per *original* axis; spans are bounds-derived so the
/// micro-kernel's gather heuristic matches the in-memory layout exactly.
fn prepare_tile(
    tile: SourceTile,
    perm: [usize; NMODES],
    bytes: u64,
    bounds: &[Vec<usize>; NMODES],
) -> KernelTile {
    let n = tile.nnz();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&e| {
        let l = tile.locals[e as usize];
        (l[perm[0]], l[perm[2]], l[perm[1]])
    });
    let mut offs = Vec::with_capacity(n);
    let mut vals = Vec::with_capacity(n);
    for &e in &order {
        let l = tile.locals[e as usize];
        offs.push([l[perm[0]], l[perm[1]], l[perm[2]]]);
        vals.push(tile.vals[e as usize]);
    }
    let mut origin = [0usize; NMODES];
    let mut spans = [0usize; NMODES];
    for ax in 0..NMODES {
        let orig_ax = perm[ax];
        let cell = tile.cell[orig_ax];
        origin[ax] = tile.origin[orig_ax];
        spans[ax] = bounds[orig_ax][cell + 1] - bounds[orig_ax][cell];
    }
    KernelTile {
        slice_cell: tile.cell[perm[0]],
        origin,
        spans,
        offs,
        vals,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MbKernel;
    use crate::kernel::MttkrpKernel;
    use crate::mttkrp::BcooKernel;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};
    use tenblock_tensor::{BcooSource, BcooTensor, CooSource, CooTensor};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 13 + c * 5 + m) % 23) as f64 - 11.0) * 0.05
                })
            })
            .collect()
    }

    /// Exact (not approximate) equality — the bit-for-bit contract.
    fn assert_bits_equal(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: element {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn streaming_matches_bcoo_bit_for_bit_every_mode() {
        let cfg = ClusteredConfig::new([60, 45, 30], 2_500);
        let x = clustered_tensor(&cfg, 5);
        let grid_orig = [4, 3, 2];
        let rank = 17; // not a multiple of the strip width
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let src = CooSource::new(&x, grid_orig);
        for mode in 0..NMODES {
            let perm = perm_for_mode(mode);
            let grid_kernel = [grid_orig[perm[0]], grid_orig[perm[1]], grid_orig[perm[2]]];
            for strip in [0, 8, 16] {
                let k = BcooKernel::new(&x, mode, grid_kernel, strip);
                let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
                k.mttkrp(&fs, &mut expect);
                let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
                StreamingMttkrp::new(&src, mode, strip)
                    .run(&fs, &mut got)
                    .unwrap();
                assert_bits_equal(&expect, &got, &format!("mode {mode} strip {strip}"));
            }
        }
    }

    #[test]
    fn streaming_matches_mb_bit_for_bit() {
        let x = uniform_tensor([48, 32, 24], 1_800, 31);
        let grid_orig = [3, 2, 2];
        let rank = 16;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let src = CooSource::new(&x, grid_orig);
        for mode in 0..NMODES {
            let perm = perm_for_mode(mode);
            let grid_kernel = [grid_orig[perm[0]], grid_orig[perm[1]], grid_orig[perm[2]]];
            let k = MbKernel::new(&x, mode, grid_kernel);
            let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut expect);
            // Whole-rank strips: the plain per-entry update order.
            let mut got = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&src, mode, 0)
                .run(&fs, &mut got)
                .unwrap();
            assert_bits_equal(&expect, &got, &format!("MB mode {mode}"));
        }
    }

    #[test]
    fn bcoo_source_streams_identically_to_coo_source() {
        let cfg = ClusteredConfig::new([40, 40, 40], 1_500);
        let x = clustered_tensor(&cfg, 9);
        let grid_orig = [2, 4, 2];
        let rank = 9;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        // BCOO layout built for mode 1 — the source must still serve
        // modes 0 and 2 correctly through the perm translation.
        let bcoo_grid = [grid_orig[1], grid_orig[2], grid_orig[0]];
        let bsrc = BcooSource::new(BcooTensor::from_coo(&x, 1, bcoo_grid));
        let csrc = CooSource::new(&x, grid_orig);
        assert_eq!(TensorSource::grid(&bsrc), grid_orig);
        for mode in 0..NMODES {
            let mut a = DenseMatrix::zeros(x.dims()[mode], rank);
            let mut b = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&csrc, mode, 16)
                .run(&fs, &mut a)
                .unwrap();
            StreamingMttkrp::new(&bsrc, mode, 16)
                .run(&fs, &mut b)
                .unwrap();
            assert_bits_equal(&a, &b, &format!("source kind, mode {mode}"));
        }
    }

    #[test]
    fn stats_count_tiles_and_bytes_per_pass() {
        let x = uniform_tensor([30, 30, 30], 900, 3);
        let src = CooSource::new(&x, [3, 3, 3]);
        let rank = 4;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let driver = StreamingMttkrp::new(&src, 0, 16);
        let mut out = DenseMatrix::zeros(30, rank);
        driver.run(&fs, &mut out).unwrap();
        driver.run(&fs, &mut out).unwrap();
        let snap = driver.stats().snapshot();
        assert_eq!(snap.tiles_loaded, 2 * src.n_tiles() as u64);
        assert_eq!(snap.bytes_streamed, 2 * src.total_tile_bytes());
    }

    #[test]
    fn checked_streaming_passes_on_healthy_sources() {
        let x = uniform_tensor([25, 20, 15], 700, 77);
        let src = CooSource::new(&x, [3, 2, 2]);
        let rank = 6;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..NMODES {
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            StreamingMttkrp::new(&src, mode, 16)
                .with_exec(ExecPolicy::checked())
                .run(&fs, &mut out)
                .unwrap();
        }
    }

    #[test]
    fn checked_streaming_refuses_rows_outside_the_band() {
        /// A source whose single tile claims cell 0 but decodes rows in
        /// the second band — the streamed analogue of a corrupted block
        /// table.
        struct LyingSource {
            inner: CooSource,
        }
        impl TensorSource for LyingSource {
            fn dims(&self) -> [usize; NMODES] {
                self.inner.dims()
            }
            fn nnz(&self) -> usize {
                self.inner.nnz()
            }
            fn grid(&self) -> [usize; NMODES] {
                self.inner.grid()
            }
            fn n_tiles(&self) -> usize {
                self.inner.n_tiles()
            }
            fn tile_cell(&self, i: usize) -> [usize; NMODES] {
                self.inner.tile_cell(i)
            }
            fn tile_nnz(&self, i: usize) -> usize {
                self.inner.tile_nnz(i)
            }
            fn load_tile(&self, i: usize) -> Result<SourceTile, BinError> {
                let mut t = self.inner.load_tile(i)?;
                if t.cell[0] == 0 {
                    // Shift the tile into the next band's rows without
                    // updating the cell claim.
                    t.origin[0] += self.dims()[0] / 2;
                }
                Ok(t)
            }
        }
        let x = uniform_tensor([16, 10, 10], 300, 5);
        let src = LyingSource {
            inner: CooSource::new(&x, [2, 1, 1]),
        };
        let rank = 3;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(16, rank);
        let err = StreamingMttkrp::new(&src, 0, 16)
            .with_exec(ExecPolicy::checked())
            .run(&fs, &mut out)
            .unwrap_err();
        assert!(matches!(err, StreamError::Race(_)), "got: {err}");
    }

    #[test]
    fn budget_grid_is_deterministic_and_respects_the_budget() {
        let dims = [200usize, 150, 90];
        let nnz = 50_000;
        for budget in [1u64 << 14, 1 << 17, 1 << 20, u64::MAX] {
            let grid = crate::tune::grid_for_tile_budget(dims, nnz, budget);
            assert_eq!(grid, crate::tune::grid_for_tile_budget(dims, nnz, budget));
            for ax in 0..NMODES {
                assert!(grid[ax] >= 1 && grid[ax] <= dims[ax]);
            }
            let cells = grid.iter().product::<usize>() as u64;
            let expected = (nnz as u64 * 20).div_ceil(cells);
            // Either the expected tile fits half the budget or the grid
            // saturated at one index per tile on every axis.
            assert!(
                expected <= (budget / 2).max(20) || grid == dims,
                "budget {budget}: grid {grid:?} expected tile {expected}"
            );
        }
        // Unconstrained budgets stream the whole tensor as one tile.
        assert_eq!(
            crate::tune::grid_for_tile_budget(dims, nnz, u64::MAX),
            [1, 1, 1]
        );
    }
}
