//! The multi-dimensional blocking (MB) kernel — Section V-A.
//!
//! Runs Algorithm 1 block by block over a [`BlockGrid`]. Within one
//! slice-axis block row `a`, blocks are visited with the `j`-axis (`b`)
//! outermost, so the rows of the expensive mode-2 factor block are reused
//! across the whole inner `c` sweep. Block rows write disjoint output rows
//! and are processed in parallel under rayon.

use super::{split_rows_by_bounds, BlockGrid};
use crate::checked::{block_row_write_sets, push_oracle};
use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use crate::mttkrp::process_block_plain;
use rayon::prelude::*;
use tenblock_check::{write_set_violations, RaceReport};
use tenblock_obs::KernelCounters;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Counters for a grid-blocked kernel: fibers are summed over blocks (the
/// traversal the blocked kernel actually performs).
pub(crate) fn grid_counters(grid: &BlockGrid, rank: usize, strips: u64) -> KernelCounters {
    let mut fibers = 0u64;
    for a in 0..grid.grid()[0] {
        for t in grid.row_blocks(a) {
            fibers += t.n_fibers() as u64;
        }
    }
    KernelCounters::fibered_model(grid.nnz() as u64, fibers, rank as u64)
        .with_blocks(grid.n_nonempty() as u64)
        .with_strips(strips)
}

/// Block traversal order within a slice-axis row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// `j` axis outermost (default): the mode-2 factor block — the most
    /// expensive structure per Section IV-B — is reused across the inner
    /// `k` sweep.
    #[default]
    BMajor,
    /// `k` axis outermost (ablation): reuses the mode-3 factor block
    /// instead.
    CMajor,
}

/// MB kernel for one mode.
pub struct MbKernel {
    mode: usize,
    grid: BlockGrid,
    exec: ExecPolicy,
    traversal: Traversal,
}

impl MbKernel {
    /// Partitions `coo` into `grid` blocks (kernel axes: slice, `j`, `k`)
    /// for the mode-`mode` MTTKRP.
    pub fn new(coo: &CooTensor, mode: usize, grid: [usize; NMODES]) -> Self {
        MbKernel {
            mode,
            grid: BlockGrid::new(coo, mode, grid),
            exec: ExecPolicy::serial(),
            traversal: Traversal::default(),
        }
    }

    /// Wraps an existing grid.
    pub fn from_grid(grid: BlockGrid) -> Self {
        MbKernel {
            mode: grid.perm()[0],
            grid,
            exec: ExecPolicy::serial(),
            traversal: Traversal::default(),
        }
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the block traversal order (ablation knob).
    pub fn with_traversal(mut self, traversal: Traversal) -> Self {
        self.traversal = traversal;
        self
    }

    /// The underlying grid.
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// Verifies the grid invariants (oracle) and, when parallel, the
    /// block-row write sets: each slice-axis block row's claim against the
    /// global rows stored in its blocks.
    fn verify(&self, out_rows: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        push_oracle(&mut violations, self.grid.validate());
        if self.exec.is_parallel() {
            let sets =
                block_row_write_sets(self.grid.bounds(0), |a| Box::new(self.grid.row_blocks(a)));
            violations.extend(write_set_violations(out_rows, &sets));
        }
        RaceReport::check("MB", violations)
    }
}

impl MttkrpKernel for MbKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let perm = self.grid.perm();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.grid.dims()[perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows()) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/MB");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.counters(&grid_counters(&self.grid, rank, 1));
        }
        out.fill_zero();

        let bounds0 = self.grid.bounds(0).to_vec();
        let chunks = split_rows_by_bounds(out.as_mut_slice(), &bounds0, rank);
        let work = |(a, (row0, rows)): (usize, (usize, &mut [f64]))| {
            let mut accum = vec![0.0; rank];
            let mut run = |t: &tenblock_tensor::SplattTensor| {
                process_block_plain(t, b, c, 0..t.n_slices(), rows, row0, &mut accum);
            };
            match self.traversal {
                Traversal::BMajor => self.grid.row_blocks(a).for_each(&mut run),
                Traversal::CMajor => self.grid.row_blocks_c_major(a).for_each(&mut run),
            }
        };
        if self.exec.is_parallel() {
            chunks.into_par_iter().enumerate().for_each(work);
        } else {
            chunks.into_iter().enumerate().for_each(work);
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "MB"
    }

    fn tensor_bytes(&self) -> usize {
        self.grid.tensor_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{dense_mttkrp, SplattKernel};
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 17 + c * 3 + m) % 19) as f64 - 9.0) * 0.07
                })
            })
            .collect()
    }

    #[test]
    fn matches_dense_reference_various_grids() {
        let x = uniform_tensor([13, 17, 11], 250, 77);
        let rank = 5;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let expect = dense_mttkrp(&x, &fs, mode);
            for grid in [[1, 1, 1], [2, 2, 2], [4, 1, 3], [1, 5, 1], [3, 3, 3]] {
                let k = MbKernel::new(&x, mode, grid);
                let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
                k.mttkrp(&fs, &mut out);
                assert!(
                    expect.approx_eq(&out, 1e-10),
                    "mode {mode} grid {grid:?} mismatch"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let cfg = ClusteredConfig::new([120, 90, 60], 4_000);
        let x = clustered_tensor(&cfg, 8);
        let rank = 9;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let k_seq = MbKernel::new(&x, 0, [4, 3, 2]);
        let k_par = MbKernel::new(&x, 0, [4, 3, 2]).with_exec(ExecPolicy::auto());
        let mut a = DenseMatrix::zeros(120, rank);
        let mut b = DenseMatrix::zeros(120, rank);
        k_seq.mttkrp(&fs, &mut a);
        k_par.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn traversal_orders_agree() {
        let x = uniform_tensor([30, 40, 50], 1_200, 3);
        let rank = 7;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let bmaj = MbKernel::new(&x, 0, [2, 3, 4]);
        let cmaj = MbKernel::new(&x, 0, [2, 3, 4]).with_traversal(Traversal::CMajor);
        let mut a = DenseMatrix::zeros(30, rank);
        let mut b = DenseMatrix::zeros(30, rank);
        bmaj.mttkrp(&fs, &mut a);
        cmaj.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn agrees_with_splatt_baseline() {
        let x = uniform_tensor([40, 50, 30], 1_500, 15);
        let rank = 12;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let base = SplattKernel::new(&x, 2);
        let mb = MbKernel::new(&x, 2, [3, 4, 5]);
        let mut a = DenseMatrix::zeros(30, rank);
        let mut b = DenseMatrix::zeros(30, rank);
        base.mttkrp(&fs, &mut a);
        mb.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-10));
    }
}
