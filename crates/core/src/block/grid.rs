//! The multi-dimensional blocking grid (Section V-A, Figure 3a).
//!
//! The tensor is partitioned into `N_A x N_B x N_C` axis-aligned blocks
//! (counts given in *kernel axes*: slice mode, `j` mode, `k` mode). Each
//! block's nonzeros are stored contiguously as a slice-compressed
//! [`SplattTensor`], so processing block `(a, b, c)` touches only the
//! factor-matrix row ranges of that block — the working set the paper wants
//! to fit in cache. The data reorganization cost is a single sort, "
//! negligible compared to the reordering methods" (Section V-A).

use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, Entry, SplattTensor, NMODES};

/// A tensor partitioned into a 3-D grid of SPLATT blocks.
pub struct BlockGrid {
    dims: [usize; NMODES],
    perm: [usize; NMODES],
    grid: [usize; NMODES],
    /// Per kernel axis, `grid[ax] + 1` uniform block boundaries.
    bounds: [Vec<usize>; NMODES],
    /// Blocks in `(a, b, c)` row-major order; empty blocks are `None`.
    blocks: Vec<Option<SplattTensor>>,
    nnz: usize,
}

/// Uniform boundaries splitting `dim` indices into `n` blocks:
/// block `t` covers `[t*dim/n, (t+1)*dim/n)`.
fn uniform_bounds(dim: usize, n: usize) -> Vec<usize> {
    (0..=n).map(|t| t * dim / n).collect()
}

/// The block that contains index `idx` under `bounds` (binary search; the
/// grids are tiny, so this is a handful of comparisons).
#[inline]
fn find_block(bounds: &[usize], idx: usize) -> usize {
    debug_assert!(bounds.last().is_some_and(|&end| idx < end));
    bounds.partition_point(|&b| b <= idx) - 1
}

impl BlockGrid {
    /// Partitions `coo` for the mode-`mode` MTTKRP into `grid` blocks per
    /// kernel axis (`grid = [1, 1, 1]` produces a single block equal to the
    /// unblocked tensor).
    ///
    /// # Panics
    /// Panics if any grid count is zero or exceeds the axis length
    /// (when the axis is non-empty).
    pub fn new(coo: &CooTensor, mode: usize, grid: [usize; NMODES]) -> Self {
        let perm = perm_for_mode(mode);
        let dims = coo.dims();
        for ax in 0..NMODES {
            assert!(grid[ax] > 0, "grid counts must be positive");
            assert!(
                grid[ax] <= dims[perm[ax]].max(1),
                "grid count {} exceeds axis length {}",
                grid[ax],
                dims[perm[ax]]
            );
        }
        let bounds = [
            uniform_bounds(dims[perm[0]], grid[0]),
            uniform_bounds(dims[perm[1]], grid[1]),
            uniform_bounds(dims[perm[2]], grid[2]),
        ];

        // Bucket entries by linear block id, then build each block.
        let (nb, nc) = (grid[1], grid[2]);
        let n_blocks = grid[0] * nb * nc;
        let mut tagged: Vec<(u32, Entry)> = coo
            .entries()
            .iter()
            .map(|e| {
                let a = find_block(&bounds[0], e.idx[perm[0]] as usize);
                let b = find_block(&bounds[1], e.idx[perm[1]] as usize);
                let c = find_block(&bounds[2], e.idx[perm[2]] as usize);
                (((a * nb + b) * nc + c) as u32, *e)
            })
            .collect();
        tagged
            .sort_unstable_by_key(|&(id, e)| (id, e.idx[perm[0]], e.idx[perm[2]], e.idx[perm[1]]));

        let mut blocks: Vec<Option<SplattTensor>> = Vec::with_capacity(n_blocks);
        let mut pos = 0;
        for id in 0..n_blocks as u32 {
            let start = pos;
            while pos < tagged.len() && tagged[pos].0 == id {
                pos += 1;
            }
            if pos == start {
                blocks.push(None);
            } else {
                let entries: Vec<Entry> = tagged[start..pos].iter().map(|&(_, e)| e).collect();
                blocks.push(Some(SplattTensor::from_entries_compressed(
                    dims, perm, entries,
                )));
            }
        }
        debug_assert_eq!(pos, tagged.len());

        BlockGrid {
            dims,
            perm,
            grid,
            bounds,
            blocks,
            nnz: coo.nnz(),
        }
    }

    /// Global tensor dimensions (original mode order).
    pub fn dims(&self) -> [usize; NMODES] {
        self.dims
    }

    /// The kernel orientation.
    pub fn perm(&self) -> [usize; NMODES] {
        self.perm
    }

    /// Block counts per kernel axis.
    pub fn grid(&self) -> [usize; NMODES] {
        self.grid
    }

    /// Total nonzeros across all blocks.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block boundaries along kernel axis `ax`.
    pub fn bounds(&self, ax: usize) -> &[usize] {
        &self.bounds[ax]
    }

    /// The block at grid coordinates `(a, b, c)`, or `None` if empty.
    pub fn block(&self, a: usize, b: usize, c: usize) -> Option<&SplattTensor> {
        self.blocks[(a * self.grid[1] + b) * self.grid[2] + c].as_ref()
    }

    /// Iterates the non-empty blocks of slice-axis row `a`, in `(b, c)`
    /// row-major order — `b` outermost so the expensive mode-2 factor block
    /// stays hot across the inner `c` sweep (Section IV conclusion 2).
    pub fn row_blocks(&self, a: usize) -> impl Iterator<Item = &SplattTensor> {
        let (nb, nc) = (self.grid[1], self.grid[2]);
        self.blocks[a * nb * nc..(a + 1) * nb * nc]
            .iter()
            .filter_map(|b| b.as_ref())
    }

    /// Iterates the non-empty blocks of row `a` with the `k` axis (`c`)
    /// outermost instead — the ablation counterpart of [`Self::row_blocks`]
    /// (reuses the mode-3 factor block instead of the mode-2 one).
    pub fn row_blocks_c_major(&self, a: usize) -> impl Iterator<Item = &SplattTensor> {
        let (nb, nc) = (self.grid[1], self.grid[2]);
        (0..nc).flat_map(move |c| {
            (0..nb).filter_map(move |b| self.blocks[(a * nb + b) * nc + c].as_ref())
        })
    }

    /// Number of non-empty blocks.
    pub fn n_nonempty(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// The paper's redundant-access counts (Section V-A): how many times
    /// each factor matrix is traversed, `[A: N_B*N_C, B: N_A*N_C,
    /// C: N_A*N_B]` in kernel-axis order.
    pub fn redundant_accesses(&self) -> [usize; NMODES] {
        [
            self.grid[1] * self.grid[2],
            self.grid[0] * self.grid[2],
            self.grid[0] * self.grid[1],
        ]
    }

    /// Total bytes of all block representations.
    pub fn tensor_bytes(&self) -> usize {
        self.blocks
            .iter()
            .filter_map(|b| b.as_ref())
            .map(|b| b.actual_bytes())
            .sum()
    }

    /// Runs the MB blocking oracle over this grid: the per-axis bounds must
    /// tile each kernel axis, every stored nonzero must sit inside its
    /// block's box, and the blocks must jointly hold exactly [`Self::nnz`]
    /// nonzeros. Independent of the construction code — it re-derives
    /// everything from the stored blocks.
    pub fn validate(&self) -> Result<(), tenblock_check::OracleError> {
        let dims = [
            self.dims[self.perm[0]],
            self.dims[self.perm[1]],
            self.dims[self.perm[2]],
        ];
        let mut blocks = Vec::new();
        for a in 0..self.grid[0] {
            for b in 0..self.grid[1] {
                for c in 0..self.grid[2] {
                    if let Some(t) = self.block(a, b, c) {
                        blocks.push(tenblock_check::GridBlock {
                            coords: [a, b, c],
                            entries: t
                                .to_entries()
                                .iter()
                                .map(|e| {
                                    [
                                        e.idx[self.perm[0]] as usize,
                                        e.idx[self.perm[1]] as usize,
                                        e.idx[self.perm[2]] as usize,
                                    ]
                                })
                                .collect(),
                        });
                    }
                }
            }
        }
        tenblock_check::check_grid_blocks(
            dims,
            [&self.bounds[0], &self.bounds[1], &self.bounds[2]],
            self.nnz,
            &blocks,
        )
    }

    /// Test hook: moves the stored boundary `idx` of kernel axis `ax` by
    /// `delta` *without* re-bucketing the blocks — the canonical seeded bug
    /// for exercising checked execution (an off-by-one block boundary whose
    /// blocks still contain the rows of the old partition).
    pub fn shift_bound_for_test(&mut self, ax: usize, idx: usize, delta: isize) {
        let b = &mut self.bounds[ax][idx];
        *b = b.checked_add_signed(delta).unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn uniform_bounds_cover_exactly() {
        let b = uniform_bounds(10, 3);
        assert_eq!(b, vec![0, 3, 6, 10]);
        for i in 0..10 {
            let t = find_block(&b, i);
            assert!(b[t] <= i && i < b[t + 1]);
        }
    }

    #[test]
    fn partition_is_exact_and_disjoint() {
        let x = uniform_tensor([20, 30, 40], 800, 5);
        let g = BlockGrid::new(&x, 0, [3, 4, 2]);
        assert_eq!(g.nnz(), 800);
        let mut collected: Vec<_> = (0..3)
            .flat_map(|a| g.row_blocks(a).flat_map(|t| t.to_entries()))
            .collect();
        assert_eq!(collected.len(), 800);
        collected.sort_unstable_by_key(|e| e.idx);
        let mut orig = x.entries().to_vec();
        orig.sort_unstable_by_key(|e| e.idx);
        assert_eq!(collected, orig);
    }

    #[test]
    fn blocks_respect_boundaries() {
        let x = uniform_tensor([12, 12, 12], 300, 7);
        let g = BlockGrid::new(&x, 1, [2, 3, 2]); // mode-2 kernel: perm [1,2,0]
        let perm = g.perm();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    if let Some(t) = g.block(a, b, c) {
                        for e in t.to_entries() {
                            let ia = e.idx[perm[0]] as usize;
                            let ib = e.idx[perm[1]] as usize;
                            let ic = e.idx[perm[2]] as usize;
                            assert!(g.bounds(0)[a] <= ia && ia < g.bounds(0)[a + 1]);
                            assert!(g.bounds(1)[b] <= ib && ib < g.bounds(1)[b + 1]);
                            assert!(g.bounds(2)[c] <= ic && ic < g.bounds(2)[c + 1]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_grid_is_whole_tensor() {
        let x = uniform_tensor([8, 8, 8], 100, 2);
        let g = BlockGrid::new(&x, 0, [1, 1, 1]);
        assert_eq!(g.n_nonempty(), 1);
        assert_eq!(g.block(0, 0, 0).unwrap().nnz(), 100);
        assert_eq!(g.redundant_accesses(), [1, 1, 1]);
    }

    #[test]
    fn redundant_access_formula() {
        let x = uniform_tensor([10, 10, 10], 50, 3);
        let g = BlockGrid::new(&x, 0, [2, 3, 5]);
        assert_eq!(g.redundant_accesses(), [15, 10, 6]);
    }

    #[test]
    fn empty_blocks_are_none() {
        // nonzeros only in slice 0 -> second slice-row of blocks is empty
        let x = CooTensor::from_triples([4, 4, 4], &[0, 0], &[1, 2], &[3, 0], &[1.0, 1.0]);
        let g = BlockGrid::new(&x, 0, [2, 1, 1]);
        assert!(g.block(0, 0, 0).is_some());
        assert!(g.block(1, 0, 0).is_none());
        assert_eq!(g.n_nonempty(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds axis length")]
    fn oversized_grid_panics() {
        let x = uniform_tensor([4, 4, 4], 10, 1);
        BlockGrid::new(&x, 0, [5, 1, 1]);
    }

    #[test]
    fn validate_passes_then_catches_a_shifted_boundary() {
        let x = uniform_tensor([10, 8, 8], 400, 11);
        for mode in 0..3 {
            assert!(BlockGrid::new(&x, mode, [2, 2, 2]).validate().is_ok());
        }
        let mut g = BlockGrid::new(&x, 0, [2, 2, 2]);
        g.shift_bound_for_test(0, 1, 1);
        let err = g.validate().unwrap_err();
        assert_eq!(err.check, "grid-blocks");
    }
}
