//! The rank-blocking (RankB) kernel — Section V-B, Algorithm 2.
//!
//! The factor matrices are divided along the rank into strips of
//! `strip_width` columns. The whole tensor is traversed once per strip;
//! within a strip, fibers are processed with 16-wide register accumulators
//! ([`crate::mttkrp::REG_BLOCK`]), eliminating the heap accumulator array of
//! Algorithm 1 and with it the load-unit pressure identified by the
//! pressure-point analysis (Section IV-B, type 3).
//!
//! With [`RankbLayout::Strip`], the factor matrices are first re-laid-out as
//! stacked strips (the paper's `(I*N_RankB) x BS_RankB` arrangement) so each
//! pass reads contiguous memory.

use super::split_rows_by_bounds;
use crate::checked::{effective_strip_plan, push_oracle, slice_chunk_write_sets};
use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use crate::mttkrp::{process_block_rankb, DenseWindow, RowWindow, StripWindow, REG_BLOCK};
use rayon::prelude::*;
use tenblock_check::{check_strip_plan, write_set_violations, RaceReport};
use tenblock_obs::KernelCounters;
use tenblock_tensor::{CooTensor, DenseMatrix, SplattTensor, StripMatrix, NMODES};

/// Factor-matrix layout used by the rank-blocked pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankbLayout {
    /// Read strips directly out of the row-major factor matrices.
    Plain,
    /// Re-lay the factors out as stacked strips before the pass
    /// (Section V-B's "small rearrangement of the factor matrix").
    Strip,
}

/// RankB kernel for one mode.
pub struct RankBKernel {
    mode: usize,
    t: SplattTensor,
    strip_width: usize,
    layout: RankbLayout,
    exec: ExecPolicy,
}

impl RankBKernel {
    /// Builds the kernel with the given strip width (in columns). The paper
    /// selects widths in cache-line (16-double) increments; any positive
    /// width is accepted and remainders are handled.
    pub fn new(coo: &CooTensor, mode: usize, strip_width: usize) -> Self {
        assert!(strip_width > 0, "strip width must be positive");
        RankBKernel {
            mode,
            t: SplattTensor::for_mode(coo, mode),
            strip_width,
            layout: RankbLayout::Plain,
            exec: ExecPolicy::serial(),
        }
    }

    /// Selects the factor layout for the pass.
    pub fn with_layout(mut self, layout: RankbLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The configured strip width.
    pub fn strip_width(&self) -> usize {
        self.strip_width
    }

    /// Verifies the strip plan against the RankB oracle and, when parallel,
    /// the per-pass slice-chunk write sets.
    fn verify(&self, out_rows: usize, rank: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        push_oracle(
            &mut violations,
            check_strip_plan(
                rank,
                &effective_strip_plan(rank, self.strip_width),
                REG_BLOCK,
            ),
        );
        if self.exec.is_parallel() && self.t.n_slices() > 0 {
            let chunk = self.exec.chunk_size(self.t.n_slices());
            let sets = slice_chunk_write_sets(&self.t, out_rows, chunk);
            violations.extend(write_set_violations(out_rows, &sets));
        }
        RaceReport::check("RankB", violations)
    }
}

/// One strip pass over a full SPLATT tensor: parallel over slice chunks.
pub(crate) fn rankb_pass<B: RowWindow, C: RowWindow>(
    t: &SplattTensor,
    b: &B,
    c: &C,
    out: &mut DenseMatrix,
    col0: usize,
    width: usize,
    exec: &ExecPolicy,
) {
    let rank = out.cols();
    let n_slices = t.n_slices();
    if n_slices == 0 {
        return;
    }
    if exec.is_parallel() {
        let chunk = exec.chunk_size(n_slices);
        let mut bounds: Vec<usize> = (0..n_slices).step_by(chunk).collect();
        bounds.push(n_slices);
        let chunks = split_rows_by_bounds(out.as_mut_slice(), &bounds, rank);
        chunks.into_par_iter().for_each(|(lo, rows)| {
            let hi = lo + rows.len() / rank;
            process_block_rankb(t, b, c, lo..hi, rows, lo, rank, col0, width);
        });
    } else {
        process_block_rankb(
            t,
            b,
            c,
            0..n_slices,
            out.as_mut_slice(),
            0,
            rank,
            col0,
            width,
        );
    }
}

impl MttkrpKernel for RankBKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let perm = self.t.perm();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.t.dims()[perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows(), rank) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/RankB");
        if span.active() {
            let strips = rank.div_ceil(self.strip_width.min(rank.max(1)));
            span.annotate_num("mode", self.mode as f64);
            span.counters(
                &KernelCounters::fibered_model(
                    self.t.nnz() as u64,
                    self.t.n_fibers() as u64,
                    rank as u64,
                )
                .with_strips(strips as u64),
            );
        }
        out.fill_zero();

        match self.layout {
            RankbLayout::Plain => {
                let mut col0 = 0;
                while col0 < rank {
                    let width = self.strip_width.min(rank - col0);
                    let bw = DenseWindow::new(b, col0, width);
                    let cw = DenseWindow::new(c, col0, width);
                    rankb_pass(&self.t, &bw, &cw, out, col0, width, &self.exec);
                    col0 += width;
                }
            }
            RankbLayout::Strip => {
                let bs = StripMatrix::from_dense(b, self.strip_width);
                let cs = StripMatrix::from_dense(c, self.strip_width);
                for s in 0..bs.n_strips() {
                    let col0 = bs.col_begin(s);
                    let width = bs.width_of(s);
                    let bw = StripWindow::new(&bs, s);
                    let cw = StripWindow::new(&cs, s);
                    rankb_pass(&self.t, &bw, &cw, out, col0, width, &self.exec);
                }
            }
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows(), out.cols())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "RankB"
    }

    fn tensor_bytes(&self) -> usize {
        self.t.actual_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{dense_mttkrp, SplattKernel};
    use tenblock_tensor::gen::uniform_tensor;

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 29 + c * 5 + m) % 13) as f64 - 6.0) * 0.11
                })
            })
            .collect()
    }

    #[test]
    fn matches_dense_reference_various_widths() {
        let x = uniform_tensor([14, 10, 12], 300, 55);
        // ranks exercising: exact multiple of 16, sub-16, odd remainder
        for rank in [4usize, 16, 32, 37] {
            let factors = factors_for(&x, rank);
            let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
            for mode in 0..3 {
                let expect = dense_mttkrp(&x, &fs, mode);
                for width in [1usize, 3, 16, 32, 100] {
                    let k = RankBKernel::new(&x, mode, width);
                    let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
                    k.mttkrp(&fs, &mut out);
                    assert!(
                        expect.approx_eq(&out, 1e-10),
                        "rank {rank} mode {mode} width {width} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn strip_layout_equals_plain() {
        let x = uniform_tensor([30, 25, 20], 900, 4);
        let rank = 48;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let plain = RankBKernel::new(&x, 0, 16);
        let strip = RankBKernel::new(&x, 0, 16).with_layout(RankbLayout::Strip);
        let mut a = DenseMatrix::zeros(30, rank);
        let mut b = DenseMatrix::zeros(30, rank);
        plain.mttkrp(&fs, &mut a);
        strip.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn parallel_equals_sequential() {
        let x = uniform_tensor([100, 40, 40], 3_000, 6);
        let rank = 24;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let seq = RankBKernel::new(&x, 0, 16);
        let par = RankBKernel::new(&x, 0, 16).with_exec(ExecPolicy::auto());
        let mut a = DenseMatrix::zeros(100, rank);
        let mut b = DenseMatrix::zeros(100, rank);
        seq.mttkrp(&fs, &mut a);
        par.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn agrees_with_splatt_baseline() {
        let x = uniform_tensor([22, 33, 44], 700, 13);
        let rank = 20;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let base = SplattKernel::new(&x, 1);
        let rb = RankBKernel::new(&x, 1, 8);
        let mut a = DenseMatrix::zeros(33, rank);
        let mut b = DenseMatrix::zeros(33, rank);
        base.mttkrp(&fs, &mut a);
        rb.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-10));
    }
}
