//! The combined MB + RankB kernel — Section V-B, Figure 3b.
//!
//! The rank-strip loop is outermost (as in Algorithm 2); inside a strip the
//! blocked grid is traversed exactly like the MB kernel but with the
//! register-blocked inner loop. Within a strip, the working set shrinks by
//! both the grid factor *and* the strip factor, which is why the paper finds
//! the combination more effective than either technique alone.

use super::mb::grid_counters;
use super::{split_rows_by_bounds, BlockGrid};
use crate::checked::{block_row_write_sets, effective_strip_plan, push_oracle};
use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use crate::mttkrp::{process_block_rankb, DenseWindow, RowWindow, StripWindow, REG_BLOCK};
use rayon::prelude::*;
use tenblock_check::{check_strip_plan, write_set_violations, RaceReport};
use tenblock_tensor::{CooTensor, DenseMatrix, StripMatrix, NMODES};

use super::rankb::RankbLayout;

/// Combined MB + RankB kernel for one mode.
pub struct MbRankBKernel {
    mode: usize,
    grid: BlockGrid,
    strip_width: usize,
    layout: RankbLayout,
    exec: ExecPolicy,
}

impl MbRankBKernel {
    /// Partitions `coo` into `grid` blocks and configures rank strips of
    /// `strip_width` columns.
    pub fn new(coo: &CooTensor, mode: usize, grid: [usize; NMODES], strip_width: usize) -> Self {
        assert!(strip_width > 0, "strip width must be positive");
        MbRankBKernel {
            mode,
            grid: BlockGrid::new(coo, mode, grid),
            strip_width,
            layout: RankbLayout::Plain,
            exec: ExecPolicy::serial(),
        }
    }

    /// Selects the factor layout for the passes.
    pub fn with_layout(mut self, layout: RankbLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The underlying grid.
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// The configured strip width.
    pub fn strip_width(&self) -> usize {
        self.strip_width
    }

    /// Verifies the grid and strip-plan oracles and, when parallel, the
    /// block-row write sets (one claim per slice-axis block row, touched
    /// rows taken from the blocks' stored global rows).
    fn verify(&self, out_rows: usize, rank: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        push_oracle(&mut violations, self.grid.validate());
        push_oracle(
            &mut violations,
            check_strip_plan(
                rank,
                &effective_strip_plan(rank, self.strip_width),
                REG_BLOCK,
            ),
        );
        if self.exec.is_parallel() {
            let sets =
                block_row_write_sets(self.grid.bounds(0), |a| Box::new(self.grid.row_blocks(a)));
            violations.extend(write_set_violations(out_rows, &sets));
        }
        RaceReport::check("MB+RankB", violations)
    }

    /// One strip pass over the whole grid.
    fn strip_pass<B: RowWindow, C: RowWindow>(
        &self,
        b: &B,
        c: &C,
        out: &mut DenseMatrix,
        col0: usize,
        width: usize,
    ) {
        let rank = out.cols();
        let bounds0 = self.grid.bounds(0).to_vec();
        let chunks = split_rows_by_bounds(out.as_mut_slice(), &bounds0, rank);
        let work = |(a, (row0, rows)): (usize, (usize, &mut [f64]))| {
            for t in self.grid.row_blocks(a) {
                process_block_rankb(t, b, c, 0..t.n_slices(), rows, row0, rank, col0, width);
            }
        };
        if self.exec.is_parallel() {
            chunks.into_par_iter().enumerate().for_each(work);
        } else {
            chunks.into_iter().enumerate().for_each(work);
        }
    }
}

impl MttkrpKernel for MbRankBKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let perm = self.grid.perm();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.grid.dims()[perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows(), rank) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/MB+RankB");
        if span.active() {
            let strips = rank.div_ceil(self.strip_width.min(rank.max(1)));
            span.annotate_num("mode", self.mode as f64);
            span.counters(&grid_counters(&self.grid, rank, strips as u64));
        }
        out.fill_zero();

        match self.layout {
            RankbLayout::Plain => {
                let mut col0 = 0;
                while col0 < rank {
                    let width = self.strip_width.min(rank - col0);
                    let bw = DenseWindow::new(b, col0, width);
                    let cw = DenseWindow::new(c, col0, width);
                    self.strip_pass(&bw, &cw, out, col0, width);
                    col0 += width;
                }
            }
            RankbLayout::Strip => {
                let bs = StripMatrix::from_dense(b, self.strip_width);
                let cs = StripMatrix::from_dense(c, self.strip_width);
                for s in 0..bs.n_strips() {
                    let bw = StripWindow::new(&bs, s);
                    let cw = StripWindow::new(&cs, s);
                    self.strip_pass(&bw, &cw, out, bs.col_begin(s), bs.width_of(s));
                }
            }
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows(), out.cols())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "MB+RankB"
    }

    fn tensor_bytes(&self) -> usize {
        self.grid.tensor_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::{dense_mttkrp, SplattKernel};
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 7 + c * 11 + m) % 17) as f64 - 8.0) * 0.09
                })
            })
            .collect()
    }

    #[test]
    fn matches_dense_reference() {
        let x = uniform_tensor([12, 15, 9], 260, 31);
        for rank in [8usize, 19, 32] {
            let factors = factors_for(&x, rank);
            let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
            for mode in 0..3 {
                let expect = dense_mttkrp(&x, &fs, mode);
                for (grid, width) in [([2, 2, 2], 16), ([3, 1, 2], 5), ([1, 4, 3], 16)] {
                    let k = MbRankBKernel::new(&x, mode, grid, width);
                    let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
                    k.mttkrp(&fs, &mut out);
                    assert!(
                        expect.approx_eq(&out, 1e-10),
                        "rank {rank} mode {mode} grid {grid:?} width {width} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_and_strip_layout_agree_with_baseline() {
        let cfg = ClusteredConfig::new([150, 120, 80], 6_000);
        let x = clustered_tensor(&cfg, 12);
        let rank = 40;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let base = SplattKernel::new(&x, 0);
        let mut expect = DenseMatrix::zeros(150, rank);
        base.mttkrp(&fs, &mut expect);

        for layout in [RankbLayout::Plain, RankbLayout::Strip] {
            for parallel in [false, true] {
                let exec = if parallel {
                    ExecPolicy::auto()
                } else {
                    ExecPolicy::serial()
                };
                let k = MbRankBKernel::new(&x, 0, [4, 2, 3], 16)
                    .with_layout(layout)
                    .with_exec(exec);
                let mut out = DenseMatrix::zeros(150, rank);
                k.mttkrp(&fs, &mut out);
                assert!(
                    expect.approx_eq(&out, 1e-10),
                    "layout {layout:?} parallel {parallel} mismatch"
                );
            }
        }
    }
}
