//! Blocking optimizations (Section V of the paper): the multi-dimensional
//! blocking grid, the MB kernel, the rank-blocked kernel, and their
//! combination.

mod combined;
mod grid;
mod mb;
mod rankb;

pub use combined::MbRankBKernel;
pub use grid::BlockGrid;
pub use mb::{MbKernel, Traversal};
pub use rankb::{RankBKernel, RankbLayout};

/// Splits a row-major matrix buffer into disjoint mutable chunks at the
/// given row `bounds` (length `n + 1`, ascending, covering all rows).
/// Returns `(first_row, rows_data)` per chunk — the safe foundation for
/// handing block rows to rayon workers.
pub(crate) fn split_rows_by_bounds<'a>(
    mut data: &'a mut [f64],
    bounds: &[usize],
    rank: usize,
) -> Vec<(usize, &'a mut [f64])> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    for w in bounds.windows(2) {
        let rows = w[1] - w[0];
        let (head, tail) = data.split_at_mut(rows * rank);
        out.push((w[0], head));
        data = tail;
    }
    debug_assert!(data.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_rows_disjointly() {
        let mut data = vec![0.0; 10 * 3];
        let chunks = split_rows_by_bounds(&mut data, &[0, 4, 4, 7, 10], 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks[0].1.len(), 12);
        assert_eq!(chunks[1].0, 4);
        assert_eq!(chunks[1].1.len(), 0); // empty block row is fine
        assert_eq!(chunks[2].0, 4);
        assert_eq!(chunks[2].1.len(), 9);
        assert_eq!(chunks[3].0, 7);
        assert_eq!(chunks[3].1.len(), 9);
    }
}
