//! # tenblock-core
//!
//! The paper's primary contribution: sparse MTTKRP kernels with the blocking
//! optimizations of *Choi et al., IPDPS 2018* — multi-dimensional blocking
//! (MB, Section V-A), rank blocking with register blocking (RankB,
//! Section V-B / Algorithm 2), their combination, and the block-size
//! selection heuristic (Section V-C).
//!
//! ## Kernel zoo
//!
//! | Kernel | Paper section | Type |
//! |---|---|---|
//! | [`mttkrp::CooKernel`] | III-C1 | coordinate-format reference |
//! | [`mttkrp::SplattKernel`] | Algorithm 1 | state-of-the-art baseline |
//! | [`block::MbKernel`] | V-A | multi-dimensional blocking |
//! | [`block::RankBKernel`] | V-B / Algorithm 2 | rank + register blocking |
//! | [`block::MbRankBKernel`] | V-B, Fig. 3b | MB + RankB combined |
//!
//! All kernels implement [`MttkrpKernel`] and produce the same mathematical
//! result (up to floating-point reassociation); the property-test suite
//! enforces mutual agreement against a dense reference.
//!
//! ## Quick example
//!
//! ```
//! use tenblock_tensor::{gen::uniform_tensor, DenseMatrix};
//! use tenblock_core::{MttkrpKernel, mttkrp::SplattKernel, block::MbRankBKernel};
//!
//! let x = uniform_tensor([60, 50, 40], 2_000, 7);
//! let rank = 24;
//! let factors: Vec<DenseMatrix> = x
//!     .dims()
//!     .iter()
//!     .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 31 + c) % 7) as f64 * 0.25))
//!     .collect();
//! let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
//!
//! let baseline = SplattKernel::new(&x, 0);
//! let blocked = MbRankBKernel::new(&x, 0, [2, 2, 2], 16);
//! let mut a0 = DenseMatrix::zeros(x.dims()[0], rank);
//! let mut a1 = DenseMatrix::zeros(x.dims()[0], rank);
//! baseline.mttkrp(&fs, &mut a0);
//! blocked.mttkrp(&fs, &mut a1);
//! assert!(a0.approx_eq(&a1, 1e-10));
//! ```

// Index loops are the clearer idiom for the numeric kernels here.
#![allow(clippy::needless_range_loop)]

pub mod block;
mod checked;
pub mod exec;
pub mod kernel;
pub mod mttkrp;
pub mod stream;
pub mod timing;
pub mod tune;

pub use exec::{ExecPolicy, Threads};
pub use kernel::{
    build_kernel, try_build_kernel, KernelConfig, KernelError, KernelKind, MttkrpKernel,
};
pub use stream::{StreamError, StreamingMttkrp};
pub use tune::{try_tune, tune, TuneError, TuneOptions, TuneResult};

// Re-export the observability vocabulary so downstream crates don't need a
// direct tenblock-obs dependency to attach a recorder.
pub use tenblock_obs as obs;

// Re-export the correctness vocabulary for the same reason: callers of
// `mttkrp_checked` handle `RaceReport` without a tenblock-check dependency.
pub use tenblock_check as check;
pub use tenblock_check::RaceReport;
