//! Bridges from kernel internals to the `tenblock-check` vocabulary.
//!
//! Each kernel's checked path ([`crate::MttkrpKernel::mttkrp_checked`], or
//! `mttkrp` under [`crate::Threads::Checked`]) declares the output-row
//! footprint of every parallel task as a [`WriteSet`]: the contiguous range
//! it *owns* (from the partition arithmetic) and the rows it will actually
//! *touch* (from the tensor data — slice ids, block contents, root fids).
//! The builders here mirror each kernel's partitioning formula exactly, so
//! a drifted boundary in the real structures shows up as a write-set
//! violation before any task runs.

use tenblock_check::{Violation, WriteSet};
use tenblock_tensor::{BcooTensor, CsfTensor, SplattTensor};

/// Write sets for output rows handed out `chunk` rows at a time over a
/// SPLATT tensor — the partitioning of the SPLATT kernel's
/// `par_chunks_mut(chunk * rank)` and the RankB pass's stepped bounds.
/// Task `t` owns rows `[t*chunk, (t+1)*chunk)` (clamped) and touches the
/// global row of every slice in the same index window.
pub(crate) fn slice_chunk_write_sets(
    t: &SplattTensor,
    out_rows: usize,
    chunk: usize,
) -> Vec<WriteSet> {
    let n_slices = t.n_slices();
    let mut sets = Vec::new();
    let mut lo = 0usize;
    let mut task = 0usize;
    while lo < out_rows {
        let hi = (lo + chunk).min(out_rows);
        let s_lo = lo.min(n_slices);
        let s_hi = (lo + chunk).min(n_slices);
        sets.push(WriteSet::new(task, lo..hi).touch_all((s_lo..s_hi).map(|s| t.slice_global(s))));
        lo = hi;
        task += 1;
    }
    sets
}

/// Write sets for a blocked kernel parallel over slice-axis block rows:
/// task `a` owns `bounds0[a]..bounds0[a+1]` and touches the global row of
/// every slice in every block of row `a` (the compressed blocks store true
/// row ids, so this cross-checks the grid assignment against the claim).
pub(crate) fn block_row_write_sets<'a>(
    bounds0: &[usize],
    row_blocks: impl Fn(usize) -> Box<dyn Iterator<Item = &'a SplattTensor> + 'a>,
) -> Vec<WriteSet> {
    let mut sets = Vec::new();
    for (a, w) in bounds0.windows(2).enumerate() {
        let mut ws = WriteSet::new(a, w[0]..w[1]);
        for t in row_blocks(a) {
            ws = ws.touch_all((0..t.n_slices()).map(|s| t.slice_global(s)));
        }
        sets.push(ws);
    }
    sets
}

/// Write sets for the BCOO kernel, parallel over slice-axis block rows:
/// task `a` owns `bounds0[a]..bounds0[a+1]` and touches the global output
/// row of every nonzero in every block of row `a`. Touches decode as
/// `block origin + stored local offset` — independent of the bounds
/// arithmetic — so a drifted boundary shows up as an overlap against the
/// neighboring task's claim.
pub(crate) fn bcoo_row_write_sets(t: &BcooTensor) -> Vec<WriteSet> {
    let bounds0 = t.bounds(0);
    let mut sets = Vec::new();
    for (a, w) in bounds0.windows(2).enumerate() {
        let mut ws = WriteSet::new(a, w[0]..w[1]);
        for i in t.row_blocks(a) {
            ws = ws.touch_all(t.block_slice_rows(i));
        }
        sets.push(ws);
    }
    sets
}

/// Write sets for the CSF strip pass, which splits the output buffer at the
/// first root fid of each root chunk. The skip regions (rows with no root)
/// are never written; they are folded into the preceding task's claim so
/// the claims tile the output exactly as the buffer splits do.
pub(crate) fn csf_root_write_sets(t: &CsfTensor, out_rows: usize, chunk: usize) -> Vec<WriteSet> {
    let n_roots = t.n_nodes(0);
    if n_roots == 0 {
        return vec![WriteSet::new(0, 0..out_rows)];
    }
    let starts: Vec<usize> = (0..n_roots).step_by(chunk).collect();
    let mut sets = Vec::new();
    let mut prev_end = 0usize;
    for (ci, &lo) in starts.iter().enumerate() {
        let hi = (lo + chunk).min(n_roots);
        let row_end = if ci + 1 < starts.len() {
            t.fid(0, starts[ci + 1]) as usize
        } else {
            out_rows
        };
        sets.push(
            WriteSet::new(ci, prev_end..row_end).touch_all((lo..hi).map(|r| t.fid(0, r) as usize)),
        );
        prev_end = row_end;
    }
    sets
}

/// The effective `(col0, width)` strip plan a rank-blocked kernel executes
/// for `rank` columns at `strip_width` (a width of `usize::MAX` means a
/// single full-rank strip, as in the unblocked CSF path).
pub(crate) fn effective_strip_plan(rank: usize, strip_width: usize) -> Vec<(usize, usize)> {
    let mut plan = Vec::new();
    let mut col0 = 0usize;
    while col0 < rank {
        let width = strip_width.min(rank - col0);
        plan.push((col0, width));
        col0 += width;
    }
    plan
}

/// Folds an oracle failure into the violation list as an
/// [`Violation::Invariant`].
pub(crate) fn push_oracle(
    violations: &mut Vec<Violation>,
    result: Result<(), tenblock_check::OracleError>,
) {
    if let Err(e) = result {
        violations.push(Violation::Invariant {
            detail: e.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;
    use tenblock_tensor::NdCooTensor;

    #[test]
    fn slice_chunks_tile_and_touch_identity_for_uncompressed() {
        let x = uniform_tensor([10, 6, 6], 100, 3);
        let t = SplattTensor::for_mode(&x, 0);
        let sets = slice_chunk_write_sets(&t, 10, 4);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].owned, 0..4);
        assert_eq!(sets[2].owned, 8..10);
        assert!(tenblock_check::check_write_sets("SPLATT", 10, &sets).is_ok());
    }

    #[test]
    fn csf_roots_fold_skip_regions_into_claims() {
        // Rows 0 and 7 only: the claims must still tile 0..10.
        let x = NdCooTensor::from_coo3(&tenblock_tensor::CooTensor::from_triples(
            [10, 3, 3],
            &[0, 7],
            &[1, 2],
            &[0, 1],
            &[1.0, 2.0],
        ));
        let t = CsfTensor::for_mode(&x, 0);
        let sets = csf_root_write_sets(&t, 10, 1);
        assert!(tenblock_check::check_write_sets("CSF", 10, &sets).is_ok());
    }

    #[test]
    fn strip_plans_pass_the_oracle() {
        for (rank, width) in [(37, 16), (8, 16), (32, 1), (24, usize::MAX), (0, 16)] {
            let plan = effective_strip_plan(rank, width);
            assert!(
                tenblock_check::check_strip_plan(rank, &plan, crate::mttkrp::REG_BLOCK).is_ok(),
                "rank {rank} width {width}"
            );
        }
    }
}
