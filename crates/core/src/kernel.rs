//! The [`MttkrpKernel`] trait and the kernel registry.

use crate::block::{MbKernel, MbRankBKernel, RankBKernel};
use crate::exec::ExecPolicy;
use crate::mttkrp::{BcooKernel, CooKernel, Csf3Kernel, SplattKernel};
use tenblock_check::RaceReport;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// A prepared MTTKRP kernel for one mode of one tensor.
///
/// Construction may reorganize the tensor (sorting, blocking); the
/// [`MttkrpKernel::mttkrp`] call itself only reads the factor matrices and
/// writes the output. This split matches CPD usage, where each mode's
/// MTTKRP runs 10–1000s of times against changing factors (Section III-B).
pub trait MttkrpKernel: Send + Sync {
    /// Computes the mode-`m` MTTKRP: `out = X_(m) (⊙ of the other factors)`.
    ///
    /// `factors` are indexed by original mode; `factors[self.mode()]` is
    /// ignored (it is the output slot). `out` must be
    /// `dims[m] x R` where every factor has `R` columns.
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix);

    /// Like [`MttkrpKernel::mttkrp`], but first verifies the kernel's
    /// blocking invariants and the write sets of its parallel tasks
    /// (claimed output-row ranges pairwise disjoint and jointly covering
    /// the output, actual touches confined to the owning claim). On
    /// violation, returns a structured [`RaceReport`] *without running any
    /// task*; on success, computes exactly what `mttkrp` would.
    ///
    /// The default implementation performs no verification — kernels with
    /// a parallel path override it. A kernel whose `exec` policy is
    /// [`crate::Threads::Checked`] performs the same verification inside
    /// `mttkrp` itself and panics with the report on violation.
    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.mttkrp(factors, out);
        Ok(())
    }

    /// The mode this kernel computes.
    fn mode(&self) -> usize;

    /// Human-readable kernel name for harness output.
    fn name(&self) -> &'static str;

    /// Bytes of tensor data this kernel's representation occupies
    /// (for memory/traffic reporting).
    fn tensor_bytes(&self) -> usize;
}

/// Kernel families available in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Coordinate-format kernel (Section III-C1).
    Coo,
    /// Baseline SPLATT kernel (Algorithm 1).
    Splatt,
    /// Multi-dimensional blocking (Section V-A).
    Mb,
    /// Rank + register blocking (Algorithm 2).
    RankB,
    /// MB and RankB combined (Figure 3b).
    MbRankB,
    /// Compressed sparse fiber (the higher-order format of ref. [12]),
    /// with rank blocking.
    Csf,
    /// Block-native coordinate storage with the register-tiled dense
    /// micro-kernel (Section V-A as a data layout).
    Bcoo,
}

impl KernelKind {
    /// All kinds, in paper presentation order.
    pub const ALL: [KernelKind; 7] = [
        KernelKind::Coo,
        KernelKind::Splatt,
        KernelKind::Mb,
        KernelKind::RankB,
        KernelKind::MbRankB,
        KernelKind::Csf,
        KernelKind::Bcoo,
    ];

    /// Canonical lowercase name, as accepted by the CLI and serve
    /// `kernel` parameters and stored in cached plans.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Coo => "coo",
            KernelKind::Splatt => "splatt",
            KernelKind::Mb => "mb",
            KernelKind::RankB => "rankb",
            KernelKind::MbRankB => "mbrankb",
            KernelKind::Csf => "csf",
            KernelKind::Bcoo => "bcoo",
        }
    }
}

/// Blocking and execution parameters for [`build_kernel`].
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// MB grid in kernel axes `[slice, j, k]`; `[1, 1, 1]` disables MB.
    pub grid: [usize; NMODES],
    /// RankB strip width in columns; `0` means "whole rank" (disables
    /// rank blocking).
    pub strip_width: usize,
    /// Threading policy and observability recorder.
    pub exec: ExecPolicy,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            grid: [1, 1, 1],
            strip_width: 0,
            exec: ExecPolicy::serial(),
        }
    }
}

impl KernelConfig {
    /// Replaces the execution policy.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }
}

/// Typed rejection of an invalid [`build_kernel`] request.
///
/// Every variant names the exact constraint violated, so boundary layers
/// (serve, CLI, fuzzer) can surface the reason without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// `mode` is not in `0..NMODES`.
    ModeOutOfRange {
        /// The requested mode.
        mode: usize,
    },
    /// An MB grid axis requests zero blocks.
    GridAxisZero {
        /// Kernel axis (0 = slice, 1 = j, 2 = k).
        axis: usize,
    },
    /// An MB grid axis requests more blocks than the axis has indices.
    GridExceedsAxis {
        /// Kernel axis (0 = slice, 1 = j, 2 = k).
        axis: usize,
        /// Requested block count.
        blocks: usize,
        /// The axis length (tensor dimension along that kernel axis).
        len: usize,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ModeOutOfRange { mode } => {
                write!(f, "mode {mode} out of range (0..{NMODES})")
            }
            KernelError::GridAxisZero { axis } => {
                write!(f, "MB grid requests 0 blocks along kernel axis {axis}")
            }
            KernelError::GridExceedsAxis { axis, blocks, len } => write!(
                f,
                "MB grid requests {blocks} blocks along kernel axis {axis} of length {len}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// Validates a `(mode, grid)` request against the tensor's dimensions.
///
/// This is the exact precondition `BlockGrid::new` asserts; checking it
/// here turns a would-be panic on hostile input into a [`KernelError`].
fn validate_request(
    coo: &CooTensor,
    mode: usize,
    grid: [usize; NMODES],
) -> Result<(), KernelError> {
    if mode >= NMODES {
        return Err(KernelError::ModeOutOfRange { mode });
    }
    let perm = tenblock_tensor::coo::perm_for_mode(mode);
    let dims = coo.dims();
    for ax in 0..NMODES {
        if grid[ax] == 0 {
            return Err(KernelError::GridAxisZero { axis: ax });
        }
        let len = dims[perm[ax]].max(1);
        if grid[ax] > len {
            return Err(KernelError::GridExceedsAxis {
                axis: ax,
                blocks: grid[ax],
                len,
            });
        }
    }
    Ok(())
}

/// Builds a kernel of the requested kind for mode `mode` of `coo`,
/// rejecting invalid requests with a typed [`KernelError`] instead of
/// panicking.
///
/// MB kinds use `cfg.grid`; RankB kinds use `cfg.strip_width` (a width of 0
/// falls back to 16 columns, two cache lines of doubles, the paper's
/// `N_RegB`). Non-MB kinds ignore the grid but still validate it, so an
/// invalid config is rejected uniformly regardless of kind.
pub fn try_build_kernel(
    kind: KernelKind,
    coo: &CooTensor,
    mode: usize,
    cfg: &KernelConfig,
) -> Result<Box<dyn MttkrpKernel>, KernelError> {
    validate_request(coo, mode, cfg.grid)?;
    Ok(build_validated(kind, coo, mode, cfg))
}

/// Builds a kernel of the requested kind for mode `mode` of `coo`.
///
/// MB kinds use `cfg.grid`; RankB kinds use `cfg.strip_width` (a width of 0
/// falls back to 16 columns, two cache lines of doubles, the paper's
/// `N_RegB`).
///
/// # Panics
/// Panics on an invalid request; boundary code should prefer
/// [`try_build_kernel`].
pub fn build_kernel(
    kind: KernelKind,
    coo: &CooTensor,
    mode: usize,
    cfg: &KernelConfig,
) -> Box<dyn MttkrpKernel> {
    match try_build_kernel(kind, coo, mode, cfg) {
        Ok(k) => k,
        Err(e) => panic!("{e}"),
    }
}

fn build_validated(
    kind: KernelKind,
    coo: &CooTensor,
    mode: usize,
    cfg: &KernelConfig,
) -> Box<dyn MttkrpKernel> {
    let strip = if cfg.strip_width == 0 {
        16
    } else {
        cfg.strip_width
    };
    let exec = cfg.exec.clone();
    match kind {
        KernelKind::Coo => Box::new(CooKernel::new(coo, mode).with_exec(exec)),
        KernelKind::Splatt => Box::new(SplattKernel::new(coo, mode).with_exec(exec)),
        KernelKind::Mb => Box::new(MbKernel::new(coo, mode, cfg.grid).with_exec(exec)),
        KernelKind::RankB => Box::new(RankBKernel::new(coo, mode, strip).with_exec(exec)),
        KernelKind::MbRankB => {
            Box::new(MbRankBKernel::new(coo, mode, cfg.grid, strip).with_exec(exec))
        }
        KernelKind::Csf => Box::new(
            Csf3Kernel::new(coo, mode)
                .with_strip_width(strip)
                .with_exec(exec),
        ),
        KernelKind::Bcoo => Box::new(BcooKernel::new(coo, mode, cfg.grid, strip).with_exec(exec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn invalid_requests_get_typed_errors() {
        let x = uniform_tensor([4, 6, 8], 30, 1);
        let cfg = KernelConfig::default();
        for kind in KernelKind::ALL {
            assert_eq!(
                try_build_kernel(kind, &x, 3, &cfg).err(),
                Some(KernelError::ModeOutOfRange { mode: 3 }),
                "{kind:?}"
            );
            let zero_grid = KernelConfig {
                grid: [1, 0, 1],
                ..Default::default()
            };
            assert_eq!(
                try_build_kernel(kind, &x, 0, &zero_grid).err(),
                Some(KernelError::GridAxisZero { axis: 1 }),
                "{kind:?}"
            );
            // Mode-0 kernel axes are [dims[0], dims[1], dims[2]] = [4,6,8];
            // 5 blocks along the 4-long slice axis cannot tile it.
            let oversized = KernelConfig {
                grid: [5, 1, 1],
                ..Default::default()
            };
            assert_eq!(
                try_build_kernel(kind, &x, 0, &oversized).err(),
                Some(KernelError::GridExceedsAxis {
                    axis: 0,
                    blocks: 5,
                    len: 4
                }),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn registry_builds_every_kind() {
        let x = uniform_tensor([10, 12, 14], 200, 3);
        let rank = 8;
        let factors: Vec<DenseMatrix> = x
            .dims()
            .iter()
            .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r + c) % 5) as f64))
            .collect();
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let cfg = KernelConfig {
            grid: [2, 2, 2],
            strip_width: 4,
            exec: ExecPolicy::serial(),
        };

        let mut reference: Option<DenseMatrix> = None;
        for kind in KernelKind::ALL {
            let k = build_kernel(kind, &x, 0, &cfg);
            assert_eq!(k.mode(), 0);
            assert!(!k.name().is_empty());
            let mut out = DenseMatrix::zeros(x.dims()[0], rank);
            k.mttkrp(&fs, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert!(
                    r.approx_eq(&out, 1e-10),
                    "{:?} disagrees with reference",
                    kind
                ),
            }
        }
    }
}
