//! The block-size selection heuristic of Section V-C.
//!
//! * **RankB**: strip widths are explored in 128-byte (16-double) increments
//!   — one cache line on the paper's POWER8 — until performance stops
//!   improving.
//! * **MB**: starting with the longest kernel axis, the number of blocks
//!   along that axis is doubled until performance stops improving, then the
//!   remaining axes are traversed in descending order of length. Ties are
//!   broken by access volume — mode-2 (`j` axis), then mode-3 (`k` axis),
//!   then mode-1 (slice axis) — because the mode-2 factor is the most
//!   expensive to access (Section IV-B). "Not blocking at all along a
//!   particular mode" is always a candidate (the search starts from one
//!   block).
//!
//! * **Storage layout**: once the grid and strip are settled, the winner
//!   competes against the BCOO kernel at the same configuration — the
//!   block-native layout wins when the blocks are dense enough to amortize
//!   its per-block factor gather, and the selected [`KernelKind`] is part
//!   of the result.
//!
//! The search cost is `O(log2 I_n)` per mode, "relatively inexpensive
//! compared to the 10–1000s of iterations required for decomposition".

use crate::block::MbRankBKernel;
use crate::exec::ExecPolicy;
use crate::kernel::{KernelKind, MttkrpKernel};
use crate::mttkrp::{BcooKernel, REG_BLOCK};
use crate::timing::{time_reps, TimingStats};
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Typed rejection of a degenerate [`tune`] request.
///
/// The heuristic times real kernel runs, so it needs at least one nonzero,
/// a positive rank, and a valid mode; anything else is reported as a value
/// instead of panicking mid-search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The tensor has no nonzeros: every candidate would time an empty
    /// kernel and the "best" configuration would be noise.
    EmptyTensor,
    /// `rank == 0`: there is no factor column to block over.
    RankZero,
    /// `mode` is not in `0..NMODES`.
    ModeOutOfRange {
        /// The requested mode.
        mode: usize,
    },
    /// A tensor dimension is smaller than the starting block count (1),
    /// i.e. zero-length: the MB search has no axis to partition.
    ZeroAxis {
        /// The zero-length mode.
        mode: usize,
    },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptyTensor => write!(f, "cannot tune an empty tensor (nnz == 0)"),
            TuneError::RankZero => write!(f, "cannot tune for rank 0"),
            TuneError::ModeOutOfRange { mode } => {
                write!(f, "mode {mode} out of range (0..{NMODES})")
            }
            TuneError::ZeroAxis { mode } => write!(
                f,
                "mode {mode} has length 0, smaller than the starting block count"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// Options controlling the heuristic search.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Decomposition rank to tune for.
    pub rank: usize,
    /// Timing repetitions per candidate (the minimum is kept).
    pub reps: usize,
    /// Upper bound on blocks per axis (safety valve; the paper's heuristic
    /// stops on its own well before this).
    pub max_blocks: usize,
    /// Execution policy candidates are timed under. The policy's recorder
    /// also receives one `tune/candidate` span per timed configuration.
    pub exec: ExecPolicy,
    /// Seed for the synthetic factor matrices used during timing.
    pub seed: u64,
}

impl TuneOptions {
    /// Sensible defaults for a given rank.
    pub fn new(rank: usize) -> Self {
        TuneOptions {
            rank,
            reps: 3,
            max_blocks: 64,
            exec: ExecPolicy::serial(),
            seed: 0x7e9b10c4,
        }
    }
}

/// One timed candidate configuration.
#[derive(Debug, Clone)]
pub struct TuneSample {
    /// Kernel family of the candidate.
    pub kind: KernelKind,
    /// MB grid (kernel axes) of the candidate.
    pub grid: [usize; NMODES],
    /// RankB strip width of the candidate.
    pub strip_width: usize,
    /// Best-of-`reps` execution time in seconds (warmup discarded).
    pub secs: f64,
    /// Mean over the measured repetitions in seconds.
    pub mean_secs: f64,
    /// Population standard deviation over the measured repetitions.
    pub stddev_secs: f64,
}

/// Result of the heuristic search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Selected kernel family ([`KernelKind::MbRankB`] or
    /// [`KernelKind::Bcoo`]).
    pub kind: KernelKind,
    /// Selected MB grid (kernel axes: slice, `j`, `k`).
    pub grid: [usize; NMODES],
    /// Selected RankB strip width in columns.
    pub strip_width: usize,
    /// Best observed time with the selected configuration.
    pub best_secs: f64,
    /// Every candidate evaluated, in search order.
    pub history: Vec<TuneSample>,
}

impl TuneResult {
    /// The selected configuration as a [`crate::KernelConfig`], ready to
    /// hand to [`crate::build_kernel`] (callers choose the execution
    /// policy).
    pub fn config_with(&self, exec: ExecPolicy) -> crate::KernelConfig {
        crate::KernelConfig {
            grid: self.grid,
            strip_width: self.strip_width,
            exec,
        }
    }

    /// Runs the tuner oracle: the selected block counts must be achievable
    /// for mode `mode` of a tensor with dimensions `dims`, and the strip
    /// width must fit `rank` columns.
    pub fn validate(
        &self,
        dims: [usize; NMODES],
        mode: usize,
        rank: usize,
    ) -> Result<(), tenblock_check::OracleError> {
        let perm = perm_for_mode(mode);
        tenblock_check::check_tune_grid(
            [dims[perm[0]], dims[perm[1]], dims[perm[2]]],
            self.grid,
            self.strip_width,
            rank,
        )
    }
}

/// Deterministic pseudo-random factor matrices for candidate timing.
fn timing_factors(coo: &CooTensor, rank: usize, seed: u64) -> Vec<DenseMatrix> {
    coo.dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            DenseMatrix::from_fn(d, rank, |r, c| {
                // xorshift-style hash; values in [-0.5, 0.5). The mantissa
                // comes from the hash's high 53 bits — `h % 1000` would
                // concentrate on the (barely mixed) low bits and bias the
                // distribution toward small residues.
                let mut h = seed ^ ((r as u64) << 32) ^ ((c as u64) << 8) ^ (m as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51afd7ed558ccd);
                h ^= h >> 33;
                (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5
            })
        })
        .collect()
}

/// Times one configuration: one discarded warmup rep then best of `reps`
/// runs of a freshly built kernel of the candidate family (construction
/// cost excluded, as the paper amortizes it over the CPD iterations). The
/// warmup absorbs first-touch page faults in `out`, which otherwise skew
/// min-of-1 candidate comparisons on small tensors.
#[allow(clippy::too_many_arguments)]
fn time_config(
    kind: KernelKind,
    coo: &CooTensor,
    mode: usize,
    grid: [usize; NMODES],
    strip_width: usize,
    factors: &[DenseMatrix],
    out: &mut DenseMatrix,
    opts: &TuneOptions,
) -> TimingStats {
    // Candidate timing runs with the recorder stripped: per-candidate spans
    // come from `tune` itself, not from every repetition's kernel call.
    let exec = ExecPolicy {
        threads: opts.exec.threads,
        ..ExecPolicy::default()
    };
    let kernel: Box<dyn MttkrpKernel> = match kind {
        KernelKind::Bcoo => Box::new(BcooKernel::new(coo, mode, grid, strip_width).with_exec(exec)),
        _ => Box::new(MbRankBKernel::new(coo, mode, grid, strip_width).with_exec(exec)),
    };
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
    time_reps(1, opts.reps, || kernel.mttkrp(&fs, out))
}

/// Runs the Section V-C heuristic, rejecting degenerate inputs (empty
/// tensor, rank 0, out-of-range mode, zero-length axis) with a typed
/// [`TuneError`] instead of panicking mid-search.
pub fn try_tune(coo: &CooTensor, mode: usize, opts: &TuneOptions) -> Result<TuneResult, TuneError> {
    if mode >= NMODES {
        return Err(TuneError::ModeOutOfRange { mode });
    }
    if opts.rank == 0 {
        return Err(TuneError::RankZero);
    }
    if let Some(m) = coo.dims().iter().position(|&d| d == 0) {
        return Err(TuneError::ZeroAxis { mode: m });
    }
    if coo.nnz() == 0 {
        return Err(TuneError::EmptyTensor);
    }
    Ok(tune_validated(coo, mode, opts))
}

/// Runs the Section V-C heuristic for the mode-`mode` MTTKRP of `coo`.
///
/// ```
/// use tenblock_core::{tune, TuneOptions};
/// use tenblock_tensor::gen::uniform_tensor;
///
/// let x = uniform_tensor([50, 80, 40], 2_000, 1);
/// let mut opts = TuneOptions::new(16);
/// opts.reps = 1;
/// opts.max_blocks = 4;
/// let result = tune(&x, 0, &opts);
/// assert!(result.grid.iter().all(|&g| (1..=4).contains(&g)));
/// assert!(result.strip_width >= 1 && result.strip_width <= 16);
/// ```
///
/// # Panics
/// Panics on degenerate input; boundary code should prefer [`try_tune`].
pub fn tune(coo: &CooTensor, mode: usize, opts: &TuneOptions) -> TuneResult {
    match try_tune(coo, mode, opts) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Picks a tile grid (original axes) so the streaming working set fits a
/// byte budget: the expected tile — `nnz / cells` entries at the 20-byte
/// tile encoding — must cost at most `budget / 2`, because the
/// double-buffered driver holds two tiles at once.
///
/// Deterministic halving-by-doubling: start at `[1, 1, 1]` and repeatedly
/// double the axis with the largest per-tile span (ties to the lowest
/// axis), so tiles stay near-cubical — the same shape preference as the
/// paper's MB grids. Degenerate budgets saturate at one-index spans
/// rather than erroring: streaming still works, one slab at a time.
///
/// ```
/// use tenblock_core::tune::grid_for_tile_budget;
/// // 10k entries * 20 B = 200 kB of tile payload; an 80 kB budget needs
/// // tiles of <= 40 kB, so at least 5 cells (rounded up by doubling).
/// let grid = grid_for_tile_budget([100, 100, 100], 10_000, 80_000);
/// let cells = grid.iter().product::<usize>();
/// assert!(200_000usize.div_ceil(cells) <= 40_000);
/// ```
pub fn grid_for_tile_budget(
    dims: [usize; NMODES],
    nnz: usize,
    budget_bytes: u64,
) -> [usize; NMODES] {
    let entry = tenblock_tensor::tile_store::TILE_ENTRY_BYTES;
    let target = (budget_bytes / 2).max(entry);
    let mut grid = [1usize; NMODES];
    loop {
        let cells = grid.iter().product::<usize>() as u64;
        let expected = (nnz as u64 * entry).div_ceil(cells.max(1));
        if expected <= target {
            return grid;
        }
        // Widest per-tile span that can still split, ties to axis 0.
        let growable = (0..NMODES).filter(|&ax| grid[ax] < dims[ax].max(1));
        let Some(ax) =
            growable.max_by_key(|&ax| (dims[ax].div_ceil(grid[ax]), std::cmp::Reverse(ax)))
        else {
            return grid; // every axis at one index per tile: done
        };
        grid[ax] = (grid[ax] * 2).min(dims[ax].max(1));
    }
}

fn tune_validated(coo: &CooTensor, mode: usize, opts: &TuneOptions) -> TuneResult {
    let perm = perm_for_mode(mode);
    let dims = coo.dims();
    let factors = timing_factors(coo, opts.rank, opts.seed);
    let mut out = DenseMatrix::zeros(dims[mode], opts.rank);
    let mut history = Vec::new();

    let tune_span = opts.exec.recorder.span("tune");
    tune_span.annotate_num("mode", mode as f64);

    let mut eval =
        |kind: KernelKind, grid: [usize; NMODES], strip: usize, history: &mut Vec<TuneSample>| {
            let span = opts.exec.recorder.span("tune/candidate");
            let stats = time_config(kind, coo, mode, grid, strip, &factors, &mut out, opts);
            if span.active() {
                span.annotate_str("kernel", kind.as_str());
                span.annotate_str("grid", &format!("{}x{}x{}", grid[0], grid[1], grid[2]));
                span.annotate_num("strip_width", strip as f64);
                span.annotate_num("secs", stats.min_secs);
            }
            history.push(TuneSample {
                kind,
                grid,
                strip_width: strip,
                secs: stats.min_secs,
                mean_secs: stats.mean_secs,
                stddev_secs: stats.stddev_secs,
            });
            stats.min_secs
        };

    // --- Phase 1: rank strip width, 16-column increments, stop when the
    // time stops improving. Width == rank means a single strip.
    let mut best_strip = opts.rank.max(1);
    let mut best_secs = eval(KernelKind::MbRankB, [1, 1, 1], best_strip, &mut history);
    let mut width = REG_BLOCK;
    while width < opts.rank {
        let secs = eval(KernelKind::MbRankB, [1, 1, 1], width, &mut history);
        if secs < best_secs {
            best_secs = secs;
            best_strip = width;
            width += REG_BLOCK;
        } else {
            break;
        }
    }

    // --- Phase 2: MB grid, axes in descending length order (ties broken by
    // access volume: j axis, k axis, slice axis).
    let axis_len = [dims[perm[0]], dims[perm[1]], dims[perm[2]]];
    let tie_rank = [2usize, 0, 1]; // axis 1 first, then 2, then 0
    let mut axes = [0usize, 1, 2];
    axes.sort_by_key(|&ax| (std::cmp::Reverse(axis_len[ax]), tie_rank[ax]));

    let mut grid = [1usize; NMODES];
    for &ax in &axes {
        let mut n = 1usize;
        loop {
            let next = (n * 2).min(axis_len[ax].max(1)).min(opts.max_blocks);
            if next == n {
                break;
            }
            let mut cand = grid;
            cand[ax] = next;
            let secs = eval(KernelKind::MbRankB, cand, best_strip, &mut history);
            if secs < best_secs {
                best_secs = secs;
                grid = cand;
                n = next;
            } else {
                break;
            }
        }
    }

    // --- Phase 3: storage layout. The MB+RankB winner competes against the
    // block-native BCOO kernel at the same grid and strip width.
    let mut kind = KernelKind::MbRankB;
    let secs = eval(KernelKind::Bcoo, grid, best_strip, &mut history);
    if secs < best_secs {
        best_secs = secs;
        kind = KernelKind::Bcoo;
    }

    TuneResult {
        kind,
        grid,
        strip_width: best_strip,
        best_secs,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::{clustered_tensor, ClusteredConfig};

    #[test]
    fn tune_returns_valid_config() {
        let cfg = ClusteredConfig::new([300, 500, 200], 20_000);
        let x = clustered_tensor(&cfg, 99);
        let opts = TuneOptions {
            rank: 32,
            reps: 1,
            max_blocks: 8,
            exec: ExecPolicy::serial(),
            seed: 1,
        };
        let r = tune(&x, 0, &opts);
        assert!(r.strip_width >= 1 && r.strip_width <= 32);
        for ax in 0..3 {
            assert!(r.grid[ax] >= 1 && r.grid[ax] <= 8);
        }
        assert!(!r.history.is_empty());
        assert!(r.best_secs.is_finite());
        // best time must appear in history
        assert!(r.history.iter().any(|s| s.secs <= r.best_secs + 1e-12));
        // the layout phase always runs, so a BCOO candidate is in history
        // and the selected kind is one of the two finalists
        assert!(r.history.iter().any(|s| s.kind == KernelKind::Bcoo));
        assert!(matches!(r.kind, KernelKind::MbRankB | KernelKind::Bcoo));
    }

    #[test]
    fn tiny_rank_skips_strip_search() {
        let cfg = ClusteredConfig::new([50, 50, 50], 2_000);
        let x = clustered_tensor(&cfg, 3);
        let opts = TuneOptions {
            rank: 8,
            reps: 1,
            max_blocks: 4,
            exec: ExecPolicy::serial(),
            seed: 2,
        };
        let r = tune(&x, 1, &opts);
        // rank 8 < REG_BLOCK: only the single-strip candidate exists
        assert_eq!(r.strip_width, 8);
    }

    #[test]
    fn degenerate_inputs_get_typed_errors() {
        use tenblock_tensor::CooTensor;
        let opts = TuneOptions::new(8);
        let empty = CooTensor::empty([10, 10, 10]);
        assert_eq!(
            try_tune(&empty, 0, &opts).err(),
            Some(TuneError::EmptyTensor)
        );

        let x = CooTensor::from_triples([2, 2, 2], &[0], &[1], &[1], &[1.0]);
        assert_eq!(
            try_tune(&x, 0, &TuneOptions::new(0)).err(),
            Some(TuneError::RankZero)
        );
        assert_eq!(
            try_tune(&x, 5, &opts).err(),
            Some(TuneError::ModeOutOfRange { mode: 5 })
        );

        let flat = CooTensor::empty([3, 0, 3]);
        assert_eq!(
            try_tune(&flat, 0, &opts).err(),
            Some(TuneError::ZeroAxis { mode: 1 })
        );
    }

    #[test]
    fn timing_factors_use_high_hash_bits() {
        // The [-0.5, 0.5) range must be hit roughly uniformly; the old
        // `h % 1000` mapping quantized everything to 1000 values. With
        // 53-bit mantissas, 400 samples should all be distinct and the
        // mean should sit near 0.
        let x = CooTensor::from_triples([20, 20, 1], &[0], &[0], &[0], &[1.0]);
        let fs = timing_factors(&x, 10, 0xfeed);
        let mut vals: Vec<f64> = (0..20)
            .flat_map(|r| (0..10).map(move |c| (r, c)))
            .map(|(r, c)| fs[0].row(r)[c])
            .collect();
        assert!(vals.iter().all(|v| (-0.5..0.5).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.1, "biased mean {mean}");
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        assert_eq!(vals.len(), 200, "values collide: low-bit quantization");
    }

    #[test]
    fn longest_axis_is_explored_first() {
        let cfg = ClusteredConfig::new([20, 400, 20], 5_000);
        let x = clustered_tensor(&cfg, 5);
        let opts = TuneOptions {
            rank: 16,
            reps: 1,
            max_blocks: 4,
            exec: ExecPolicy::serial(),
            seed: 3,
        };
        let r = tune(&x, 0, &opts);
        // The first MB candidate in history (after strip phase) must block
        // the j axis (axis 1), the longest.
        let first_mb = r
            .history
            .iter()
            .find(|s| s.grid != [1, 1, 1])
            .expect("some MB candidate was tried");
        assert!(
            first_mb.grid[1] > 1,
            "expected j-axis first, got {:?}",
            first_mb.grid
        );
    }
}
