//! The unified execution policy: one place to say *how* a kernel runs —
//! threading and observability — instead of a `parallel: bool` scattered
//! across every constructor.
//!
//! [`ExecPolicy`] is carried by [`crate::KernelConfig`], accepted by every
//! kernel's `with_exec`, and threaded through [`crate::tune`] and the CPD
//! solvers. It is the only way to select threading: the pre-`ExecPolicy`
//! `.with_parallel(bool)` builders went through a `#[deprecated]` cycle
//! and are gone.

use tenblock_faults::FaultPolicy;
use tenblock_obs::Rec;

/// Threading policy for slice/block-row loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Use every thread rayon offers.
    Auto,
    /// Single-threaded (the default, matching the old `parallel: false`).
    #[default]
    Serial,
    /// Target `n` workers. `Fixed(1)` is serial; `Fixed(n > 1)` runs the
    /// parallel path with work split for roughly `n` workers (the rayon
    /// shim sizes its pool from available parallelism, so this bounds
    /// work-splitting granularity rather than pinning a thread count).
    Fixed(usize),
    /// Like [`Threads::Auto`], but every launch first validates the
    /// kernel's blocking invariants and parallel write sets
    /// ([`crate::MttkrpKernel::mttkrp_checked`]); a violation is reported
    /// as a [`tenblock_check::RaceReport`] before any task runs.
    Checked,
}

impl Threads {
    /// Whether the parallel code path should run at all.
    pub fn is_parallel(self) -> bool {
        match self {
            Threads::Auto | Threads::Checked => true,
            Threads::Serial => false,
            Threads::Fixed(n) => n > 1,
        }
    }

    /// Whether launches must pass write-set/invariant verification first.
    pub fn is_checked(self) -> bool {
        matches!(self, Threads::Checked)
    }

    /// Worker count used to size work chunks.
    pub fn workers(self) -> usize {
        match self {
            Threads::Auto | Threads::Checked => rayon::current_num_threads().max(1),
            Threads::Serial => 1,
            Threads::Fixed(n) => n.max(1),
        }
    }
}

/// How a kernel executes: threading plus the observability recorder.
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Threading policy.
    pub threads: Threads,
    /// Span/counter sink; defaults to the no-op recorder, which costs one
    /// branch per kernel call.
    pub recorder: Rec,
    /// Fault-injection policy for I/O the execution performs (streaming
    /// tile loads). No-op by default; `tenblock chaos` and the
    /// fault-injection tests arm it to prove the recovery paths.
    pub faults: FaultPolicy,
}

impl ExecPolicy {
    /// Single-threaded, no recording (the default).
    pub fn serial() -> Self {
        ExecPolicy::default()
    }

    /// All available threads, no recording.
    pub fn auto() -> Self {
        ExecPolicy {
            threads: Threads::Auto,
            ..ExecPolicy::default()
        }
    }

    /// Approximately `n` workers, no recording.
    pub fn fixed(n: usize) -> Self {
        ExecPolicy {
            threads: Threads::Fixed(n),
            ..ExecPolicy::default()
        }
    }

    /// All available threads with pre-launch write-set verification.
    pub fn checked() -> Self {
        ExecPolicy {
            threads: Threads::Checked,
            ..ExecPolicy::default()
        }
    }

    /// Attaches a recorder.
    pub fn with_recorder(mut self, recorder: Rec) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a fault-injection policy for the I/O this execution
    /// performs.
    pub fn with_faults(mut self, faults: FaultPolicy) -> Self {
        self.faults = faults;
        self
    }

    /// Shorthand for `self.threads.is_parallel()`.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads.is_parallel()
    }

    /// Shorthand for `self.threads.is_checked()`.
    #[inline]
    pub fn is_checked(&self) -> bool {
        self.threads.is_checked()
    }

    /// Chunk size splitting `items` so each worker sees ~4 chunks (the
    /// oversubscription factor every kernel used before this type).
    #[inline]
    pub fn chunk_size(&self, items: usize) -> usize {
        items.div_ceil(4 * self.threads.workers()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_policy_semantics() {
        assert!(Threads::Auto.is_parallel());
        assert!(!Threads::Serial.is_parallel());
        assert!(!Threads::Fixed(1).is_parallel());
        assert!(Threads::Fixed(8).is_parallel());
        assert_eq!(Threads::Serial.workers(), 1);
        assert_eq!(Threads::Fixed(6).workers(), 6);
        assert!(Threads::Auto.workers() >= 1);
        assert!(Threads::Checked.is_parallel());
        assert!(Threads::Checked.is_checked());
        assert!(!Threads::Auto.is_checked());
        assert_eq!(Threads::Checked.workers(), Threads::Auto.workers());
        assert!(ExecPolicy::checked().is_checked());
        assert!(!ExecPolicy::auto().is_checked());
    }

    #[test]
    fn chunking_oversubscribes_by_four() {
        let p = ExecPolicy::fixed(2);
        assert_eq!(p.chunk_size(80), 10);
        // never zero, even for empty input
        assert_eq!(p.chunk_size(0), 1);
        let serial = ExecPolicy::serial();
        assert_eq!(serial.chunk_size(100), 25);
    }

    #[test]
    fn default_policy_is_serial_and_unrecorded() {
        assert!(!ExecPolicy::default().is_parallel());
        assert!(!ExecPolicy::default().recorder.enabled());
    }
}
