//! Dense MTTKRP reference: materializes the matricized tensor and the
//! Khatri-Rao product explicitly (Section III-B), exactly as the definition
//! reads. Quadratic in memory — test-sized tensors only.

use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Computes the mode-`mode` MTTKRP of `x` by definition:
/// `A = X_(m) (B ⊙ C)` with the Khatri-Rao product formed explicitly.
///
/// # Panics
/// Panics if the flattened dimension `J*K` is enormous (guard against
/// accidentally calling this on benchmark-sized data).
pub fn dense_mttkrp(x: &CooTensor, factors: &[&DenseMatrix; NMODES], mode: usize) -> DenseMatrix {
    let perm = perm_for_mode(mode);
    let dims = x.dims();
    let (di, dj, dk) = (dims[perm[0]], dims[perm[1]], dims[perm[2]]);
    assert!(
        dj.checked_mul(dk).map(|p| p <= 1 << 24).unwrap_or(false),
        "dense reference limited to small tensors (J*K <= 2^24)"
    );
    let b = factors[perm[1]];
    let c = factors[perm[2]];
    let rank = b.cols();
    assert_eq!(c.cols(), rank);

    // Khatri-Rao product K = B ⊙ C, a (J*K) x R matrix whose row (j*dk + k)
    // is the Hadamard product of B[j] and C[k].
    let mut kr = DenseMatrix::zeros(dj * dk, rank);
    for j in 0..dj {
        for k in 0..dk {
            let row = kr.row_mut(j * dk + k);
            for (r, slot) in row.iter_mut().enumerate() {
                *slot = b.get(j, r) * c.get(k, r);
            }
        }
    }

    // Matricize X along `mode`: row i, column (j*dk + k).
    let mut xm = DenseMatrix::zeros(di, dj * dk);
    for e in x.entries() {
        let (i, j, k) = (
            e.idx[perm[0]] as usize,
            e.idx[perm[1]] as usize,
            e.idx[perm[2]] as usize,
        );
        xm.set(i, j * dk + k, xm.get(i, j * dk + k) + e.val);
    }

    // A = X_(m) * K
    let mut a = DenseMatrix::zeros(di, rank);
    for i in 0..di {
        let xr = xm.row(i);
        let ar = a.row_mut(i);
        for (col, &xv) in xr.iter().enumerate() {
            if xv != 0.0 {
                let krow = kr.row(col);
                for (r, slot) in ar.iter_mut().enumerate() {
                    *slot += xv * krow[r];
                }
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_example() {
        // X with a single nonzero x[1,2,0] = 3; mode-1 MTTKRP row 1 must be
        // 3 * B[2] .* C[0].
        let x = CooTensor::from_triples([2, 3, 2], &[1], &[2], &[0], &[3.0]);
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = DenseMatrix::from_vec(2, 2, vec![7.0, 8.0, 9.0, 10.0]);
        let out = dense_mttkrp(&x, &[&a, &b, &c], 0);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[3.0 * 5.0 * 7.0, 3.0 * 6.0 * 8.0]);
    }

    #[test]
    fn symmetric_in_other_modes() {
        // mode-2 MTTKRP of the same nonzero: row 2 = 3 * C[0] .* A[1]
        let x = CooTensor::from_triples([2, 3, 2], &[1], &[2], &[0], &[3.0]);
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::zeros(3, 2);
        let c = DenseMatrix::from_vec(2, 2, vec![7.0, 8.0, 9.0, 10.0]);
        let out = dense_mttkrp(&x, &[&a, &b, &c], 1);
        assert_eq!(out.row(2), &[3.0 * 7.0 * 3.0, 3.0 * 8.0 * 4.0]);
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }
}
