//! MTTKRP kernels: shared inner loops, the COO kernel, the SPLATT baseline
//! (Algorithm 1), and a dense reference implementation.

mod allmode;
mod bcoo;
mod coo;
mod csf;
mod dense_ref;
pub(crate) mod micro;
mod splatt;

pub use allmode::AllModeKernel;
pub use bcoo::BcooKernel;
pub use coo::CooKernel;
pub use csf::{nd_mttkrp_reference, Csf3Kernel, CsfKernel};
pub use dense_ref::dense_mttkrp;
pub use splatt::SplattKernel;

use tenblock_tensor::{DenseMatrix, SplattTensor, StripMatrix};

/// Register-block width: 16 doubles = 128 bytes = one POWER8 cache line,
/// the paper's `N_RegB = 16` (Algorithm 2).
pub const REG_BLOCK: usize = 16;

/// The full [`REG_BLOCK`]-wide chunk of `row` starting at `col`.
///
/// Shared by every register loop so the one infallible slice-to-array
/// conversion (and its lint waiver) lives in a single place. Callers
/// guarantee `col + REG_BLOCK <= row.len()`.
#[inline(always)]
pub(crate) fn reg_chunk(row: &[f64], col: usize) -> &[f64; REG_BLOCK] {
    // Infallible: the slice is exactly REG_BLOCK long, and the hot loops
    // must stay branch-free. Re-audited by the panic-reach pass (PR 8):
    // every witnessed chain (MbRankBKernel/Csf3Kernel/SplattKernel::mttkrp
    // → … → reg_chunk) reaches this site through a
    // `while col + REG_BLOCK <= width` guard over a width-long window.
    row[col..col + REG_BLOCK].try_into().unwrap() // lint: allow(no-unwrap, panic-reach)
}

/// A read-only view of one column window of a factor matrix, by row.
///
/// Implementations exist for a column slice of a [`DenseMatrix`] and for a
/// strip of a [`StripMatrix`], so the register-blocked inner loop is
/// monomorphized for both layouts.
pub trait RowWindow: Sync {
    /// The window of row `r`; length is the window width for every row.
    fn window(&self, r: usize) -> &[f64];
}

/// Column window `[col0, col0 + width)` of a dense matrix.
#[derive(Clone, Copy)]
pub struct DenseWindow<'m> {
    m: &'m DenseMatrix,
    col0: usize,
    width: usize,
}

impl<'m> DenseWindow<'m> {
    /// Creates a window; `col0 + width` must not exceed the column count.
    pub fn new(m: &'m DenseMatrix, col0: usize, width: usize) -> Self {
        assert!(col0 + width <= m.cols(), "window out of range");
        DenseWindow { m, col0, width }
    }
}

impl RowWindow for DenseWindow<'_> {
    #[inline]
    fn window(&self, r: usize) -> &[f64] {
        &self.m.row(r)[self.col0..self.col0 + self.width]
    }
}

/// One strip of a [`StripMatrix`] (rows are contiguous in memory).
#[derive(Clone, Copy)]
pub struct StripWindow<'m> {
    m: &'m StripMatrix,
    strip: usize,
}

impl<'m> StripWindow<'m> {
    /// Creates a view of strip `strip`.
    pub fn new(m: &'m StripMatrix, strip: usize) -> Self {
        assert!(strip < m.n_strips(), "strip out of range");
        StripWindow { m, strip }
    }
}

impl RowWindow for StripWindow<'_> {
    #[inline]
    fn window(&self, r: usize) -> &[f64] {
        self.m.strip_row(self.strip, r)
    }
}

/// Algorithm 1 inner loops over one (sub-)tensor, writing into the output
/// rows `[row0, row0 + n)` provided as a raw row-major buffer.
///
/// For every fiber, the length-`R` accumulator `accum` collects
/// `val * B[j]` over the fiber's nonzeros, then folds into the output row
/// via a Hadamard product with `C[kid]` — exactly lines 3–9 of Algorithm 1.
/// `slices` selects the local slice subrange to process (use
/// `0..t.n_slices()` for the whole tensor); this is how the rayon-parallel
/// kernels hand disjoint output-row chunks to workers.
pub(crate) fn process_block_plain(
    t: &SplattTensor,
    b: &DenseMatrix,
    c: &DenseMatrix,
    slices: std::ops::Range<usize>,
    out_rows: &mut [f64],
    row0: usize,
    accum: &mut [f64],
) {
    let rank = accum.len();
    let (_, _, _, j_idx, vals) = t.raw();
    for s in slices {
        let g = t.slice_global(s);
        let orow = &mut out_rows[(g - row0) * rank..(g - row0) * rank + rank];
        for f in t.slice_fibers(s) {
            accum.fill(0.0);
            for n in t.fiber_nnz(f) {
                let v = vals[n];
                let brow = b.row(j_idx[n] as usize);
                for (a, &bv) in accum.iter_mut().zip(brow) {
                    *a += v * bv;
                }
            }
            let crow = c.row(t.fiber_kid(f) as usize);
            for ((o, &a), &cv) in orow.iter_mut().zip(accum.iter()).zip(crow) {
                *o += a * cv;
            }
        }
    }
}

/// Algorithm 2 inner loops: register-blocked processing of one column
/// window of width `width` over one (sub-)tensor.
///
/// The window is processed in chunks of [`REG_BLOCK`] columns; each chunk
/// re-traverses the fiber's nonzeros with a fixed-size register accumulator,
/// eliminating the heap accumulator loads of Algorithm 1 (the paper's
/// register blocking). The fiber data has "extremely short re-use distance"
/// across chunks and stays cached.
///
/// `out_col0` is the column in `out_rows` where the window starts (equal to
/// the window's first rank column); `rank` is the full width of `out_rows`
/// rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_block_rankb<B: RowWindow, C: RowWindow>(
    t: &SplattTensor,
    b: &B,
    c: &C,
    slices: std::ops::Range<usize>,
    out_rows: &mut [f64],
    row0: usize,
    rank: usize,
    out_col0: usize,
    width: usize,
) {
    let (_, _, _, j_idx, vals) = t.raw();
    for s in slices {
        let g = t.slice_global(s);
        let obase = (g - row0) * rank + out_col0;
        for f in t.slice_fibers(s) {
            let crow = c.window(t.fiber_kid(f) as usize);
            let nz = t.fiber_nnz(f);
            let mut col = 0;
            // full 16-wide register chunks
            while col + REG_BLOCK <= width {
                let mut reg = [0.0f64; REG_BLOCK];
                for n in nz.clone() {
                    let v = vals[n];
                    let bchunk = reg_chunk(b.window(j_idx[n] as usize), col);
                    for l in 0..REG_BLOCK {
                        reg[l] += v * bchunk[l];
                    }
                }
                let cchunk = reg_chunk(crow, col);
                let orow = &mut out_rows[obase + col..obase + col + REG_BLOCK];
                for l in 0..REG_BLOCK {
                    orow[l] += reg[l] * cchunk[l];
                }
                col += REG_BLOCK;
            }
            // remainder chunk (< 16 columns)
            if col < width {
                let w = width - col;
                let mut reg = [0.0f64; REG_BLOCK];
                for n in nz.clone() {
                    let v = vals[n];
                    let brow = &b.window(j_idx[n] as usize)[col..col + w];
                    for (l, &bv) in brow.iter().enumerate() {
                        reg[l] += v * bv;
                    }
                }
                let orow = &mut out_rows[obase + col..obase + col + w];
                for (l, o) in orow.iter_mut().enumerate() {
                    *o += reg[l] * crow[col + l];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::coo::MODE1_PERM;
    use tenblock_tensor::CooTensor;

    fn tiny() -> (CooTensor, DenseMatrix, DenseMatrix) {
        let x = CooTensor::from_triples(
            [3, 3, 3],
            &[0, 0, 0, 1, 1, 1, 2],
            &[0, 1, 1, 0, 1, 2, 0],
            &[0, 1, 2, 2, 1, 2, 0],
            &[5.0, 3.0, 1.0, 2.0, 9.0, 7.0, 9.0],
        );
        let b = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c + 1) as f64);
        let c = DenseMatrix::from_fn(3, 4, |r, c| ((r + 2) * (c + 1)) as f64 * 0.5);
        (x, b, c)
    }

    #[test]
    fn plain_and_rankb_agree() {
        let (x, b, c) = tiny();
        let t = SplattTensor::from_coo(&x, MODE1_PERM);
        let rank = 4;
        let mut out_plain = vec![0.0; 3 * rank];
        let mut accum = vec![0.0; rank];
        process_block_plain(&t, &b, &c, 0..3, &mut out_plain, 0, &mut accum);

        let mut out_rb = vec![0.0; 3 * rank];
        let bw = DenseWindow::new(&b, 0, rank);
        let cw = DenseWindow::new(&c, 0, rank);
        process_block_rankb(&t, &bw, &cw, 0..3, &mut out_rb, 0, rank, 0, rank);

        for (p, r) in out_plain.iter().zip(&out_rb) {
            assert!((p - r).abs() < 1e-12, "{p} vs {r}");
        }
    }

    #[test]
    fn rankb_wide_rank_with_remainder() {
        let (x, _, _) = tiny();
        let rank = 37; // 2 full chunks of 16 + remainder of 5
        let b = DenseMatrix::from_fn(3, rank, |r, c| ((r + 1) * (c + 1)) as f64 * 0.01);
        let c = DenseMatrix::from_fn(3, rank, |r, c| ((r * 7 + c) % 11) as f64);
        let t = SplattTensor::from_coo(&x, MODE1_PERM);

        let mut out_plain = vec![0.0; 3 * rank];
        let mut accum = vec![0.0; rank];
        process_block_plain(&t, &b, &c, 0..3, &mut out_plain, 0, &mut accum);

        let mut out_rb = vec![0.0; 3 * rank];
        let bw = DenseWindow::new(&b, 0, rank);
        let cw = DenseWindow::new(&c, 0, rank);
        process_block_rankb(&t, &bw, &cw, 0..3, &mut out_rb, 0, rank, 0, rank);

        for (p, r) in out_plain.iter().zip(&out_rb) {
            assert!((p - r).abs() < 1e-9, "{p} vs {r}");
        }
    }

    #[test]
    fn strip_window_matches_dense_window() {
        let m = DenseMatrix::from_fn(5, 20, |r, c| (r * 100 + c) as f64);
        let s = StripMatrix::from_dense(&m, 8);
        for strip in 0..s.n_strips() {
            let dw = DenseWindow::new(&m, s.col_begin(strip), s.width_of(strip));
            let sw = StripWindow::new(&s, strip);
            for r in 0..5 {
                assert_eq!(dw.window(r), sw.window(r));
            }
        }
    }
}
