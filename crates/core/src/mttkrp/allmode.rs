//! All-mode MTTKRP with memoized partial products.
//!
//! The paper's related work notes that HyperTensor was extended "to include
//! memoization, which trades off storage overhead in order to reduce the
//! cost of individual MTTKRP operations" (ref. [17]). This module
//! implements the 3-mode instance of that idea: when all three MTTKRPs are
//! needed *at the same factor state* — CP gradients, CP-APR inner steps,
//! fit checks — one traversal of the SPLATT structure produces all three,
//! reusing the per-fiber partial products:
//!
//! ```text
//! per fiber f = (i, k):   s  = Σ_n val_n · B[j_n]      (upward partial)
//!   mode-1:  A'[i]  += s ⊙ C[k]
//!   mode-3:  C'[k]  += s ⊙ A[i]
//!   t = A[i] ⊙ C[k]                                     (downward partial)
//!   mode-2:  B'[j_n] += val_n · t    for every nonzero
//! ```
//!
//! versus three separate kernels, the tensor is streamed once instead of
//! three times and `s` is computed once instead of twice.
//!
//! Note this is **not** usable inside plain CP-ALS (each ALS mode update
//! must see the *updated* previous factors); it is for algorithms that need
//! the full gradient at one point.

use tenblock_tensor::{CooTensor, DenseMatrix, SplattTensor, NMODES};

/// All-mode MTTKRP kernel (one SPLATT representation, mode-1 oriented).
pub struct AllModeKernel {
    t: SplattTensor,
}

impl AllModeKernel {
    /// Builds the mode-1-oriented representation used for the fused pass.
    pub fn new(coo: &CooTensor) -> Self {
        AllModeKernel {
            t: SplattTensor::for_mode(coo, 0),
        }
    }

    /// Computes all three MTTKRPs at the factor state `factors`,
    /// overwriting `outs[m]` with the mode-`m` result.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn mttkrp_all(&self, factors: &[&DenseMatrix; NMODES], outs: &mut [DenseMatrix; NMODES]) {
        let dims = self.t.dims();
        let rank = factors[0].cols();
        for m in 0..NMODES {
            assert_eq!(factors[m].cols(), rank, "factor {m} rank mismatch");
            assert_eq!(factors[m].rows(), dims[m], "factor {m} rows mismatch");
            assert_eq!(outs[m].cols(), rank, "output {m} rank mismatch");
            assert_eq!(outs[m].rows(), dims[m], "output {m} rows mismatch");
            outs[m].fill_zero();
        }
        let (a, b, c) = (factors[0], factors[1], factors[2]);
        let (_, _, _, j_idx, vals) = self.t.raw();
        let mut s = vec![0.0; rank];
        let mut t_part = vec![0.0; rank];

        // split outs to get simultaneous mutable access
        let (out_a, rest) = outs.split_at_mut(1);
        let (out_b, out_c) = rest.split_at_mut(1);
        let out_a = &mut out_a[0];
        let out_b = &mut out_b[0];
        let out_c = &mut out_c[0];

        for sl in 0..self.t.n_slices() {
            let i = self.t.slice_global(sl);
            let arow = a.row(i);
            for f in self.t.slice_fibers(sl) {
                let k = self.t.fiber_kid(f) as usize;
                let crow = c.row(k);
                // upward partial + downward partial
                s.fill(0.0);
                for (tp, (&av, &cv)) in t_part.iter_mut().zip(arow.iter().zip(crow)) {
                    *tp = av * cv;
                }
                for n in self.t.fiber_nnz(f) {
                    let v = vals[n];
                    let j = j_idx[n] as usize;
                    let brow = b.row(j);
                    for (sv, &bv) in s.iter_mut().zip(brow) {
                        *sv += v * bv;
                    }
                    // mode-2 contribution per nonzero
                    let obrow = out_b.row_mut(j);
                    for (o, &tp) in obrow.iter_mut().zip(t_part.iter()) {
                        *o += v * tp;
                    }
                }
                // mode-1 and mode-3 contributions per fiber
                let oarow = out_a.row_mut(i);
                for ((o, &sv), &cv) in oarow.iter_mut().zip(s.iter()).zip(crow) {
                    *o += sv * cv;
                }
                let ocrow = out_c.row_mut(k);
                for ((o, &sv), &av) in ocrow.iter_mut().zip(s.iter()).zip(arow) {
                    *o += sv * av;
                }
            }
        }
    }

    /// Flops of the fused pass vs three separate SPLATT kernels, as a
    /// `(fused, separate)` pair — the memoization saving.
    pub fn flop_counts(&self, rank: usize) -> (u64, u64) {
        let nnz = self.t.nnz() as u64;
        let f = self.t.n_fibers() as u64;
        let r = rank as u64;
        // fused: per nonzero 2R (s) + 2R (mode-2 scatter); per fiber
        // R (t_part) + 2R (mode-1) + 2R (mode-3)
        let fused = 4 * r * nnz + 5 * r * f;
        // separate: 3x Equation (2) = 3 * 2R(nnz + F)
        let separate = 3 * 2 * r * (nnz + f);
        (fused, separate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MttkrpKernel;
    use crate::mttkrp::SplattKernel;
    use tenblock_tensor::gen::uniform_tensor;

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 11 + c * 3 + m) % 13) as f64 - 6.0) * 0.15
                })
            })
            .collect()
    }

    #[test]
    fn fused_matches_three_separate_kernels() {
        let x = uniform_tensor([25, 30, 20], 900, 44);
        let rank = 10;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];

        let fused = AllModeKernel::new(&x);
        let mut outs = [
            DenseMatrix::zeros(25, rank),
            DenseMatrix::zeros(30, rank),
            DenseMatrix::zeros(20, rank),
        ];
        fused.mttkrp_all(&fs, &mut outs);

        for mode in 0..3 {
            let k = SplattKernel::new(&x, mode);
            let mut expect = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut expect);
            assert!(
                expect.approx_eq(&outs[mode], 1e-10),
                "mode {mode}: max diff {}",
                expect.max_abs_diff(&outs[mode])
            );
        }
    }

    #[test]
    fn memoization_saves_flops_on_dense_fibers() {
        // one fiber with many nonzeros: fused 4R*nnz dominates separate 6R*nnz
        let n = 100u32;
        let x = CooTensor::from_triples(
            [2, n as usize, 2],
            &vec![1; n as usize],
            &(0..n).collect::<Vec<_>>(),
            &vec![1; n as usize],
            &vec![1.0; n as usize],
        );
        let k = AllModeKernel::new(&x);
        let (fused, separate) = k.flop_counts(32);
        assert!(fused < separate, "fused {fused} >= separate {separate}");
    }

    #[test]
    fn empty_tensor_zeroes_outputs() {
        let x = CooTensor::empty([3, 4, 5]);
        let rank = 2;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let k = AllModeKernel::new(&x);
        let mut outs = [
            DenseMatrix::from_fn(3, rank, |_, _| 9.0),
            DenseMatrix::from_fn(4, rank, |_, _| 9.0),
            DenseMatrix::from_fn(5, rank, |_, _| 9.0),
        ];
        k.mttkrp_all(&fs, &mut outs);
        for o in &outs {
            assert!(o.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}
