//! The baseline SPLATT MTTKRP kernel — Algorithm 1 of the paper.
//!
//! Per slice `i`, per fiber `(i, k)`: a length-`R` accumulator gathers
//! `val * B[j]` over the fiber's nonzeros, then folds into `A[i]` via a
//! Hadamard product with `C[k]`. The per-fiber factoring is what saves
//! SPLATT both flops and factor-matrix traffic relative to COO.
//!
//! Parallelism follows SPLATT's shared-memory scheme: slices are distributed
//! over threads; output rows are disjoint per slice, so no synchronization
//! is needed.

use super::process_block_plain;
use crate::checked::slice_chunk_write_sets;
use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use rayon::prelude::*;
use tenblock_check::{write_set_violations, RaceReport};
use tenblock_obs::KernelCounters;
use tenblock_tensor::{CooTensor, DenseMatrix, SplattTensor, NMODES};

/// Baseline SPLATT kernel for one mode (Algorithm 1).
pub struct SplattKernel {
    mode: usize,
    t: SplattTensor,
    exec: ExecPolicy,
}

impl SplattKernel {
    /// Builds the SPLATT representation of `coo` for the mode-`mode`
    /// MTTKRP.
    pub fn new(coo: &CooTensor, mode: usize) -> Self {
        SplattKernel {
            mode,
            t: SplattTensor::for_mode(coo, mode),
            exec: ExecPolicy::serial(),
        }
    }

    /// Wraps an already-built SPLATT tensor (its `perm()[0]` is the mode).
    pub fn from_splatt(t: SplattTensor) -> Self {
        SplattKernel {
            mode: t.perm()[0],
            t,
            exec: ExecPolicy::serial(),
        }
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The underlying SPLATT tensor.
    pub fn tensor(&self) -> &SplattTensor {
        &self.t
    }

    /// Verifies the output partition the parallel path would launch: each
    /// chunk's claimed rows against the global rows of the slices it
    /// processes (which differ from the claim if the tensor is
    /// slice-compressed — the parallel path requires an uncompressed one).
    fn verify(&self, out_rows: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        if self.exec.is_parallel() && self.t.n_slices() > 0 {
            let chunk = self.exec.chunk_size(self.t.n_slices());
            let sets = slice_chunk_write_sets(&self.t, out_rows, chunk);
            violations.extend(write_set_violations(out_rows, &sets));
        }
        RaceReport::check("SPLATT", violations)
    }
}

impl MttkrpKernel for SplattKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let perm = self.t.perm();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.t.dims()[perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows()) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/SPLATT");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.counters(&KernelCounters::fibered_model(
                self.t.nnz() as u64,
                self.t.n_fibers() as u64,
                rank as u64,
            ));
        }
        out.fill_zero();

        let n_slices = self.t.n_slices();
        if n_slices == 0 {
            return;
        }
        if self.exec.is_parallel() {
            // Chunk output rows so each worker owns a disjoint slice range.
            let chunk = self.exec.chunk_size(n_slices);
            out.as_mut_slice()
                .par_chunks_mut(chunk * rank)
                .enumerate()
                .for_each(|(ci, rows)| {
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(n_slices);
                    let mut accum = vec![0.0; rank];
                    process_block_plain(&self.t, b, c, lo..hi, rows, lo, &mut accum);
                });
        } else {
            let mut accum = vec![0.0; rank];
            process_block_plain(
                &self.t,
                b,
                c,
                0..n_slices,
                out.as_mut_slice(),
                0,
                &mut accum,
            );
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "SPLATT"
    }

    fn tensor_bytes(&self) -> usize {
        self.t.actual_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::dense_mttkrp;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 13 + c * 7 + m) % 23) as f64 - 11.0) * 0.1
                })
            })
            .collect()
    }

    #[test]
    fn matches_dense_reference_all_modes() {
        let x = uniform_tensor([9, 11, 7], 150, 33);
        let rank = 6;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let expect = dense_mttkrp(&x, &fs, mode);
            let k = SplattKernel::new(&x, mode);
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut out);
            assert!(expect.approx_eq(&out, 1e-10), "mode {mode} mismatch");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let cfg = ClusteredConfig::new([200, 150, 100], 5_000);
        let x = clustered_tensor(&cfg, 4);
        let rank = 10;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let seq = SplattKernel::new(&x, 0);
        let par = SplattKernel::new(&x, 0).with_exec(ExecPolicy::auto());
        let mut a = DenseMatrix::zeros(200, rank);
        let mut b = DenseMatrix::zeros(200, rank);
        seq.mttkrp(&fs, &mut a);
        par.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn output_is_overwritten_not_accumulated() {
        let x = uniform_tensor([5, 5, 5], 20, 9);
        let rank = 4;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let k = SplattKernel::new(&x, 0);
        let mut out = DenseMatrix::from_fn(5, rank, |_, _| 1234.5);
        k.mttkrp(&fs, &mut out);
        let mut out2 = DenseMatrix::zeros(5, rank);
        k.mttkrp(&fs, &mut out2);
        assert!(out.approx_eq(&out2, 1e-12));
    }

    #[test]
    fn single_fiber_tensor() {
        // all nonzeros share (i, k): one fiber, accumulator exercised fully
        let x = CooTensor::from_triples(
            [2, 4, 2],
            &[1, 1, 1, 1],
            &[0, 1, 2, 3],
            &[1, 1, 1, 1],
            &[1.0, 2.0, 3.0, 4.0],
        );
        let rank = 3;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let expect = dense_mttkrp(&x, &fs, 0);
        let k = SplattKernel::new(&x, 0);
        let mut out = DenseMatrix::zeros(2, rank);
        k.mttkrp(&fs, &mut out);
        assert!(expect.approx_eq(&out, 1e-12));
    }
}
