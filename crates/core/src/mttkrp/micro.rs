//! The BCOO register-tiled dense micro-kernel.
//!
//! One block at a time: when the block is dense enough, the factor
//! sub-rows for its `j`/`k` spans are gathered once into contiguous
//! scratch (amortized over the block's nonzeros), then the inner loop
//! accumulates GEMM-style over the stored block-local offsets — no global
//! index decode — with the rank tiled in [`REG_BLOCK`]-wide register
//! strips exactly like the RankB pass. Sparse blocks skip the gather and
//! address the factors through the block origin instead (one add per
//! access, still decode-free).

use super::{reg_chunk, RowWindow, REG_BLOCK};
use tenblock_tensor::{DenseMatrix, NMODES};

/// A block-local coordinate at one of the stored widths (u8/u16/u32).
pub(crate) trait LocalOff: Copy + Send + Sync {
    /// The offset as a row index.
    fn idx(self) -> usize;
}

impl LocalOff for u8 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl LocalOff for u16 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl LocalOff for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Reusable per-worker buffers holding one block's gathered factor
/// sub-rows (full rank width, rows contiguous).
#[derive(Default)]
pub(crate) struct GatherBuf {
    b: Vec<f64>,
    c: Vec<f64>,
}

/// Column window `[col0, col0 + width)` over a gathered sub-matrix; row
/// `r` is the `r`-th gathered row.
struct GatherWindow<'a> {
    data: &'a [f64],
    rank: usize,
    col0: usize,
    width: usize,
}

impl RowWindow for GatherWindow<'_> {
    #[inline]
    fn window(&self, r: usize) -> &[f64] {
        &self.data[r * self.rank + self.col0..][..self.width]
    }
}

/// Column window over the original factor with the block origin folded
/// in: row `r` is global row `base + r`. Used for blocks too sparse to
/// amortize a gather.
struct ShiftedWindow<'a> {
    m: &'a DenseMatrix,
    base: usize,
    col0: usize,
    width: usize,
}

impl RowWindow for ShiftedWindow<'_> {
    #[inline]
    fn window(&self, r: usize) -> &[f64] {
        &self.m.row(self.base + r)[self.col0..self.col0 + self.width]
    }
}

/// Copies rows `[base, base + len)` of `m` into `buf`, contiguously.
fn gather_rows(buf: &mut Vec<f64>, m: &DenseMatrix, base: usize, len: usize) {
    buf.clear();
    buf.reserve(len * m.cols());
    for r in 0..len {
        buf.extend_from_slice(m.row(base + r));
    }
}

/// Executes one BCOO block: entries `offs`/`vals` (block-local, sorted by
/// `(a, k, j)`), factor matrices `b`/`c` (kernel modes 2 and 3), block
/// `origin` and bounds `spans` per kernel axis, and the owning task's
/// output rows starting at global row `row0`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_block_bcoo<T: LocalOff>(
    offs: &[[T; NMODES]],
    vals: &[f64],
    b: &DenseMatrix,
    c: &DenseMatrix,
    origin: [usize; NMODES],
    spans: [usize; NMODES],
    out_rows: &mut [f64],
    row0: usize,
    rank: usize,
    strip_width: usize,
    scratch: &mut GatherBuf,
) {
    let row_base = origin[0] - row0;
    // A gather pays one row copy per sub-row and is repaid by every strip
    // re-reading the gathered rows; it wins once the block has at least as
    // many nonzeros as sub-rows.
    let gather = offs.len() >= spans[1] + spans[2];
    if gather {
        gather_rows(&mut scratch.b, b, origin[1], spans[1]);
        gather_rows(&mut scratch.c, c, origin[2], spans[2]);
    }
    let mut col0 = 0;
    while col0 < rank {
        let width = strip_width.max(1).min(rank - col0);
        if gather {
            let bw = GatherWindow {
                data: &scratch.b,
                rank,
                col0,
                width,
            };
            let cw = GatherWindow {
                data: &scratch.c,
                rank,
                col0,
                width,
            };
            bcoo_strip(offs, vals, &bw, &cw, out_rows, row_base, rank, col0, width);
        } else {
            let bw = ShiftedWindow {
                m: b,
                base: origin[1],
                col0,
                width,
            };
            let cw = ShiftedWindow {
                m: c,
                base: origin[2],
                col0,
                width,
            };
            bcoo_strip(offs, vals, &bw, &cw, out_rows, row_base, rank, col0, width);
        }
        col0 += width;
    }
}

/// One `[col0, col0 + width)` strip over one block. Entries are scanned in
/// `(a, k, j)` order, so consecutive entries sharing `(a, k)` form a fiber
/// run that reuses a single register accumulator per [`REG_BLOCK`] chunk —
/// the same structure as [`super::process_block_rankb`], but driven by the
/// local-offset slab instead of a compressed fiber index.
#[allow(clippy::too_many_arguments)]
fn bcoo_strip<T: LocalOff, B: RowWindow, C: RowWindow>(
    offs: &[[T; NMODES]],
    vals: &[f64],
    bw: &B,
    cw: &C,
    out_rows: &mut [f64],
    row_base: usize,
    rank: usize,
    col0: usize,
    width: usize,
) {
    let mut n = 0;
    while n < offs.len() {
        let (la, lk) = (offs[n][0].idx(), offs[n][2].idx());
        let mut end = n + 1;
        while end < offs.len() && offs[end][0].idx() == la && offs[end][2].idx() == lk {
            end += 1;
        }
        let crow = cw.window(lk);
        let obase = (row_base + la) * rank + col0;
        let mut col = 0;
        // full 16-wide register chunks
        while col + REG_BLOCK <= width {
            let mut reg = [0.0f64; REG_BLOCK];
            for m in n..end {
                let v = vals[m];
                let bchunk = reg_chunk(bw.window(offs[m][1].idx()), col);
                for l in 0..REG_BLOCK {
                    reg[l] += v * bchunk[l];
                }
            }
            let cchunk = reg_chunk(crow, col);
            let orow = &mut out_rows[obase + col..obase + col + REG_BLOCK];
            for l in 0..REG_BLOCK {
                orow[l] += reg[l] * cchunk[l];
            }
            col += REG_BLOCK;
        }
        // remainder chunk (< 16 columns)
        if col < width {
            let w = width - col;
            let mut reg = [0.0f64; REG_BLOCK];
            for m in n..end {
                let v = vals[m];
                let brow = &bw.window(offs[m][1].idx())[col..col + w];
                for (l, &bv) in brow.iter().enumerate() {
                    reg[l] += v * bv;
                }
            }
            let orow = &mut out_rows[obase + col..obase + col + w];
            for (l, o) in orow.iter_mut().enumerate() {
                *o += reg[l] * crow[col + l];
            }
        }
        n = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::dense_mttkrp;
    use tenblock_tensor::bcoo::{BcooOffsets, BcooTensor};
    use tenblock_tensor::gen::uniform_tensor;
    use tenblock_tensor::{CooTensor, DenseMatrix};

    /// Runs the micro-kernel over every block of `t` serially.
    fn run_bcoo(
        t: &BcooTensor,
        b: &DenseMatrix,
        c: &DenseMatrix,
        rank: usize,
        strip: usize,
    ) -> Vec<f64> {
        let dims = t.dims();
        let perm = t.perm();
        let mut out = vec![0.0; dims[perm[0]] * rank];
        let mut scratch = GatherBuf::default();
        for i in 0..t.n_blocks() {
            let blk = t.block(i);
            let range = t.block_range(i);
            let origin = blk.origin.map(|o| o as usize);
            let spans = [t.block_span(i, 0), t.block_span(i, 1), t.block_span(i, 2)];
            let vals = &t.vals()[range.clone()];
            match t.offsets() {
                BcooOffsets::U8(o) => process_block_bcoo(
                    &o[range],
                    vals,
                    b,
                    c,
                    origin,
                    spans,
                    &mut out,
                    0,
                    rank,
                    strip,
                    &mut scratch,
                ),
                BcooOffsets::U16(o) => process_block_bcoo(
                    &o[range],
                    vals,
                    b,
                    c,
                    origin,
                    spans,
                    &mut out,
                    0,
                    rank,
                    strip,
                    &mut scratch,
                ),
                BcooOffsets::U32(o) => process_block_bcoo(
                    &o[range],
                    vals,
                    b,
                    c,
                    origin,
                    spans,
                    &mut out,
                    0,
                    rank,
                    strip,
                    &mut scratch,
                ),
            }
        }
        out
    }

    fn factors(dims: [usize; 3], rank: usize) -> Vec<DenseMatrix> {
        (0..3)
            .map(|m| {
                DenseMatrix::from_fn(dims[m], rank, |r, c| {
                    (((r * 31 + c * 7 + m * 3) % 23) as f64 - 11.0) * 0.09
                })
            })
            .collect()
    }

    #[test]
    fn bcoo_micro_kernel_matches_dense_reference() {
        let x = uniform_tensor([14, 11, 9], 400, 21);
        for rank in [5, 16, 37] {
            let fs_owned = factors(x.dims(), rank);
            let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
            for mode in 0..3 {
                let expect = dense_mttkrp(&x, &fs, mode);
                let perm = tenblock_tensor::coo::perm_for_mode(mode);
                let t = BcooTensor::from_coo(&x, mode, [3.min(x.dims()[perm[0]]), 2, 2]);
                let b = fs[perm[1]];
                let c = fs[perm[2]];
                for strip in [4, 16, rank] {
                    let out = run_bcoo(&t, b, c, rank, strip);
                    for (r, got) in out.chunks(rank.max(1)).enumerate() {
                        for (l, &g) in got.iter().enumerate() {
                            assert!(
                                (g - expect.get(r, l)).abs() < 1e-9,
                                "mode {mode} rank {rank} strip {strip} at ({r},{l})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bcoo_micro_kernel_gather_and_direct_paths_agree() {
        // Dense corner (gather path) + isolated far entries (direct path)
        // in the same tensor: both paths must produce the same totals as
        // the reference.
        let mut entries = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                for k in 0..6u32 {
                    entries.push(tenblock_tensor::Entry::new(
                        i,
                        j,
                        k,
                        (i + 2 * j + k) as f64 * 0.1,
                    ));
                }
            }
        }
        entries.push(tenblock_tensor::Entry::new(30, 30, 30, 2.5));
        entries.push(tenblock_tensor::Entry::new(31, 29, 28, -1.5));
        let x = CooTensor::from_entries([32, 32, 32], entries);
        let rank = 17;
        let fs_owned = factors(x.dims(), rank);
        let fs: [&DenseMatrix; 3] = [&fs_owned[0], &fs_owned[1], &fs_owned[2]];
        let expect = dense_mttkrp(&x, &fs, 0);
        let t = BcooTensor::from_coo(&x, 0, [4, 4, 4]);
        let out = run_bcoo(&t, fs[1], fs[2], rank, 16);
        for r in 0..32 {
            for l in 0..rank {
                assert!(
                    (out[r * rank + l] - expect.get(r, l)).abs() < 1e-9,
                    "({r},{l})"
                );
            }
        }
    }
}
