//! The BCOO kernel: block-native storage plus the register-tiled dense
//! micro-kernel.
//!
//! This is Section V-A turned from an iteration order into a data layout:
//! the tensor lives in a [`BcooTensor`] (sorted block table, byte-wide
//! local offsets, contiguous value slab), and each block is executed by
//! [`process_block_bcoo`] — factor sub-rows gathered once per block, rank
//! tiled in `REG_BLOCK`-wide strips, no global index decode in the inner
//! loop. Slice-axis block rows write disjoint output rows and run in
//! parallel under rayon, exactly like the MB kernel.

use super::micro::{process_block_bcoo, GatherBuf};
use crate::block::split_rows_by_bounds;
use crate::checked::{bcoo_row_write_sets, push_oracle};
use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use rayon::prelude::*;
use tenblock_check::{write_set_violations, GridBlock, RaceReport};
use tenblock_obs::KernelCounters;
use tenblock_tensor::bcoo::BcooOffsets;
use tenblock_tensor::{BcooTensor, CooTensor, DenseMatrix, NMODES};

/// BCOO kernel for one mode.
pub struct BcooKernel {
    mode: usize,
    t: BcooTensor,
    strip_width: usize,
    exec: ExecPolicy,
}

impl BcooKernel {
    /// Converts `coo` into block-native form (`grid` blocks per kernel
    /// axis) for the mode-`mode` MTTKRP, with `strip_width`-column rank
    /// strips (0 means whole-rank).
    pub fn new(coo: &CooTensor, mode: usize, grid: [usize; NMODES], strip_width: usize) -> Self {
        Self::from_tensor(BcooTensor::from_coo(coo, mode, grid), strip_width)
    }

    /// Wraps an already-converted tensor.
    pub fn from_tensor(t: BcooTensor, strip_width: usize) -> Self {
        BcooKernel {
            mode: t.perm()[0],
            t,
            strip_width: if strip_width == 0 {
                usize::MAX
            } else {
                strip_width
            },
            exec: ExecPolicy::serial(),
        }
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The underlying block-native tensor.
    pub fn tensor(&self) -> &BcooTensor {
        &self.t
    }

    /// Runs the grid-blocks oracle over the decoded block table: every
    /// decoded entry inside its block's bounds box, blocks correctly
    /// placed, nonzeros conserved.
    fn validate_blocks(&self) -> Result<(), tenblock_check::OracleError> {
        let dims = self.t.dims();
        let perm = self.t.perm();
        let dims_kernel = [dims[perm[0]], dims[perm[1]], dims[perm[2]]];
        let blocks: Vec<GridBlock> = (0..self.t.n_blocks())
            .map(|i| GridBlock {
                coords: self.t.block(i).coords.map(|c| c as usize),
                entries: self.t.block_kernel_coords(i),
            })
            .collect();
        tenblock_check::check_grid_blocks(
            dims_kernel,
            [self.t.bounds(0), self.t.bounds(1), self.t.bounds(2)],
            self.t.nnz(),
            &blocks,
        )
    }

    /// Verifies the block-table invariants (oracle) and, when parallel,
    /// the block-row write sets: each slice-axis row's bounds-derived
    /// claim against the rows its blocks actually decode to.
    fn verify(&self, out_rows: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        push_oracle(&mut violations, self.validate_blocks());
        if self.exec.is_parallel() {
            let sets = bcoo_row_write_sets(&self.t);
            violations.extend(write_set_violations(out_rows, &sets));
        }
        RaceReport::check("BCOO", violations)
    }

    /// Section IV counters for this layout: fiber runs summed over blocks,
    /// with the model's tensor-stream bytes replaced by the bytes the
    /// block-native slab actually streams (the layout's whole point).
    fn counters(&self, rank: usize) -> KernelCounters {
        let strips = if rank == 0 {
            0
        } else {
            rank.div_ceil(self.strip_width.min(rank)) as u64
        };
        let mut counters = KernelCounters::fibered_model(
            self.t.nnz() as u64,
            self.t.n_fibers() as u64,
            rank as u64,
        )
        .with_blocks(self.t.n_blocks() as u64)
        .with_strips(strips);
        counters.tensor_bytes = self.t.actual_bytes() as u64;
        counters
    }
}

impl MttkrpKernel for BcooKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let perm = self.t.perm();
        let b = factors[perm[1]];
        let c = factors[perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.t.dims()[perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows()) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/BCOO");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.counters(&self.counters(rank));
        }
        out.fill_zero();

        let bounds0 = self.t.bounds(0).to_vec();
        let chunks = split_rows_by_bounds(out.as_mut_slice(), &bounds0, rank);
        let work = |(a, (row0, rows)): (usize, (usize, &mut [f64]))| {
            let mut scratch = GatherBuf::default();
            for i in self.t.row_blocks(a) {
                let blk = self.t.block(i);
                let range = self.t.block_range(i);
                let origin = blk.origin.map(|o| o as usize);
                let spans = [
                    self.t.block_span(i, 0),
                    self.t.block_span(i, 1),
                    self.t.block_span(i, 2),
                ];
                let vals = &self.t.vals()[range.clone()];
                match self.t.offsets() {
                    BcooOffsets::U8(o) => process_block_bcoo(
                        &o[range],
                        vals,
                        b,
                        c,
                        origin,
                        spans,
                        rows,
                        row0,
                        rank,
                        self.strip_width,
                        &mut scratch,
                    ),
                    BcooOffsets::U16(o) => process_block_bcoo(
                        &o[range],
                        vals,
                        b,
                        c,
                        origin,
                        spans,
                        rows,
                        row0,
                        rank,
                        self.strip_width,
                        &mut scratch,
                    ),
                    BcooOffsets::U32(o) => process_block_bcoo(
                        &o[range],
                        vals,
                        b,
                        c,
                        origin,
                        spans,
                        rows,
                        row0,
                        rank,
                        self.strip_width,
                        &mut scratch,
                    ),
                }
            }
        };
        if self.exec.is_parallel() {
            chunks.into_par_iter().enumerate().for_each(work);
        } else {
            chunks.into_iter().enumerate().for_each(work);
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "BCOO"
    }

    fn tensor_bytes(&self) -> usize {
        self.t.actual_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::dense_mttkrp;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};

    fn factors_for(x: &CooTensor, rank: usize) -> Vec<DenseMatrix> {
        x.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 17 + c * 3 + m) % 19) as f64 - 9.0) * 0.07
                })
            })
            .collect()
    }

    #[test]
    fn bcoo_matches_dense_reference_various_grids() {
        let x = uniform_tensor([13, 17, 11], 250, 77);
        for rank in [5, 16, 17] {
            let factors = factors_for(&x, rank);
            let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
            for mode in 0..3 {
                let expect = dense_mttkrp(&x, &fs, mode);
                for grid in [[1, 1, 1], [2, 2, 2], [4, 1, 3], [3, 3, 3]] {
                    let k = BcooKernel::new(&x, mode, grid, 16);
                    let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
                    k.mttkrp(&fs, &mut out);
                    assert!(
                        expect.approx_eq(&out, 1e-10),
                        "mode {mode} rank {rank} grid {grid:?} mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn bcoo_parallel_equals_sequential_on_clustered_data() {
        let cfg = ClusteredConfig::new([120, 90, 60], 4_000);
        let x = clustered_tensor(&cfg, 8);
        let rank = 9;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let k_seq = BcooKernel::new(&x, 0, [4, 3, 2], 8);
        let k_par = BcooKernel::new(&x, 0, [4, 3, 2], 8).with_exec(ExecPolicy::auto());
        let mut a = DenseMatrix::zeros(120, rank);
        let mut b = DenseMatrix::zeros(120, rank);
        k_seq.mttkrp(&fs, &mut a);
        k_par.mttkrp(&fs, &mut b);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn bcoo_checked_execution_passes_on_healthy_blocks() {
        let x = uniform_tensor([14, 11, 9], 600, 42);
        let rank = 12;
        let factors = factors_for(&x, rank);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let expect = dense_mttkrp(&x, &fs, mode);
            let k = BcooKernel::new(&x, mode, [3, 2, 2], 8).with_exec(ExecPolicy::checked());
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp_checked(&fs, &mut out)
                .unwrap_or_else(|report| panic!("mode {mode} refused: {report}"));
            assert!(expect.approx_eq(&out, 1e-9), "mode {mode} diverged");
        }
    }

    #[test]
    fn bcoo_tensor_bytes_undercut_coo_on_clustered_data() {
        let cfg = ClusteredConfig::new([200, 200, 200], 20_000);
        let x = clustered_tensor(&cfg, 3);
        let k = BcooKernel::new(&x, 0, [4, 4, 4], 16);
        assert!(
            k.tensor_bytes() < x.actual_bytes(),
            "BCOO {} bytes vs COO {} bytes",
            k.tensor_bytes(),
            x.actual_bytes()
        );
        // The recorded counters advertise the same reduced stream.
        let counters = k.counters(16);
        assert_eq!(counters.tensor_bytes as usize, k.tensor_bytes());
        assert!(counters.blocks as usize == k.tensor().n_blocks());
    }

    #[test]
    fn bcoo_rank_zero_and_empty_tensors_are_fine() {
        let x = CooTensor::empty([4, 5, 6]);
        let k = BcooKernel::new(&x, 0, [2, 2, 2], 16);
        let factors = factors_for(&x, 0);
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        let mut out = DenseMatrix::zeros(4, 0);
        k.mttkrp(&fs, &mut out);
        let x2 = uniform_tensor([6, 6, 6], 50, 1);
        let k2 = BcooKernel::new(&x2, 1, [2, 2, 2], 16);
        let f2 = factors_for(&x2, 0);
        let fs2: [&DenseMatrix; 3] = [&f2[0], &f2[1], &f2[2]];
        let mut out2 = DenseMatrix::zeros(6, 0);
        k2.mttkrp(&fs2, &mut out2);
    }
}
