//! The coordinate-format MTTKRP kernel (Section III-C1).
//!
//! For each nonzero `t = (i, j, k, v)`, the Khatri-Rao row is formed on the
//! fly as the Hadamard product of `B[j]` and `C[k]`, scaled by `v`, and
//! accumulated into `A[i]`. Compared to the SPLATT kernel this performs one
//! multiply-per-factor per nonzero (no per-fiber factoring), which is the
//! extra work Algorithm 1 saves.

use crate::exec::ExecPolicy;
use crate::kernel::MttkrpKernel;
use tenblock_check::{write_set_violations, RaceReport, WriteSet};
use tenblock_obs::KernelCounters;
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, DenseMatrix, Idx, NMODES};

/// COO MTTKRP kernel for one mode.
pub struct CooKernel {
    mode: usize,
    perm: [usize; NMODES],
    dims: [usize; NMODES],
    /// Entries re-indexed to kernel axes: `(out_row, j, k, val)`, sorted by
    /// `out_row` so output writes are sequential.
    entries: Vec<(Idx, Idx, Idx, f64)>,
    exec: ExecPolicy,
}

impl CooKernel {
    /// Prepares the kernel: re-indexes and sorts the nonzeros by output row.
    pub fn new(coo: &CooTensor, mode: usize) -> Self {
        let perm = perm_for_mode(mode);
        let mut entries: Vec<(Idx, Idx, Idx, f64)> = coo
            .entries()
            .iter()
            .map(|e| (e.idx[perm[0]], e.idx[perm[1]], e.idx[perm[2]], e.val))
            .collect();
        entries.sort_unstable_by_key(|&(i, j, k, _)| (i, k, j));
        CooKernel {
            mode,
            perm,
            dims: coo.dims(),
            entries,
            exec: ExecPolicy::serial(),
        }
    }

    /// Sets the execution policy. The COO kernel has no parallel path; only
    /// the recorder is used.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// The COO kernel runs one serial task owning the whole output; the
    /// check degenerates to a bounds check on the entry rows.
    fn verify(&self, out_rows: usize) -> Result<(), RaceReport> {
        let set = WriteSet::new(0, 0..out_rows)
            .touch_all(self.entries.iter().map(|&(i, _, _, _)| i as usize));
        RaceReport::check("COO", write_set_violations(out_rows, &[set]))
    }
}

impl MttkrpKernel for CooKernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; NMODES], out: &mut DenseMatrix) {
        let b = factors[self.perm[1]];
        let c = factors[self.perm[2]];
        let rank = out.cols();
        assert_eq!(
            out.rows(),
            self.dims[self.perm[0]],
            "output rows != mode length"
        );
        assert_eq!(b.cols(), rank, "factor rank mismatch");
        assert_eq!(c.cols(), rank, "factor rank mismatch");
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows()) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/COO");
        if span.active() {
            span.annotate_num("mode", self.mode as f64);
            span.counters(&KernelCounters::coo_model(
                self.entries.len() as u64,
                rank as u64,
            ));
        }
        out.fill_zero();
        for &(i, j, k, v) in &self.entries {
            let brow = b.row(j as usize);
            let crow = c.row(k as usize);
            let orow = out.row_mut(i as usize);
            for ((o, &bv), &cv) in orow.iter_mut().zip(brow).zip(crow) {
                *o += v * bv * cv;
            }
        }
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.verify(out.rows())?;
        self.mttkrp(factors, out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.mode
    }

    fn name(&self) -> &'static str {
        "COO"
    }

    fn tensor_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(Idx, Idx, Idx, f64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttkrp::dense_mttkrp;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn matches_dense_reference_all_modes() {
        let x = uniform_tensor([8, 9, 10], 120, 21);
        let rank = 5;
        let factors: Vec<DenseMatrix> = x
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| DenseMatrix::from_fn(d, rank, |r, c| ((r + m) * (c + 1)) as f64 * 0.1))
            .collect();
        let fs: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let expect = dense_mttkrp(&x, &fs, mode);
            let k = CooKernel::new(&x, mode);
            let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
            k.mttkrp(&fs, &mut out);
            assert!(expect.approx_eq(&out, 1e-10), "mode {mode} mismatch");
        }
    }

    #[test]
    fn empty_tensor_yields_zero() {
        let x = CooTensor::empty([4, 4, 4]);
        let f = DenseMatrix::from_fn(4, 3, |r, c| (r + c) as f64);
        let fs: [&DenseMatrix; 3] = [&f, &f, &f];
        let k = CooKernel::new(&x, 1);
        let mut out = DenseMatrix::from_fn(4, 3, |_, _| 99.0);
        k.mttkrp(&fs, &mut out);
        assert_eq!(out.as_slice().iter().sum::<f64>(), 0.0);
    }

    #[test]
    #[should_panic(expected = "output rows")]
    fn wrong_output_shape_panics() {
        let x = uniform_tensor([4, 5, 6], 10, 1);
        let f0 = DenseMatrix::zeros(4, 2);
        let f1 = DenseMatrix::zeros(5, 2);
        let f2 = DenseMatrix::zeros(6, 2);
        let k = CooKernel::new(&x, 0);
        let mut bad = DenseMatrix::zeros(5, 2);
        k.mttkrp(&[&f0, &f1, &f2], &mut bad);
    }
}
