//! N-mode MTTKRP over the CSF format — the "trivially extended to
//! higher-order data" path the paper describes (Section III-C), with rank
//! blocking carried over from Algorithm 2.
//!
//! The root-mode MTTKRP factors the Khatri-Rao product along the CSF tree:
//! a leaf contributes `val · F_leaf[j]`, an internal node contributes the
//! Hadamard product of its factor row with the sum of its children, and the
//! root row of the output accumulates the sums of its level-1 children —
//! the order-N generalization of Algorithm 1's per-fiber factoring.

use crate::checked::{csf_root_write_sets, effective_strip_plan, push_oracle};
use crate::exec::ExecPolicy;
use tenblock_check::{check_strip_plan, write_set_violations, RaceReport};
use tenblock_obs::KernelCounters;
use tenblock_tensor::{CsfTensor, DenseMatrix, NdCooTensor};

/// N-mode MTTKRP kernel over CSF, producing the root-mode factor.
pub struct CsfKernel {
    t: CsfTensor,
    /// Rank-blocking strip width in columns (`usize::MAX` = single strip).
    strip_width: usize,
    /// Threading policy and observability recorder. Root nodes own disjoint
    /// output rows, so parallel workers need no synchronization.
    exec: ExecPolicy,
}

impl CsfKernel {
    /// Builds the CSF representation rooted at `mode`.
    pub fn new(x: &NdCooTensor, mode: usize) -> Self {
        CsfKernel {
            t: CsfTensor::for_mode(x, mode),
            strip_width: usize::MAX,
            exec: ExecPolicy::serial(),
        }
    }

    /// Wraps an existing CSF tensor.
    pub fn from_csf(t: CsfTensor) -> Self {
        CsfKernel {
            t,
            strip_width: usize::MAX,
            exec: ExecPolicy::serial(),
        }
    }

    /// Sets the execution policy (threading + recorder).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Enables rank blocking with the given strip width (Section V-B
    /// applied to the higher-order kernel: the whole tree is traversed once
    /// per strip, shrinking every level's factor working set).
    pub fn with_strip_width(mut self, width: usize) -> Self {
        assert!(width > 0, "strip width must be positive");
        self.strip_width = width;
        self
    }

    /// The root (output) mode.
    pub fn mode(&self) -> usize {
        self.t.perm()[0]
    }

    /// The underlying CSF tensor.
    pub fn tensor(&self) -> &CsfTensor {
        &self.t
    }

    /// Verifies the strip plan and, when parallel, the root-chunk write
    /// sets (each chunk's buffer split against the root fids it processes).
    fn verify(&self, out_rows: usize, rank: usize) -> Result<(), RaceReport> {
        let mut violations = Vec::new();
        push_oracle(
            &mut violations,
            check_strip_plan(
                rank,
                &effective_strip_plan(rank, self.strip_width),
                crate::mttkrp::REG_BLOCK,
            ),
        );
        if self.exec.is_parallel() && self.t.nnz() > 0 {
            let n_roots = self.t.n_nodes(0);
            if n_roots > 0 {
                let chunk = self.exec.chunk_size(n_roots);
                let sets = csf_root_write_sets(&self.t, out_rows, chunk);
                violations.extend(write_set_violations(out_rows, &sets));
            }
        }
        RaceReport::check("CSF", violations)
    }

    /// Computes the root-mode MTTKRP. `factors` are indexed by original
    /// mode (the root slot is ignored); `out` must be
    /// `dims[root] x R`.
    pub fn mttkrp(&self, factors: &[&DenseMatrix], out: &mut DenseMatrix) {
        let order = self.t.order();
        assert_eq!(factors.len(), order, "need one factor per mode");
        let rank = out.cols();
        let root_mode = self.t.perm()[0];
        assert_eq!(
            out.rows(),
            self.t.dims()[root_mode],
            "output rows != root mode length"
        );
        for (m, f) in factors.iter().enumerate() {
            if m != root_mode {
                assert_eq!(f.cols(), rank, "factor {m} rank mismatch");
                assert_eq!(f.rows(), self.t.dims()[m], "factor {m} row mismatch");
            }
        }
        if self.exec.is_checked() {
            if let Err(report) = self.verify(out.rows(), rank) {
                panic!("checked execution refused launch: {report}"); // deliberate fail-stop on a racy plan — lint: allow(panic-reach)
            }
        }
        let span = self.exec.recorder.span("mttkrp/CSF");
        if span.active() {
            // Parent-of-leaf nodes are the CSF generalization of SPLATT's
            // fibers; root mode aside, 3-mode trees make this n_nodes(1).
            let fibers = if order >= 2 {
                self.t.n_nodes(order - 2)
            } else {
                self.t.nnz()
            };
            let strips = rank.div_ceil(self.strip_width.min(rank).max(1));
            span.annotate_num("mode", root_mode as f64);
            span.counters(
                &KernelCounters::fibered_model(self.t.nnz() as u64, fibers as u64, rank as u64)
                    .with_strips(strips as u64),
            );
        }
        out.fill_zero();
        if self.t.nnz() == 0 {
            return;
        }

        // order-2 degenerates to SpMV-like: leaf level is level 1
        let mut col0 = 0;
        while col0 < rank {
            let width = self.strip_width.min(rank - col0);
            self.strip_pass(factors, out, col0, width);
            col0 += width;
        }
    }

    /// One rank-strip pass over the whole tree.
    fn strip_pass(
        &self,
        factors: &[&DenseMatrix],
        out: &mut DenseMatrix,
        col0: usize,
        width: usize,
    ) {
        let n_roots = self.t.n_nodes(0);
        if n_roots == 0 {
            return;
        }
        let rank = out.cols();
        if !self.exec.is_parallel() {
            self.process_roots(
                0..n_roots,
                factors,
                out.as_mut_slice(),
                0,
                rank,
                col0,
                width,
            );
            return;
        }
        // Parallel: root fids are strictly increasing, so chunks of roots
        // own disjoint, ascending output-row ranges — split the buffer at
        // each chunk's first row.
        use rayon::prelude::*;
        let chunk = self.exec.chunk_size(n_roots);
        let starts: Vec<usize> = (0..n_roots).step_by(chunk).collect();
        let mut jobs: Vec<(std::ops::Range<usize>, usize, &mut [f64])> = Vec::new();
        let mut buf = out.as_mut_slice();
        let mut consumed = 0usize;
        for (ci, &lo) in starts.iter().enumerate() {
            let hi = (lo + chunk).min(n_roots);
            let row0 = self.t.fid(0, lo) as usize;
            let row_end = if ci + 1 < starts.len() {
                self.t.fid(0, starts[ci + 1]) as usize
            } else {
                buf.len() / rank + consumed
            };
            let (skip, rest) = buf.split_at_mut((row0 - consumed) * rank);
            let _ = skip;
            let (mine, rest) = rest.split_at_mut((row_end - row0) * rank);
            jobs.push((lo..hi, row0, mine));
            buf = rest;
            consumed = row_end;
        }
        jobs.into_par_iter().for_each(|(roots, row0, rows)| {
            self.process_roots(roots, factors, rows, row0, rank, col0, width);
        });
    }

    /// Processes a contiguous range of root nodes, writing into `out_buf`
    /// whose first row is global row `row0`.
    #[allow(clippy::too_many_arguments)]
    fn process_roots(
        &self,
        roots: std::ops::Range<usize>,
        factors: &[&DenseMatrix],
        out_buf: &mut [f64],
        row0: usize,
        rank: usize,
        col0: usize,
        width: usize,
    ) {
        let order = self.t.order();
        // per-level scratch for levels 1..order (level l stores the running
        // child sum of the currently open level-(l-1) node)
        let mut bufs: Vec<Vec<f64>> = (0..order).map(|_| vec![0.0; width]).collect();
        for root in roots {
            let row = self.t.fid(0, root) as usize - row0;
            let out_row = &mut out_buf[row * rank + col0..row * rank + col0 + width];
            if order == 1 {
                // degenerate: values sum straight into the output
                for o in out_row.iter_mut() {
                    *o += self.t.values()[root];
                }
                continue;
            }
            let (acc, rest) = bufs.split_at_mut(1);
            acc[0].fill(0.0);
            for child in self.t.children(0, root) {
                self.subtree(1, child, factors, col0, width, &mut acc[0], rest);
            }
            for (o, &a) in out_row.iter_mut().zip(acc[0].iter()) {
                *o += a;
            }
        }
    }

    /// Adds `subtree_sum(node at level l)` into `into`. `rest` holds the
    /// scratch buffers for levels `l+1..order`.
    #[allow(clippy::too_many_arguments)]
    fn subtree(
        &self,
        l: usize,
        node: usize,
        factors: &[&DenseMatrix],
        col0: usize,
        width: usize,
        into: &mut [f64],
        rest: &mut [Vec<f64>],
    ) {
        let frow = &factors[self.t.perm()[l]].row(self.t.fid(l, node) as usize)[col0..col0 + width];
        if l == self.t.order() - 1 {
            let v = self.t.values()[node];
            for (o, &f) in into.iter_mut().zip(frow) {
                *o += v * f;
            }
        } else {
            let (acc, deeper) = rest.split_at_mut(1);
            acc[0].fill(0.0);
            for child in self.t.children(l, node) {
                self.subtree(l + 1, child, factors, col0, width, &mut acc[0], deeper);
            }
            for ((o, &a), &f) in into.iter_mut().zip(acc[0].iter()).zip(frow) {
                *o += a * f;
            }
        }
    }
}

/// Adapter exposing a 3-mode [`CsfKernel`] through the
/// [`crate::kernel::MttkrpKernel`] trait, so CSF can be used anywhere the
/// SPLATT-family kernels can (CPD, benches, the registry).
pub struct Csf3Kernel {
    inner: CsfKernel,
}

impl Csf3Kernel {
    /// Builds the CSF representation of a 3-mode tensor rooted at `mode`.
    pub fn new(coo: &tenblock_tensor::CooTensor, mode: usize) -> Self {
        let nd = NdCooTensor::from_coo3(coo);
        Csf3Kernel {
            inner: CsfKernel::new(&nd, mode),
        }
    }

    /// Enables rank blocking on the wrapped kernel.
    pub fn with_strip_width(mut self, width: usize) -> Self {
        self.inner = self.inner.with_strip_width(width);
        self
    }

    /// Sets the execution policy on the wrapped kernel.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.inner = self.inner.with_exec(exec);
        self
    }
}

impl crate::kernel::MttkrpKernel for Csf3Kernel {
    fn mttkrp(&self, factors: &[&DenseMatrix; tenblock_tensor::NMODES], out: &mut DenseMatrix) {
        self.inner.mttkrp(&factors[..], out);
    }

    fn mttkrp_checked(
        &self,
        factors: &[&DenseMatrix; tenblock_tensor::NMODES],
        out: &mut DenseMatrix,
    ) -> Result<(), RaceReport> {
        self.inner.verify(out.rows(), out.cols())?;
        self.inner.mttkrp(&factors[..], out);
        Ok(())
    }

    fn mode(&self) -> usize {
        self.inner.mode()
    }

    fn name(&self) -> &'static str {
        "CSF"
    }

    fn tensor_bytes(&self) -> usize {
        self.inner.tensor().actual_bytes()
    }
}

/// Brute-force N-mode MTTKRP reference: per-entry products (COO style).
pub fn nd_mttkrp_reference(x: &NdCooTensor, factors: &[&DenseMatrix], mode: usize) -> DenseMatrix {
    let rank = factors[(mode + 1) % x.order()].cols();
    let mut out = DenseMatrix::zeros(x.dims()[mode], rank);
    for n in 0..x.nnz() {
        let c = x.coord(n);
        let v = x.value(n);
        let orow = out.row_mut(c[mode] as usize);
        for (r, slot) in orow.iter_mut().enumerate() {
            let mut p = v;
            for (m, f) in factors.iter().enumerate() {
                if m != mode {
                    p *= f.get(c[m] as usize, r);
                }
            }
            *slot += p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::nd::uniform_nd;

    fn factors_for(dims: &[usize], rank: usize) -> Vec<DenseMatrix> {
        dims.iter()
            .enumerate()
            .map(|(m, &d)| {
                DenseMatrix::from_fn(d, rank, |r, c| {
                    (((r * 13 + c * 5 + m * 3) % 17) as f64 - 8.0) * 0.1
                })
            })
            .collect()
    }

    #[test]
    fn matches_reference_orders_3_to_5() {
        for order in [3usize, 4, 5] {
            let dims: Vec<usize> = (0..order).map(|m| 5 + 2 * m).collect();
            let x = uniform_nd(&dims, 120, order as u64 * 7);
            let rank = 9;
            let factors = factors_for(&dims, rank);
            let frefs: Vec<&DenseMatrix> = factors.iter().collect();
            for mode in 0..order {
                let expect = nd_mttkrp_reference(&x, &frefs, mode);
                let k = CsfKernel::new(&x, mode);
                let mut out = DenseMatrix::zeros(dims[mode], rank);
                k.mttkrp(&frefs, &mut out);
                assert!(
                    expect.approx_eq(&out, 1e-9),
                    "order {order} mode {mode}: max diff {}",
                    expect.max_abs_diff(&out)
                );
            }
        }
    }

    #[test]
    fn rank_blocked_matches_unblocked() {
        let dims = vec![8, 9, 10, 11];
        let x = uniform_nd(&dims, 200, 3);
        let rank = 24;
        let factors = factors_for(&dims, rank);
        let frefs: Vec<&DenseMatrix> = factors.iter().collect();
        let full = CsfKernel::new(&x, 0);
        let mut a = DenseMatrix::zeros(8, rank);
        full.mttkrp(&frefs, &mut a);
        for width in [1usize, 7, 16] {
            let strip = CsfKernel::new(&x, 0).with_strip_width(width);
            let mut b = DenseMatrix::zeros(8, rank);
            strip.mttkrp(&frefs, &mut b);
            assert!(a.approx_eq(&b, 1e-10), "width {width} mismatch");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let dims = vec![40, 30, 20, 10];
        let x = uniform_nd(&dims, 1_500, 17);
        let rank = 12;
        let factors = factors_for(&dims, rank);
        let frefs: Vec<&DenseMatrix> = factors.iter().collect();
        for width in [usize::MAX, 8] {
            let seq = CsfKernel::new(&x, 0).with_strip_width(width.min(rank));
            let par = CsfKernel::new(&x, 0)
                .with_strip_width(width.min(rank))
                .with_exec(ExecPolicy::auto());
            let mut a = DenseMatrix::zeros(40, rank);
            let mut b = DenseMatrix::zeros(40, rank);
            seq.mttkrp(&frefs, &mut a);
            par.mttkrp(&frefs, &mut b);
            assert!(a.approx_eq(&b, 1e-12), "width {width} parallel mismatch");
        }
    }

    #[test]
    fn csf3_matches_splatt_kernel() {
        use crate::kernel::MttkrpKernel;
        use crate::mttkrp::SplattKernel;
        use tenblock_tensor::gen::uniform_tensor;
        let x3 = uniform_tensor([12, 10, 14], 300, 5);
        let nd = NdCooTensor::from_coo3(&x3);
        let rank = 8;
        let dims = [12usize, 10, 14];
        let factors = factors_for(&dims, rank);
        let frefs: Vec<&DenseMatrix> = factors.iter().collect();
        let fs3: [&DenseMatrix; 3] = [&factors[0], &factors[1], &factors[2]];
        for mode in 0..3 {
            let splatt = SplattKernel::new(&x3, mode);
            let mut a = DenseMatrix::zeros(dims[mode], rank);
            splatt.mttkrp(&fs3, &mut a);
            let csf = CsfKernel::new(&nd, mode);
            let mut b = DenseMatrix::zeros(dims[mode], rank);
            csf.mttkrp(&frefs, &mut b);
            assert!(
                a.approx_eq(&b, 1e-9),
                "mode {mode}: CSF disagrees with SPLATT"
            );
        }
    }

    #[test]
    fn empty_and_output_shape_checks() {
        let x = NdCooTensor::empty(vec![4, 5, 6, 7]);
        let factors = factors_for(&[4, 5, 6, 7], 3);
        let frefs: Vec<&DenseMatrix> = factors.iter().collect();
        let k = CsfKernel::new(&x, 2);
        let mut out = DenseMatrix::from_fn(6, 3, |_, _| 7.0);
        k.mttkrp(&frefs, &mut out);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
