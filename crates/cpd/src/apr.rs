//! CP-APR: Poisson tensor factorization via multiplicative updates
//! (Chi & Kolda, "On tensors, sparsity, and nonnegative factorizations" —
//! ref. [25] of the paper, the method behind its Poisson data sets).
//!
//! CP-APR fits a nonnegative Kruskal model `M = Σ_r λ_r a_r ∘ b_r ∘ c_r` to
//! count data `X` by minimizing the KL (Poisson log-likelihood) divergence
//! `Σ (m_i - x_i log m_i)`. The multiplicative-update (MU) variant updates
//! one factor at a time:
//!
//! ```text
//! Φ = (X ⊘ M)_(n) (⊙ of the other factors)      — a scaled MTTKRP
//! B_n ← B_n ⊛ Φ                                  — elementwise
//! ```
//!
//! where `X ⊘ M` divides each observed count by the current model value —
//! i.e. each MU step is exactly an MTTKRP whose nonzero values have been
//! pre-scaled, so the paper's blocking machinery applies verbatim. Factors
//! are kept column-stochastic with the weights in `λ`.

use crate::kruskal::KruskalTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tenblock_core::{build_kernel, KernelConfig, KernelKind};
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Options for [`cp_apr`].
#[derive(Debug, Clone)]
pub struct CpAprOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Outer iterations (each updates all modes once).
    pub max_iters: usize,
    /// Stop when the relative log-likelihood improvement falls below this.
    pub tol: f64,
    /// Floor preventing division by a vanished model value.
    pub eps: f64,
    /// MTTKRP kernel family used for the scaled MTTKRP.
    pub kernel: KernelKind,
    /// Blocking parameters for the kernel.
    pub kernel_cfg: KernelConfig,
    /// Seed for the random nonnegative initial factors.
    pub seed: u64,
}

impl CpAprOptions {
    /// Defaults: 50 iterations, SPLATT kernel.
    pub fn new(rank: usize) -> Self {
        CpAprOptions {
            rank,
            max_iters: 50,
            tol: 1e-6,
            eps: 1e-10,
            kernel: KernelKind::Splatt,
            kernel_cfg: KernelConfig::default(),
            seed: 0xc0ffee,
        }
    }
}

/// Result of a CP-APR run.
#[derive(Debug, Clone)]
pub struct CpAprResult {
    /// The nonnegative decomposition.
    pub model: KruskalTensor,
    /// Poisson log-likelihood after each outer iteration
    /// (`Σ x log m - Σ m`, higher is better).
    pub loglik_history: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// True if `tol` was reached.
    pub converged: bool,
}

/// Model values at the nonzero coordinates of `x` (λ folded in).
fn model_at_nonzeros(x: &CooTensor, lambda: &[f64], factors: &[DenseMatrix]) -> Vec<f64> {
    x.entries()
        .iter()
        .map(|e| {
            let (a, b, c) = (&factors[0], &factors[1], &factors[2]);
            let (i, j, k) = (e.idx[0] as usize, e.idx[1] as usize, e.idx[2] as usize);
            lambda
                .iter()
                .enumerate()
                .map(|(r, &l)| l * a.get(i, r) * b.get(j, r) * c.get(k, r))
                .sum()
        })
        .collect()
}

/// Poisson log-likelihood `Σ_nnz x log m - Σ_all m`; the second term is
/// `Σ_r λ_r Π_m (colsum of factor m)_r` for a Kruskal model.
fn loglik(x: &CooTensor, lambda: &[f64], factors: &[DenseMatrix], m_at: &[f64], eps: f64) -> f64 {
    let data_term: f64 = x
        .entries()
        .iter()
        .zip(m_at)
        .map(|(e, &m)| e.val * m.max(eps).ln())
        .sum();
    let mut mass = 0.0;
    for (r, &l) in lambda.iter().enumerate() {
        let mut p = l;
        for f in factors {
            let cs: f64 = (0..f.rows()).map(|row| f.get(row, r)).sum();
            p *= cs;
        }
        mass += p;
    }
    data_term - mass
}

/// Runs CP-APR (multiplicative updates) on the count tensor `x`.
pub fn cp_apr(x: &CooTensor, opts: &CpAprOptions) -> CpAprResult {
    assert!(opts.rank > 0, "rank must be positive");
    let rank = opts.rank;
    let dims = x.dims();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Column-stochastic nonnegative init; all mass in λ.
    let mut factors: Vec<DenseMatrix> = dims
        .iter()
        .map(|&d| {
            let mut f = DenseMatrix::from_fn(d, rank, |_, _| rng.random::<f64>() + 0.1);
            normalize_columns_l1(&mut f);
            f
        })
        .collect();
    let total: f64 = x.entries().iter().map(|e| e.val).sum();
    let mut lambda = vec![total / rank as f64; rank];

    // Kernels are built per outer iteration because the scaled tensor's
    // values change; coordinates don't, so the COO skeleton is reused.
    let mut scaled = x.clone();

    let mut loglik_history = Vec::new();
    let mut prev_ll = f64::NEG_INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..opts.max_iters {
        iterations += 1;
        for mode in 0..NMODES {
            // Fold λ into the mode being updated so Φ has the right scale.
            let mut bn = factors[mode].clone();
            for row in 0..bn.rows() {
                for (r, v) in bn.row_mut(row).iter_mut().enumerate() {
                    *v *= lambda[r];
                }
            }
            factors[mode] = bn;

            // X ⊘ M at the nonzeros (model uses the λ-folded factor, λ=1).
            let ones = vec![1.0; rank];
            let m_at = model_at_nonzeros(x, &ones, &factors);
            for ((sv, e), &m) in scaled.values_mut().zip(x.entries().iter()).zip(m_at.iter()) {
                *sv = e.val / m.max(opts.eps);
            }

            // Φ = scaled-MTTKRP for this mode.
            let kernel = build_kernel(opts.kernel, &scaled, mode, &opts.kernel_cfg);
            let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
            let mut phi = DenseMatrix::zeros(dims[mode], rank);
            kernel.mttkrp(&fs, &mut phi);

            // Multiplicative update, then re-normalize columns into λ.
            let bn = &mut factors[mode];
            for row in 0..bn.rows() {
                for (v, &p) in bn.row_mut(row).iter_mut().zip(phi.row(row)) {
                    *v *= p;
                }
            }
            lambda = normalize_columns_l1(bn);
        }

        let m_at = model_at_nonzeros(x, &lambda, &factors);
        let ll = loglik(x, &lambda, &factors, &m_at, opts.eps);
        loglik_history.push(ll);
        let denom = ll.abs().max(1.0);
        if (ll - prev_ll).abs() / denom < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    CpAprResult {
        model: KruskalTensor::new(lambda, factors),
        loglik_history,
        iterations,
        converged,
    }
}

/// Normalizes each column to unit L1 norm, returning the norms (zero
/// columns are reset to uniform to keep the simplex structure).
fn normalize_columns_l1(f: &mut DenseMatrix) -> Vec<f64> {
    let rank = f.cols();
    let rows = f.rows();
    let mut sums = vec![0.0; rank];
    for row in 0..rows {
        for (s, &v) in sums.iter_mut().zip(f.row(row)) {
            *s += v;
        }
    }
    for row in 0..rows {
        for (v, &s) in f.row_mut(row).iter_mut().zip(&sums) {
            if s > 0.0 {
                *v /= s;
            } else {
                *v = 1.0 / rows as f64;
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::{poisson_tensor, PoissonConfig};

    #[test]
    fn loglik_improves_monotonically() {
        let cfg = PoissonConfig::new([20, 20, 20], 3_000);
        let x = poisson_tensor(&cfg, 7);
        let mut opts = CpAprOptions::new(4);
        opts.max_iters = 25;
        opts.tol = 0.0;
        let result = cp_apr(&x, &opts);
        for w in result.loglik_history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn factors_stay_nonnegative_and_stochastic() {
        let cfg = PoissonConfig::new([15, 18, 12], 2_000);
        let x = poisson_tensor(&cfg, 3);
        let mut opts = CpAprOptions::new(3);
        opts.max_iters = 10;
        let result = cp_apr(&x, &opts);
        for f in &result.model.factors {
            for v in f.as_slice() {
                assert!(*v >= 0.0, "negative factor entry {v}");
            }
            // columns sum to 1
            for r in 0..f.cols() {
                let s: f64 = (0..f.rows()).map(|row| f.get(row, r)).sum();
                assert!((s - 1.0).abs() < 1e-8, "column {r} sums to {s}");
            }
        }
        for l in &result.model.lambda {
            assert!(*l >= 0.0);
        }
    }

    #[test]
    fn model_mass_approaches_data_mass() {
        // at a stationary point of Poisson MU, total model mass = total count
        let cfg = PoissonConfig::new([12, 12, 12], 1_500);
        let x = poisson_tensor(&cfg, 11);
        let total: f64 = x.entries().iter().map(|e| e.val).sum();
        let mut opts = CpAprOptions::new(4);
        opts.max_iters = 40;
        opts.tol = 0.0;
        let result = cp_apr(&x, &opts);
        let mass: f64 = result.model.lambda.iter().sum();
        assert!(
            (mass - total).abs() / total < 0.05,
            "model mass {mass} vs data mass {total}"
        );
    }

    #[test]
    fn blocked_kernel_gives_same_trajectory() {
        let cfg = PoissonConfig::new([25, 30, 20], 4_000);
        let x = poisson_tensor(&cfg, 5);
        let mut o1 = CpAprOptions::new(3);
        o1.max_iters = 8;
        o1.tol = 0.0;
        let mut o2 = o1.clone();
        o2.kernel = KernelKind::MbRankB;
        o2.kernel_cfg = KernelConfig {
            grid: [2, 3, 2],
            strip_width: 16,
            ..Default::default()
        };
        let r1 = cp_apr(&x, &o1);
        let r2 = cp_apr(&x, &o2);
        for (a, b) in r1.loglik_history.iter().zip(&r2.loglik_history) {
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1.0),
                "trajectories diverge: {a} vs {b}"
            );
        }
    }
}
