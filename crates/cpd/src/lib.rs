//! # tenblock-cpd
//!
//! Canonical polyadic decomposition (CP-ALS) built on the blocked MTTKRP
//! kernels of `tenblock-core`.
//!
//! MTTKRP is "the most expensive part of tensor decompositions"
//! (Section III-B of the paper); CPD is the application context that makes
//! the blocking work pay off: each mode's MTTKRP runs once per ALS
//! iteration, 10–1000s of times per decomposition, amortizing the one-time
//! blocking reorganization.
//!
//! * [`linalg`] — the small dense `R x R` algebra ALS needs (gram matrices,
//!   Hadamard products, Cholesky solves with a ridge fallback).
//! * [`kruskal`] — the Kruskal-form result (`λ` + factor matrices), norms,
//!   inner products and fit against a sparse tensor.
//! * [`als`] — the CP-ALS driver, generic over any
//!   [`tenblock_core::MttkrpKernel`].

//! * [`apr`] — CP-APR, the Poisson (KL-divergence) factorization of
//!   Chi & Kolda used on count data like the paper's Poisson tensors; each
//!   multiplicative update is a value-scaled MTTKRP, so the blocking
//!   kernels apply verbatim.

// Index-based loops are the clearer idiom for the numeric code in this
// crate (triangular solves, coordinate walks); silence the style lint.
#![allow(clippy::needless_range_loop)]

pub mod als;
pub mod als_stream;
pub mod apr;
pub mod gcp;
pub mod kruskal;
pub mod linalg;

pub use als::{CpAls, CpAlsOptions, CpAlsResult};
pub use als_stream::CpAlsStream;
pub use apr::{cp_apr, CpAprOptions, CpAprResult};
pub use gcp::{cp_gradient, cp_gradient_descent, GcpOptions, GcpResult};
pub use kruskal::KruskalTensor;
