//! CP-ALS: alternating least squares for the canonical polyadic
//! decomposition, generic over the MTTKRP kernel.
//!
//! Per iteration, for each mode `m`:
//!
//! 1. `M = X_(m) (⊙ other factors)` — the MTTKRP, via any
//!    [`MttkrpKernel`]; this is the step the paper optimizes.
//! 2. `V = ∘ of the other factors' gram matrices` (`R x R`).
//! 3. `A_m = M V⁻¹` (Cholesky solve with ridge fallback).
//! 4. Column-normalize `A_m` into `λ`.
//!
//! Convergence is declared when the change in fit falls below `tol`.

use crate::kruskal::KruskalTensor;
use crate::linalg::{gram, hadamard_assign, normalize_columns, solve_spd_rhs_rows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tenblock_core::{build_kernel, KernelConfig, KernelKind, MttkrpKernel};
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Options for [`CpAls`].
#[derive(Debug, Clone)]
pub struct CpAlsOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Stop when `|fit - prev_fit| < tol`.
    pub tol: f64,
    /// Which MTTKRP kernel family to use.
    pub kernel: KernelKind,
    /// Blocking parameters for the kernel.
    pub kernel_cfg: KernelConfig,
    /// Seed for the random initial factors.
    pub seed: u64,
}

impl CpAlsOptions {
    /// Defaults: baseline SPLATT kernel, 50 iterations, `tol = 1e-5`.
    pub fn new(rank: usize) -> Self {
        CpAlsOptions {
            rank,
            max_iters: 50,
            tol: 1e-5,
            kernel: KernelKind::Splatt,
            kernel_cfg: KernelConfig::default(),
            seed: 0xa1b2c3d4,
        }
    }
}

/// Result of a CP-ALS run.
#[derive(Debug, Clone)]
pub struct CpAlsResult {
    /// The decomposition.
    pub model: KruskalTensor,
    /// Fit after each iteration.
    pub fit_history: Vec<f64>,
    /// Total iterations performed.
    pub iterations: usize,
    /// True if `tol` was reached before `max_iters`.
    pub converged: bool,
}

/// The CP-ALS solver. Kernels for all three modes are prepared once at
/// construction (the reorganization cost the paper amortizes over
/// iterations).
///
/// ```
/// use tenblock_cpd::{CpAls, CpAlsOptions};
/// use tenblock_core::{KernelConfig, KernelKind};
/// use tenblock_tensor::gen::uniform_tensor;
///
/// let x = uniform_tensor([20, 20, 20], 500, 7);
/// let mut opts = CpAlsOptions::new(4);
/// opts.max_iters = 5;
/// opts.kernel = KernelKind::MbRankB; // blocked MTTKRP inside ALS
/// opts.kernel_cfg = KernelConfig { grid: [2, 2, 2], strip_width: 16, ..Default::default() };
/// let result = CpAls::new(&x, opts).run(&x);
/// assert_eq!(result.fit_history.len(), result.iterations);
/// ```
pub struct CpAls {
    opts: CpAlsOptions,
    kernels: Vec<Box<dyn MttkrpKernel>>,
    dims: [usize; NMODES],
}

impl CpAls {
    /// Prepares kernels for every mode of `x`.
    pub fn new(x: &CooTensor, opts: CpAlsOptions) -> Self {
        assert!(opts.rank > 0, "rank must be positive");
        let kernels = (0..NMODES)
            .map(|m| build_kernel(opts.kernel, x, m, &opts.kernel_cfg))
            .collect();
        CpAls {
            opts,
            kernels,
            dims: x.dims(),
        }
    }

    /// Random initial factors in `[0, 1)` (the usual ALS start for
    /// nonnegative count data).
    fn init_factors(&self) -> Vec<DenseMatrix> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.dims
            .iter()
            .map(|&d| {
                let data: Vec<f64> = (0..d * self.opts.rank)
                    .map(|_| rng.random::<f64>())
                    .collect();
                DenseMatrix::from_vec(d, self.opts.rank, data)
            })
            .collect()
    }

    /// Runs ALS on `x` (the same tensor the kernels were built from).
    pub fn run(&self, x: &CooTensor) -> CpAlsResult {
        assert_eq!(
            x.dims(),
            self.dims,
            "tensor shape changed since kernel construction"
        );
        let rank = self.opts.rank;
        let mut factors = self.init_factors();
        let mut lambda = vec![1.0; rank];
        let mut grams: Vec<DenseMatrix> = factors.iter().map(gram).collect();
        let mut fit_history = Vec::new();
        let mut prev_fit = f64::NEG_INFINITY;
        let mut converged = false;
        let mut mttkrp_out: Vec<DenseMatrix> = self
            .dims
            .iter()
            .map(|&d| DenseMatrix::zeros(d, rank))
            .collect();

        let recorder = self.opts.kernel_cfg.exec.recorder.clone();
        let als_span = recorder.span("cpd/als");
        als_span.annotate_num("rank", rank as f64);

        let mut iterations = 0;
        for it in 0..self.opts.max_iters {
            iterations += 1;
            let iter_span = recorder.span("cpd/als/iter");
            iter_span.annotate_num("iter", it as f64);
            for m in 0..NMODES {
                let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
                self.kernels[m].mttkrp(&fs, &mut mttkrp_out[m]);

                // V = Hadamard of the other modes' grams
                let others: Vec<usize> = (0..NMODES).filter(|&o| o != m).collect();
                let mut v = grams[others[0]].clone();
                hadamard_assign(&mut v, &grams[others[1]]);

                let mut updated = solve_spd_rhs_rows(&v, &mttkrp_out[m]);
                lambda = normalize_columns(&mut updated);
                // guard: fully zero column => keep lambda zero, factor zeroed
                factors[m] = updated;
                grams[m] = gram(&factors[m]);
            }
            let model = KruskalTensor::new(lambda.clone(), factors.clone());
            let fit = model.fit(x);
            fit_history.push(fit);
            iter_span.annotate_num("fit", fit);
            if (fit - prev_fit).abs() < self.opts.tol {
                converged = true;
                break;
            }
            prev_fit = fit;
        }

        CpAlsResult {
            model: KruskalTensor::new(lambda, factors),
            fit_history,
            iterations,
            converged,
        }
    }

    /// Kernel names, for reporting.
    pub fn kernel_name(&self) -> &'static str {
        self.kernels[0].name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random low-rank nonnegative tensor materialized densely: ALS at
    /// the generating rank must reach a near-perfect fit.
    fn planted(rank: usize, dims: [usize; NMODES], seed: u64) -> CooTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<DenseMatrix> = dims
            .iter()
            .map(|&d| {
                let data: Vec<f64> = (0..d * rank).map(|_| rng.random::<f64>()).collect();
                DenseMatrix::from_vec(d, rank, data)
            })
            .collect();
        KruskalTensor::new(vec![1.0; rank], factors).to_coo()
    }

    #[test]
    fn recovers_planted_low_rank() {
        let x = planted(3, [12, 10, 8], 42);
        let mut opts = CpAlsOptions::new(3);
        opts.max_iters = 200;
        opts.tol = 1e-9;
        let als = CpAls::new(&x, opts);
        let result = als.run(&x);
        let final_fit = *result.fit_history.last().unwrap();
        assert!(final_fit > 0.995, "fit = {final_fit}");
    }

    #[test]
    fn fit_is_monotone_non_decreasing() {
        let x = planted(4, [10, 10, 10], 7);
        let mut opts = CpAlsOptions::new(2); // under-parameterized: won't hit 1.0
        opts.max_iters = 30;
        opts.tol = 0.0;
        let result = CpAls::new(&x, opts).run(&x);
        for w in result.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn all_kernels_reach_same_fit() {
        let x = planted(3, [14, 9, 11], 99);
        let mut fits = Vec::new();
        for kind in KernelKind::ALL {
            let mut opts = CpAlsOptions::new(3);
            opts.max_iters = 25;
            opts.tol = 0.0;
            opts.kernel = kind;
            opts.kernel_cfg = KernelConfig {
                grid: [2, 2, 2],
                strip_width: 16,
                ..Default::default()
            };
            let result = CpAls::new(&x, opts).run(&x);
            fits.push(*result.fit_history.last().unwrap());
        }
        for f in &fits[1..] {
            assert!((f - fits[0]).abs() < 1e-6, "kernel fits diverge: {fits:?}");
        }
    }

    #[test]
    fn trace_spans_nest_and_are_monotone() {
        use std::sync::Arc;
        use tenblock_core::obs::{Rec, TraceRecorder};
        use tenblock_core::ExecPolicy;

        let x = planted(2, [8, 8, 8], 11);
        let tr = Arc::new(TraceRecorder::new());
        let mut opts = CpAlsOptions::new(2);
        opts.max_iters = 3;
        opts.tol = 0.0;
        opts.kernel_cfg = KernelConfig::default()
            .with_exec(ExecPolicy::serial().with_recorder(Rec::new(tr.clone())));
        let result = CpAls::new(&x, opts).run(&x);

        let spans = tr.snapshot();
        let roots: Vec<_> = spans.iter().filter(|s| s.name == "cpd/als").collect();
        assert_eq!(roots.len(), 1, "exactly one ALS root span");
        let root_id = roots[0].id;

        let iters: Vec<_> = spans.iter().filter(|s| s.name == "cpd/als/iter").collect();
        assert_eq!(iters.len(), result.iterations, "one span per iteration");
        for it in &iters {
            assert_eq!(it.parent, root_id, "iteration spans hang off the root");
            assert!(it.start_ns <= it.end_ns);
            assert!(
                it.attrs.iter().any(|(k, _)| k == "fit"),
                "iteration span carries the fit"
            );
        }

        let mttkrps: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("mttkrp/"))
            .collect();
        assert_eq!(mttkrps.len(), NMODES * result.iterations);
        for m in &mttkrps {
            assert!(
                iters.iter().any(|i| i.id == m.parent),
                "MTTKRP spans nest under an iteration"
            );
        }

        // Span ids are assigned at start under one lock: start timestamps
        // are monotone in id order.
        for w in spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns, "timestamps not monotone");
        }
    }

    #[test]
    fn convergence_flag() {
        let x = planted(2, [8, 8, 8], 5);
        let mut opts = CpAlsOptions::new(2);
        opts.max_iters = 500;
        opts.tol = 1e-7;
        let result = CpAls::new(&x, opts).run(&x);
        assert!(result.converged);
        assert!(result.iterations < 500);
        assert_eq!(result.fit_history.len(), result.iterations);
    }
}
