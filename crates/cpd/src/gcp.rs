//! Gradient-based CP decomposition (GCP-style, Gaussian loss) on top of the
//! fused all-mode MTTKRP.
//!
//! For the squared-error loss `F = ½‖X − M‖²` over *all* tensor entries,
//! the gradient w.r.t. factor `A_m` decomposes exactly:
//!
//! ```text
//! ∇_m F = M_(m) (⊙ other factors) − X_(m) (⊙ other factors)
//!       = A_m · (∘ of other grams)  −  MTTKRP_m(X)
//! ```
//!
//! The first term is dense `R x R` algebra; the second is the sparse
//! MTTKRP — and since the gradient needs *all three modes at the same
//! factor state*, the memoized [`AllModeKernel`] computes them in a single
//! tensor traversal (the memoization trade-off of the paper's ref. [17]).
//! Optimization uses Adam.

use crate::kruskal::KruskalTensor;
use crate::linalg::{gram, hadamard_assign, matmul};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tenblock_core::mttkrp::AllModeKernel;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Options for [`cp_gradient_descent`].
#[derive(Debug, Clone)]
pub struct GcpOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Gradient steps.
    pub max_iters: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Stop when the relative loss improvement falls below this.
    pub tol: f64,
    /// Seed for the initial factors.
    pub seed: u64,
}

impl GcpOptions {
    /// Defaults: 200 Adam steps at `lr = 0.05`.
    pub fn new(rank: usize) -> Self {
        GcpOptions {
            rank,
            max_iters: 200,
            lr: 0.05,
            tol: 1e-9,
            seed: 0x6c9,
        }
    }
}

/// Result of a gradient-descent CP run.
#[derive(Debug, Clone)]
pub struct GcpResult {
    /// The decomposition (unit `λ`; scale lives in the factors).
    pub model: KruskalTensor,
    /// Loss `½‖X − M‖²` after each step.
    pub loss_history: Vec<f64>,
    /// Steps performed.
    pub iterations: usize,
    /// True if `tol` was reached.
    pub converged: bool,
}

/// Computes the squared-error loss and all three factor gradients at the
/// given factor state, with one fused MTTKRP traversal.
pub fn cp_gradient(
    x: &CooTensor,
    kernel: &AllModeKernel,
    factors: &[DenseMatrix; NMODES],
) -> (f64, [DenseMatrix; NMODES]) {
    let dims = x.dims();
    let rank = factors[0].cols();
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];

    // sparse side: all three MTTKRPs of X, fused
    let mut mtt = [
        DenseMatrix::zeros(dims[0], rank),
        DenseMatrix::zeros(dims[1], rank),
        DenseMatrix::zeros(dims[2], rank),
    ];
    kernel.mttkrp_all(&fs, &mut mtt);

    // dense side: grams
    let grams: Vec<DenseMatrix> = factors.iter().map(gram).collect();

    // loss: ½(‖X‖² − 2⟨X, M⟩ + ‖M‖²); ⟨X, M⟩ = <MTTKRP_0(X), A_0>
    let inner: f64 = mtt[0]
        .as_slice()
        .iter()
        .zip(factors[0].as_slice())
        .map(|(a, b)| a * b)
        .sum();
    let model = KruskalTensor::new(vec![1.0; rank], factors.to_vec());
    let loss = 0.5 * (x.sq_norm() - 2.0 * inner + model.sq_norm());

    let grads = std::array::from_fn(|m| {
        let others: Vec<usize> = (0..NMODES).filter(|&o| o != m).collect();
        let mut v = grams[others[0]].clone();
        hadamard_assign(&mut v, &grams[others[1]]);
        let dense_term = matmul(&factors[m], &v);
        let mut g = dense_term;
        for (gv, &mv) in g.as_mut_slice().iter_mut().zip(mtt[m].as_slice()) {
            *gv -= mv;
        }
        g
    });
    (loss, grads)
}

/// Runs Adam on the Gaussian CP objective.
pub fn cp_gradient_descent(x: &CooTensor, opts: &GcpOptions) -> GcpResult {
    assert!(opts.rank > 0, "rank must be positive");
    let rank = opts.rank;
    let dims = x.dims();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // scale-aware init so M starts in the right magnitude ballpark
    let scale = (x.sq_norm() / (x.nnz().max(1) as f64)).sqrt().max(1e-3);
    let init = (scale / rank as f64).cbrt();
    let mut factors: [DenseMatrix; NMODES] = std::array::from_fn(|m| {
        DenseMatrix::from_fn(dims[m], rank, |_, _| (rng.random::<f64>() - 0.2) * init)
    });

    let kernel = AllModeKernel::new(x);
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let mut m1: Vec<Vec<f64>> = factors
        .iter()
        .map(|f| vec![0.0; f.as_slice().len()])
        .collect();
    let mut m2 = m1.clone();

    let mut loss_history = Vec::new();
    let mut prev_loss = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for step in 1..=opts.max_iters {
        iterations = step;
        let (loss, grads) = cp_gradient(x, &kernel, &factors);
        loss_history.push(loss);
        if (prev_loss - loss).abs() / prev_loss.abs().max(1.0) < opts.tol {
            converged = true;
            break;
        }
        prev_loss = loss;

        let bc1 = 1.0 - beta1.powi(step as i32);
        let bc2 = 1.0 - beta2.powi(step as i32);
        for mm in 0..NMODES {
            let f = factors[mm].as_mut_slice();
            let g = grads[mm].as_slice();
            for i in 0..f.len() {
                m1[mm][i] = beta1 * m1[mm][i] + (1.0 - beta1) * g[i];
                m2[mm][i] = beta2 * m2[mm][i] + (1.0 - beta2) * g[i] * g[i];
                let mhat = m1[mm][i] / bc1;
                let vhat = m2[mm][i] / bc2;
                f[i] -= opts.lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    GcpResult {
        model: KruskalTensor::new(vec![1.0; rank], factors.to_vec()),
        loss_history,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(rank: usize, dims: [usize; NMODES], seed: u64) -> CooTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors: Vec<DenseMatrix> = dims
            .iter()
            .map(|&d| {
                let data: Vec<f64> = (0..d * rank).map(|_| rng.random::<f64>()).collect();
                DenseMatrix::from_vec(d, rank, data)
            })
            .collect();
        KruskalTensor::new(vec![1.0; rank], factors).to_coo()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = planted(2, [4, 3, 5], 7);
        let rank = 2;
        let kernel = AllModeKernel::new(&x);
        let factors: [DenseMatrix; 3] = std::array::from_fn(|m| {
            DenseMatrix::from_fn(x.dims()[m], rank, |r, c| {
                ((r * 3 + c + m) % 7) as f64 * 0.11 + 0.1
            })
        });
        let (_, grads) = cp_gradient(&x, &kernel, &factors);

        let h = 1e-6;
        for m in 0..3 {
            for row in 0..x.dims()[m] {
                for col in 0..rank {
                    let mut plus = factors.clone();
                    plus[m].set(row, col, plus[m].get(row, col) + h);
                    let (lp, _) = cp_gradient(&x, &kernel, &plus);
                    let mut minus = factors.clone();
                    minus[m].set(row, col, minus[m].get(row, col) - h);
                    let (lm, _) = cp_gradient(&x, &kernel, &minus);
                    let fd = (lp - lm) / (2.0 * h);
                    let an = grads[m].get(row, col);
                    assert!(
                        (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                        "mode {m} ({row},{col}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn loss_decreases_and_fits_planted_data() {
        let x = planted(3, [8, 7, 6], 3);
        let mut opts = GcpOptions::new(3);
        opts.max_iters = 400;
        opts.lr = 0.03;
        let result = cp_gradient_descent(&x, &opts);
        let first = result.loss_history[0];
        let last = *result.loss_history.last().unwrap();
        assert!(last < 0.05 * first, "loss {first} -> {last}");
        // fit through the Kruskal interface agrees
        let fit = result.model.fit(&x);
        assert!(fit > 0.8, "fit {fit}");
    }

    #[test]
    fn loss_is_monotone_under_small_steps() {
        let x = planted(2, [6, 6, 6], 11);
        let mut opts = GcpOptions::new(2);
        opts.max_iters = 60;
        opts.lr = 0.01;
        opts.tol = 0.0;
        let result = cp_gradient_descent(&x, &opts);
        let mut increases = 0;
        for w in result.loss_history.windows(2) {
            if w[1] > w[0] * 1.001 {
                increases += 1;
            }
        }
        // Adam is not strictly monotone, but at a small lr increases should
        // be rare
        assert!(
            increases < result.loss_history.len() / 4,
            "{increases} increases"
        );
    }
}
