//! Out-of-core CP-ALS: the [`crate::als`] loop over a streaming MTTKRP,
//! so the tensor is never resident — only its factors, grams, and two
//! tiles at a time.
//!
//! Two things keep the streamed run equivalent to the in-memory one:
//!
//! * **Identical initialization.** [`CpAlsStream`] draws its random
//!   initial factors with exactly the sequence `CpAls` uses (same seed,
//!   same per-mode draw order), so the two solvers walk the same
//!   optimization path. With the streaming MTTKRP bit-for-bit equal to
//!   the in-memory kernels, per-iteration factors agree to roundoff.
//! * **Streaming fit.** The in-memory fit needs `⟨X, M⟩`, a pass over
//!   the nonzeros. Streaming avoids re-reading the tensor per iteration
//!   with the SPLATT identity: the last mode's MTTKRP output `M₂`
//!   already contracts `X` with the updated `A₀, A₁`, so
//!   `⟨X, M⟩ = Σ_r λ_r Σ_k M₂[k,r] · A₂[k,r]` — free given the
//!   iteration's final factors. `‖X‖²` is streamed once up front (one
//!   extra tile pass, visible in the stream counters); `‖M‖²` uses the
//!   gram identity. No tensor pass per iteration beyond the three
//!   MTTKRPs.

use crate::als::{CpAlsOptions, CpAlsResult};
use crate::kruskal::KruskalTensor;
use crate::linalg::{gram, hadamard_assign, normalize_columns, solve_spd_rhs_rows};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tenblock_core::obs::StreamStats;
use tenblock_core::{StreamError, StreamingMttkrp};
use tenblock_tensor::{DenseMatrix, TensorSource, NMODES};

/// CP-ALS over a [`TensorSource`]. Where [`crate::CpAls`] prepares one
/// in-memory kernel per mode, this driver streams tiles per MTTKRP; the
/// `kernel`/`grid` fields of [`CpAlsOptions`] are ignored (the source's
/// grid is the blocking), while `strip_width`, `exec`, `seed`, and the
/// convergence controls mean the same thing.
pub struct CpAlsStream<'a> {
    src: &'a dyn TensorSource,
    opts: CpAlsOptions,
    stats: Arc<StreamStats>,
}

impl<'a> CpAlsStream<'a> {
    /// A streaming solver over `src`.
    pub fn new(src: &'a dyn TensorSource, opts: CpAlsOptions) -> Self {
        assert!(opts.rank > 0, "rank must be positive");
        CpAlsStream {
            src,
            opts,
            stats: Arc::new(StreamStats::new()),
        }
    }

    /// Shares a stats sink instead of the solver's private one.
    pub fn with_stats(mut self, stats: Arc<StreamStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The stream counters the solver's passes update.
    pub fn stats(&self) -> &Arc<StreamStats> {
        &self.stats
    }

    /// Exactly `CpAls::init_factors`: same seed, same draw order, so the
    /// streamed and in-memory solvers start from identical factors.
    fn init_factors(&self) -> Vec<DenseMatrix> {
        let mut rng = StdRng::seed_from_u64(self.opts.seed);
        self.src
            .dims()
            .iter()
            .map(|&d| {
                let data: Vec<f64> = (0..d * self.opts.rank)
                    .map(|_| rng.random::<f64>())
                    .collect();
                DenseMatrix::from_vec(d, self.opts.rank, data)
            })
            .collect()
    }

    /// `‖X‖²` in one tile pass, counted in the stream stats.
    fn stream_sq_norm(&self) -> Result<f64, StreamError> {
        let mut total = 0.0;
        for i in 0..self.src.n_tiles() {
            let tile = self.src.load_tile(i)?;
            self.stats.add_tile(self.src.tile_bytes(i));
            total += tile.vals.iter().map(|v| v * v).sum::<f64>();
        }
        Ok(total)
    }

    /// Runs ALS, streaming every MTTKRP from the source.
    pub fn run(&self) -> Result<CpAlsResult, StreamError> {
        let rank = self.opts.rank;
        let dims = self.src.dims();
        let exec = &self.opts.kernel_cfg.exec;
        let strip = self.opts.kernel_cfg.strip_width;
        let mut factors = self.init_factors();
        let mut lambda = vec![1.0; rank];
        let mut grams: Vec<DenseMatrix> = factors.iter().map(gram).collect();
        let mut fit_history = Vec::new();
        let mut prev_fit = f64::NEG_INFINITY;
        let mut converged = false;
        let mut mttkrp_out: Vec<DenseMatrix> =
            dims.iter().map(|&d| DenseMatrix::zeros(d, rank)).collect();

        let recorder = exec.recorder.clone();
        let als_span = recorder.span("cpd/als-stream");
        als_span.annotate_num("rank", rank as f64);
        als_span.annotate_num("tiles", self.src.n_tiles() as f64);

        let x_sq = self.stream_sq_norm()?;

        let mut iterations = 0;
        for it in 0..self.opts.max_iters {
            iterations += 1;
            let iter_span = recorder.span("cpd/als/iter");
            iter_span.annotate_num("iter", it as f64);
            for m in 0..NMODES {
                let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
                StreamingMttkrp::new(self.src, m, strip)
                    .with_exec(exec.clone())
                    .with_stats(Arc::clone(&self.stats))
                    .run(&fs, &mut mttkrp_out[m])?;

                let others: Vec<usize> = (0..NMODES).filter(|&o| o != m).collect();
                let mut v = grams[others[0]].clone();
                hadamard_assign(&mut v, &grams[others[1]]);

                let mut updated = solve_spd_rhs_rows(&v, &mttkrp_out[m]);
                lambda = normalize_columns(&mut updated);
                factors[m] = updated;
                grams[m] = gram(&factors[m]);
            }
            // ⟨X, M⟩ from the mode-2 MTTKRP: it contracted X with the
            // updated A₀/A₁, and λ/A₂ are its own normalization, so
            // pairing it with the final A₂ reproduces the full inner
            // product without touching the tensor again.
            let m2 = &mttkrp_out[NMODES - 1];
            let a2 = &factors[NMODES - 1];
            let mut inner = 0.0;
            for (r, &l) in lambda.iter().enumerate() {
                let mut col = 0.0;
                for k in 0..dims[NMODES - 1] {
                    col += m2.get(k, r) * a2.get(k, r);
                }
                inner += l * col;
            }
            let model = KruskalTensor::new(lambda.clone(), factors.clone());
            let fit = if x_sq == 0.0 {
                if model.sq_norm() == 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                let resid_sq = (x_sq - 2.0 * inner + model.sq_norm()).max(0.0);
                1.0 - (resid_sq.sqrt() / x_sq.sqrt())
            };
            fit_history.push(fit);
            iter_span.annotate_num("fit", fit);
            if (fit - prev_fit).abs() < self.opts.tol {
                converged = true;
                break;
            }
            prev_fit = fit;
        }

        Ok(CpAlsResult {
            model: KruskalTensor::new(lambda, factors),
            fit_history,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::CpAls;
    use tenblock_core::KernelKind;
    use tenblock_tensor::gen::{clustered_tensor, uniform_tensor, ClusteredConfig};
    use tenblock_tensor::CooSource;

    #[test]
    fn streamed_als_matches_in_memory_fit() {
        let cfg = ClusteredConfig::new([30, 24, 18], 1_200);
        let x = clustered_tensor(&cfg, 4);
        let mut opts = CpAlsOptions::new(5);
        opts.max_iters = 12;
        opts.tol = 0.0;
        opts.kernel = KernelKind::Bcoo;
        opts.kernel_cfg.grid = [2, 2, 2];
        opts.kernel_cfg.strip_width = 16;
        let mem = CpAls::new(&x, opts.clone()).run(&x);

        let src = CooSource::new(&x, [2, 2, 2]);
        let streamed = CpAlsStream::new(&src, opts).run().unwrap();

        assert_eq!(streamed.iterations, mem.iterations);
        for (s, m) in streamed.fit_history.iter().zip(&mem.fit_history) {
            assert!(
                (s - m).abs() < 1e-9,
                "fit diverged: streamed {s} vs in-memory {m}"
            );
        }
        // Same path, not just same destination: final factors agree.
        for mode in 0..NMODES {
            let (a, b) = (&streamed.model.factors[mode], &mem.model.factors[mode]);
            assert!(a.approx_eq(b, 1e-9), "mode {mode} factors diverged");
        }
    }

    #[test]
    fn stream_counters_show_multiple_passes() {
        let x = uniform_tensor([20, 20, 20], 600, 8);
        let src = CooSource::new(&x, [2, 2, 2]);
        let mut opts = CpAlsOptions::new(3);
        opts.max_iters = 4;
        opts.tol = 0.0;
        let solver = CpAlsStream::new(&src, opts);
        let result = solver.run().unwrap();
        let snap = solver.stats().snapshot();
        // One ‖X‖² pass plus three MTTKRP passes per iteration.
        let passes = 1 + NMODES as u64 * result.iterations as u64;
        assert_eq!(snap.tiles_loaded, passes * src.n_tiles() as u64);
        assert_eq!(snap.bytes_streamed, passes * src.total_tile_bytes());
    }

    #[test]
    fn streamed_fit_is_monotone_non_decreasing() {
        let x = uniform_tensor([16, 14, 12], 500, 15);
        let src = CooSource::new(&x, [2, 2, 2]);
        let mut opts = CpAlsOptions::new(2);
        opts.max_iters = 15;
        opts.tol = 0.0;
        let result = CpAlsStream::new(&src, opts).run().unwrap();
        for w in result.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit decreased: {} -> {}", w[0], w[1]);
        }
    }
}
