//! Small dense linear algebra for CP-ALS: everything is `R x R` or
//! `n x R`, so simple triple loops are appropriate (the heavy lifting lives
//! in the MTTKRP kernels, not here).

use tenblock_tensor::DenseMatrix;

/// `A * B` for `m x k` times `k x n`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av != 0.0 {
                let brow = b.row(p);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
    out
}

/// The gram matrix `Aᵀ A` (`R x R`, symmetric) of an `n x R` factor.
pub fn gram(a: &DenseMatrix) -> DenseMatrix {
    let r = a.cols();
    let mut g = DenseMatrix::zeros(r, r);
    for i in 0..a.rows() {
        let row = a.row(i);
        for p in 0..r {
            let v = row[p];
            if v != 0.0 {
                let grow = g.row_mut(p);
                for (q, &w) in row.iter().enumerate() {
                    grow[q] += v * w;
                }
            }
        }
    }
    g
}

/// Element-wise (Hadamard) product, in place: `a .*= b`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn hadamard_assign(a: &mut DenseMatrix, b: &DenseMatrix) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = A`, or `None` if a pivot is
/// not positive.
pub fn cholesky(a: &DenseMatrix) -> Option<DenseMatrix> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `X * A = B` for `X` (each row of `B` independently), where `A`
/// is symmetric positive semi-definite (`R x R`) and `B` is `n x R` — the
/// ALS factor update `A_new = M · V⁻¹`. Falls back to a ridge
/// (`A + εI`) when `A` is singular.
pub fn solve_spd_rhs_rows(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), a.cols(), "system matrix must be square");
    assert_eq!(b.cols(), a.rows(), "rhs width must match system size");
    let n = a.rows();

    let l = cholesky(a).unwrap_or_else(|| {
        // ridge fallback: scale-aware epsilon on the diagonal
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let eps = (trace / n as f64).max(1.0) * 1e-10;
        let mut reg = a.clone();
        for i in 0..n {
            reg.set(i, i, reg.get(i, i) + eps);
        }
        let mut eps = eps;
        loop {
            if let Some(l) = cholesky(&reg) {
                return l;
            }
            eps *= 100.0;
            for i in 0..n {
                reg.set(i, i, reg.get(i, i) + eps);
            }
            assert!(eps.is_finite(), "ridge regularization diverged");
        }
    });

    // For each row m of B: solve (L Lᵀ) x = mᵀ, write xᵀ into the result.
    let mut out = DenseMatrix::zeros(b.rows(), n);
    let mut y = vec![0.0; n];
    for r in 0..b.rows() {
        let rhs = b.row(r);
        // forward substitution L y = rhs
        for i in 0..n {
            let mut s = rhs[i];
            for k in 0..i {
                s -= l.get(i, k) * y[k];
            }
            y[i] = s / l.get(i, i);
        }
        // back substitution Lᵀ x = y
        let orow = out.row_mut(r);
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l.get(k, i) * orow[k];
            }
            orow[i] = s / l.get(i, i);
        }
    }
    out
}

/// Euclidean norms of each column of an `n x R` matrix.
pub fn column_norms(a: &DenseMatrix) -> Vec<f64> {
    let mut norms = vec![0.0; a.cols()];
    for i in 0..a.rows() {
        for (n, &v) in norms.iter_mut().zip(a.row(i)) {
            *n += v * v;
        }
    }
    norms.iter_mut().for_each(|n| *n = n.sqrt());
    norms
}

/// Divides each column by its norm (columns with zero norm are left
/// untouched) and returns the norms.
pub fn normalize_columns(a: &mut DenseMatrix) -> Vec<f64> {
    let norms = column_norms(a);
    for i in 0..a.rows() {
        for (v, &n) in a.row_mut(i).iter_mut().zip(&norms) {
            if n > 0.0 {
                *v /= n;
            }
        }
    }
    norms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gram_is_ata() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| (r * 3 + c) as f64 * 0.5);
        let g = gram(&a);
        // compare against explicit AᵀA via matmul with a transposed copy
        let at = DenseMatrix::from_fn(3, 5, |r, c| a.get(c, r));
        let expect = matmul(&at, &a);
        assert!(g.approx_eq(&expect, 1e-12));
        // symmetry
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn hadamard_elementwise() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        hadamard_assign(&mut a, &b);
        assert_eq!(a.as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn cholesky_of_identityish() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| if r == c { 4.0 } else { 0.0 });
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            assert!((l.get(i, i) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn spd_solve_recovers_solution() {
        // A = Mᵀ M + I (SPD), X random, B = X A; solve must recover X.
        let m = DenseMatrix::from_fn(4, 4, |r, c| ((r * 5 + c * 3) % 7) as f64 * 0.3);
        let mut a = gram(&m);
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x = DenseMatrix::from_fn(6, 4, |r, c| ((r + 2 * c) % 5) as f64 - 2.0);
        let b = matmul(&x, &a);
        let got = solve_spd_rhs_rows(&a, &b);
        assert!(x.approx_eq(&got, 1e-8), "max diff {}", x.max_abs_diff(&got));
    }

    #[test]
    fn singular_system_uses_ridge() {
        // rank-deficient A (duplicate columns): solution exists for
        // consistent rhs; ridge keeps it finite.
        let mut a = DenseMatrix::zeros(3, 3);
        a.set(0, 0, 1.0);
        a.set(1, 1, 1.0);
        // third row/col zero -> singular
        let b = DenseMatrix::from_vec(1, 3, vec![2.0, 3.0, 0.0]);
        let x = solve_spd_rhs_rows(&a, &b);
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert!((x.get(0, 0) - 2.0).abs() < 1e-3);
        assert!((x.get(0, 1) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn normalization() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 4.0, 0.0]);
        let norms = normalize_columns(&mut a);
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-12);
        assert_eq!(a.get(0, 1), 0.0);
    }
}
