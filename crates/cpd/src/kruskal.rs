//! The Kruskal form of a CP decomposition: column-normalized factor
//! matrices plus per-component weights `λ`.

use crate::linalg::{gram, hadamard_assign};
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// A rank-`R` Kruskal tensor `Σ_r λ_r · a_r ∘ b_r ∘ c_r`.
#[derive(Debug, Clone)]
pub struct KruskalTensor {
    /// Component weights, length `R`.
    pub lambda: Vec<f64>,
    /// One `dims[m] x R` factor matrix per mode.
    pub factors: Vec<DenseMatrix>,
}

impl KruskalTensor {
    /// Builds a Kruskal tensor, validating shapes.
    pub fn new(lambda: Vec<f64>, factors: Vec<DenseMatrix>) -> Self {
        assert_eq!(factors.len(), NMODES, "need one factor per mode");
        for f in &factors {
            assert_eq!(f.cols(), lambda.len(), "factor rank != lambda length");
        }
        KruskalTensor { lambda, factors }
    }

    /// The decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Mode lengths.
    pub fn dims(&self) -> [usize; NMODES] {
        [
            self.factors[0].rows(),
            self.factors[1].rows(),
            self.factors[2].rows(),
        ]
    }

    /// Model value at coordinate `(i, j, k)`.
    pub fn value_at(&self, i: usize, j: usize, k: usize) -> f64 {
        let (a, b, c) = (&self.factors[0], &self.factors[1], &self.factors[2]);
        self.lambda
            .iter()
            .enumerate()
            .map(|(r, &l)| l * a.get(i, r) * b.get(j, r) * c.get(k, r))
            .sum()
    }

    /// `||M||²` via the gram identity:
    /// `Σ_{r,s} λ_r λ_s (AᵀA ∘ BᵀB ∘ CᵀC)_{rs}`.
    pub fn sq_norm(&self) -> f64 {
        let mut g = gram(&self.factors[0]);
        hadamard_assign(&mut g, &gram(&self.factors[1]));
        hadamard_assign(&mut g, &gram(&self.factors[2]));
        let r = self.rank();
        let mut total = 0.0;
        for p in 0..r {
            for q in 0..r {
                total += self.lambda[p] * self.lambda[q] * g.get(p, q);
            }
        }
        total
    }

    /// Inner product `⟨X, M⟩ = Σ_nnz x_ijk · m_ijk` with a sparse tensor.
    pub fn inner_with(&self, x: &CooTensor) -> f64 {
        assert_eq!(x.dims(), self.dims(), "tensor/model shape mismatch");
        x.entries()
            .iter()
            .map(|e| e.val * self.value_at(e.idx[0] as usize, e.idx[1] as usize, e.idx[2] as usize))
            .sum()
    }

    /// The CP fit `1 - ||X - M||_F / ||X||_F`, computed without
    /// materializing `M`: `||X - M||² = ||X||² - 2⟨X, M⟩ + ||M||²`.
    pub fn fit(&self, x: &CooTensor) -> f64 {
        let x_sq = x.sq_norm();
        if x_sq == 0.0 {
            return if self.sq_norm() == 0.0 { 1.0 } else { 0.0 };
        }
        let resid_sq = (x_sq - 2.0 * self.inner_with(x) + self.sq_norm()).max(0.0);
        1.0 - (resid_sq.sqrt() / x_sq.sqrt())
    }

    /// Materializes the model as a dense COO tensor (test-sized only).
    pub fn to_coo(&self) -> CooTensor {
        let dims = self.dims();
        assert!(
            dims.iter().product::<usize>() <= 1 << 22,
            "to_coo is for small tensors"
        );
        let mut entries = Vec::new();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let v = self.value_at(i, j, k);
                    if v != 0.0 {
                        entries.push(tenblock_tensor::Entry::new(i as u32, j as u32, k as u32, v));
                    }
                }
            }
        }
        CooTensor::from_entries(dims, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank1() -> KruskalTensor {
        KruskalTensor::new(
            vec![2.0],
            vec![
                DenseMatrix::from_vec(2, 1, vec![1.0, 2.0]),
                DenseMatrix::from_vec(2, 1, vec![3.0, 4.0]),
                DenseMatrix::from_vec(2, 1, vec![5.0, 6.0]),
            ],
        )
    }

    #[test]
    fn value_at_rank1() {
        let m = rank1();
        assert_eq!(m.value_at(1, 0, 1), 2.0 * 2.0 * 3.0 * 6.0);
    }

    #[test]
    fn sq_norm_matches_materialization() {
        let m = rank1();
        let dense = m.to_coo();
        assert!((m.sq_norm() - dense.sq_norm()).abs() < 1e-9);
    }

    #[test]
    fn perfect_fit_on_own_materialization() {
        let m = rank1();
        let x = m.to_coo();
        assert!((m.fit(&x) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn fit_degrades_with_perturbation() {
        let m = rank1();
        let mut x = m.to_coo();
        for v in x.values_mut() {
            *v += 10.0;
        }
        let f = m.fit(&x);
        assert!(f < 0.999, "fit = {f}");
    }

    #[test]
    fn inner_product_linear_in_values() {
        let m = rank1();
        let x = m.to_coo();
        let mut x2 = x.clone();
        for v in x2.values_mut() {
            *v *= 3.0;
        }
        assert!((m.inner_with(&x2) - 3.0 * m.inner_with(&x)).abs() < 1e-9);
    }
}
