//! Structure-aware generators: adversarial tensors and mutated `.tns`
//! byte streams.
//!
//! Each tensor class targets a boundary the kernels or the tuner have
//! historically mishandled elsewhere: empty tensors, degenerate (length-0
//! or length-1) modes, all-duplicate coordinates, hyper-sparse long-tail
//! dimensions, ranks straddling the register-block width, and clustered
//! dense blocks (the BCOO micro-kernel's target profile). The `.tns`
//! mutator starts from a well-formed file and injects the malformations
//! the parser must reject (or survive) without panicking.

use crate::rng::FuzzRng;
use tenblock_tensor::{CooTensor, Entry, Idx, NMODES};

/// Ranks exercised by the differential runner: 0 (no columns), 1, and the
/// register-block boundary 16 with its neighbors, plus a non-multiple well
/// above it.
pub const RANKS: [usize; 6] = [0, 1, 15, 16, 17, 37];

/// One generated differential-fuzzing case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Generator class, for triage (`empty`, `all-duplicates`, …).
    pub label: &'static str,
    /// The tensor under test.
    pub coo: CooTensor,
    /// Factor-matrix rank for this case.
    pub rank: usize,
}

/// Random entries strictly inside `dims` (empty when any mode is 0).
fn entries_in(rng: &mut FuzzRng, dims: [usize; NMODES], n: usize) -> Vec<Entry> {
    if dims.contains(&0) {
        return Vec::new();
    }
    (0..n)
        .map(|_| Entry {
            idx: std::array::from_fn(|m| rng.below(dims[m]) as Idx),
            val: rng.signed_unit(),
        })
        .collect()
}

/// Draws one adversarial tensor case. Deterministic in the RNG stream.
///
/// Dimensions are bounded (largest mode ≤ 4096) so the differential runner
/// can allocate `dim x rank` factor matrices for every case; unbounded
/// coordinates are the `.tns` mutator's job and stay in the parse stage.
pub fn arb_case(rng: &mut FuzzRng) -> FuzzCase {
    let rank = *rng.pick(&RANKS);
    let (label, coo) = match rng.below(9) {
        0 => {
            // Empty tensor; modes may be zero-length.
            let dims = std::array::from_fn(|_| rng.below(6));
            ("empty", CooTensor::empty(dims))
        }
        1 => {
            // Single slice: mode 0 has exactly one index.
            let dims = [1, 1 + rng.below(12), 1 + rng.below(12)];
            let n = rng.below(40);
            let entries = entries_in(rng, dims, n);
            ("single-slice", CooTensor::from_entries(dims, entries))
        }
        2 => {
            // Single fiber: modes 1 and 2 have exactly one index.
            let dims = [1 + rng.below(24), 1, 1];
            let n = rng.below(40);
            let entries = entries_in(rng, dims, n);
            ("single-fiber", CooTensor::from_entries(dims, entries))
        }
        3 => {
            // Every entry shares one coordinate: construction must coalesce
            // them into a single nonzero by summing.
            let dims = std::array::from_fn(|_| 1 + rng.below(8));
            let idx = std::array::from_fn(|m| rng.below(dims[m]) as Idx);
            let n = 1 + rng.below(50);
            let entries = (0..n)
                .map(|_| Entry {
                    idx,
                    val: rng.signed_unit(),
                })
                .collect();
            ("all-duplicates", CooTensor::from_entries(dims, entries))
        }
        4 => {
            // Hyper-sparse long tail: one mode far longer than its nonzero
            // count, with entries clustered at the far end.
            let long = 16 + rng.below(4081);
            let dims = [long, 1 + rng.below(6), 1 + rng.below(6)];
            let n = 1 + rng.below(30);
            let mut entries = entries_in(rng, dims, n);
            for e in entries.iter_mut().take(n / 2) {
                e.idx[0] = (long - 1 - rng.below(8.min(long))) as Idx;
            }
            ("hyper-sparse", CooTensor::from_entries(dims, entries))
        }
        5 => {
            // Tiny but dense: most cells occupied.
            let dims = std::array::from_fn(|_| 1 + rng.below(4));
            let n = dims.iter().product::<usize>() * 2;
            let entries = entries_in(rng, dims, n);
            ("tiny-dense", CooTensor::from_entries(dims, entries))
        }
        6 => {
            // Plain uniform small tensor — the control group.
            let dims = std::array::from_fn(|_| 1 + rng.below(24));
            let n = rng.below(200);
            let entries = entries_in(rng, dims, n);
            ("uniform", CooTensor::from_entries(dims, entries))
        }
        7 => {
            // Mode lengths straddling the register-block width (16).
            let dims = std::array::from_fn(|_| 15 + rng.below(4));
            let n = rng.below(120);
            let entries = entries_in(rng, dims, n);
            ("reg-block-edge", CooTensor::from_entries(dims, entries))
        }
        _ => {
            // Clustered blocks: a few dense boxes on a sparse background —
            // the occupancy profile the BCOO dense micro-kernel targets
            // (its gather path runs on the boxes, the direct path on the
            // background).
            let dims: [usize; NMODES] = std::array::from_fn(|_| 8 + rng.below(57));
            let background = rng.below(25);
            let mut entries = entries_in(rng, dims, background);
            for _ in 0..1 + rng.below(4) {
                let side: [usize; NMODES] = std::array::from_fn(|m| 1 + rng.below(dims[m].min(6)));
                let base: [usize; NMODES] =
                    std::array::from_fn(|m| rng.below(dims[m] - side[m] + 1));
                for i in 0..side[0] {
                    for j in 0..side[1] {
                        for k in 0..side[2] {
                            if rng.below(4) != 0 {
                                entries.push(Entry {
                                    idx: [
                                        (base[0] + i) as Idx,
                                        (base[1] + j) as Idx,
                                        (base[2] + k) as Idx,
                                    ],
                                    val: rng.signed_unit(),
                                });
                            }
                        }
                    }
                }
            }
            ("clustered-blocks", CooTensor::from_entries(dims, entries))
        }
    };
    FuzzCase { label, coo, rank }
}

/// Renders a tensor as FROSTT `.tns` text (the repro format).
pub fn render_tns(coo: &CooTensor) -> String {
    let mut s = String::new();
    s.push_str(&format!("# dims {:?} nnz {}\n", coo.dims(), coo.nnz()));
    for e in coo.entries() {
        s.push_str(&format!(
            "{} {} {} {}\n",
            e.idx[0] as u64 + 1,
            e.idx[1] as u64 + 1,
            e.idx[2] as u64 + 1,
            e.val
        ));
    }
    s
}

/// Malformations injected into `.tns` text. The parser must turn every one
/// of these into `Ok` or a typed `TnsError` — never a panic.
const BAD_VALUES: [&str; 7] = ["nan", "NaN", "inf", "-inf", "infinity", "1e999", "abc"];
const BAD_COORDS: [&str; 6] = [
    "0",
    "-3",
    "4294967297",           // Idx::MAX + 2 (1-based): must be rejected
    "18446744073709551616", // u64::MAX + 1: integer parse failure
    "4294967296",           // Idx::MAX + 1 (1-based): the largest legal coordinate
    "99999999999",
];

/// Produces a mutated `.tns` byte stream starting from a small well-formed
/// file. Returns the mutation label and the bytes.
pub fn mutant_tns(rng: &mut FuzzRng) -> (&'static str, Vec<u8>) {
    // Seed file: a handful of valid lines.
    let n = 1 + rng.below(8);
    let mut lines: Vec<String> = (0..n)
        .map(|_| {
            format!(
                "{} {} {} {}",
                1 + rng.below(9),
                1 + rng.below(9),
                1 + rng.below(9),
                rng.signed_unit()
            )
        })
        .collect();
    let target = rng.below(lines.len());
    let (label, mut bytes) = match rng.below(10) {
        0 => {
            // Replace the value field.
            let mut f: Vec<String> = lines[target].split(' ').map(str::to_string).collect();
            f[3] = rng.pick(&BAD_VALUES).to_string();
            lines[target] = f.join(" ");
            ("bad-value", join(&lines))
        }
        1 => {
            // Replace one coordinate field.
            let mut f: Vec<String> = lines[target].split(' ').map(str::to_string).collect();
            f[rng.below(3)] = rng.pick(&BAD_COORDS).to_string();
            lines[target] = f.join(" ");
            ("bad-coord", join(&lines))
        }
        2 => {
            // Drop trailing fields from one line.
            let keep = rng.below(4);
            let f: Vec<String> = lines[target]
                .split(' ')
                .take(keep)
                .map(str::to_string)
                .collect();
            lines[target] = f.join(" ");
            ("short-line", join(&lines))
        }
        3 => {
            // Append trailing fields (a 4-mode-looking line).
            lines[target].push_str(" 7 2.5");
            ("trailing-fields", join(&lines))
        }
        4 => {
            // Duplicate a line verbatim (coalescing path).
            let dup = lines[target].clone();
            lines.push(dup);
            ("duplicate-line", join(&lines))
        }
        5 => {
            // Interleave comments and blank lines.
            lines.insert(target, String::new());
            lines.insert(target, "# injected comment".to_string());
            ("comments", join(&lines))
        }
        6 => {
            // Truncate the byte stream mid-line.
            let b = join(&lines);
            let cut = 1 + rng.below(b.len().max(2) - 1);
            ("truncated", b[..cut].to_vec())
        }
        7 => {
            // Raw non-UTF-8 bytes: the line reader reports an I/O error.
            let mut b = join(&lines);
            b.extend_from_slice(&[0xff, 0xfe, b'1', b' ', 0x80, b'\n']);
            ("non-utf8", b)
        }
        8 => {
            // Whitespace stress: tabs-as-spaces, runs of blanks, CR endings.
            let spaced: Vec<String> = lines
                .iter()
                .map(|l| l.replace(' ', "   ").replace(' ', " \t") + "\r")
                .collect();
            ("whitespace", join(&spaced))
        }
        _ => {
            // Near-Idx::MAX coordinates. Parse-stage only: an accepted file
            // with a ~4-billion dimension must never reach kernel
            // construction (the runner's size guard enforces that).
            let big = (Idx::MAX as u64 + 1) - rng.below(3) as u64;
            lines[target] = format!("{big} 1 1 0.5");
            ("huge-coord", join(&lines))
        }
    };
    // Occasionally stack a second structural edit on top.
    if rng.below(4) == 0 {
        bytes.extend_from_slice(b"# tail comment\n\n");
    }
    (label, bytes)
}

/// Byte offsets inside an order-3 `.tnsb` v2 tile store: the shared
/// header (magic 4 + version 4 + order 4 + dims 24 + nnz 8), then the
/// grid, tile count, and 36-byte table records. The mutator edits fields
/// in place at these offsets, so a well-formed seed becomes a precisely
/// malformed one rather than random noise.
const TNSB_HEADER_END: usize = 44;
const TNSB_VERSION_AT: usize = 4;
const TNSB_NNZ_AT: usize = 36;
const TNSB_GRID_AT: usize = TNSB_HEADER_END;
const TNSB_NTILES_AT: usize = TNSB_GRID_AT + 12;
const TNSB_TABLE_AT: usize = TNSB_NTILES_AT + 8;
const TNSB_RECORD: usize = 36;

fn patch_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn patch_u64_add(b: &mut [u8], at: usize, delta: u64) {
    let old = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
    b[at..at + 8].copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
}

/// A small well-formed tile store with at least one tile, as bytes.
fn seed_tnsb(rng: &mut FuzzRng) -> Vec<u8> {
    let dims: [usize; NMODES] = std::array::from_fn(|_| 2 + rng.below(7));
    let n = 4 + rng.below(20);
    let mut entries = entries_in(rng, dims, n);
    // Guarantee a nonzero survivor even if random duplicates coalesce to
    // zero: the store must have at least one tile for record mutations.
    entries.push(Entry {
        idx: [0, 0, 0],
        val: 1.0,
    });
    let coo = CooTensor::from_entries(dims, entries);
    let grid: [usize; NMODES] = std::array::from_fn(|m| 1 + rng.below(dims[m].min(3)));
    let mut bytes = Vec::new();
    tenblock_tensor::TileStore::write_tiles(&coo, grid, &mut bytes)
        .expect("writing to a Vec cannot fail");
    bytes
}

/// Produces a mutated `.tnsb` tile-framing byte stream starting from a
/// well-formed store. Returns the mutation label and the bytes. Every
/// mutant must come back from `TileStore::validate_bytes` as `Ok` or a
/// typed `BinError` — never a panic.
pub fn mutant_tnsb(rng: &mut FuzzRng) -> (&'static str, Vec<u8>) {
    let mut b = seed_tnsb(rng);
    let n_tiles =
        u64::from_le_bytes(b[TNSB_NTILES_AT..TNSB_NTILES_AT + 8].try_into().unwrap()) as usize;
    let table_end = TNSB_TABLE_AT + n_tiles * TNSB_RECORD;
    let rec = TNSB_TABLE_AT + rng.below(n_tiles) * TNSB_RECORD;
    match rng.below(13) {
        0 => {
            // Cut mid-table: the reader must fail typed on the short read.
            let cut = TNSB_TABLE_AT + rng.below(table_end - TNSB_TABLE_AT);
            b.truncate(cut.max(1));
            ("truncated-table", b)
        }
        1 => {
            // Cut inside the payloads: the declared extents outrun the file.
            let cut = table_end.max(b.len().saturating_sub(1 + rng.below(19)));
            b.truncate(cut);
            ("truncated-payload", b)
        }
        2 => {
            // Tile claims one more nonzero than its byte length holds.
            patch_u64_add(&mut b, rec + 12, 1);
            ("lying-nnz", b)
        }
        3 => {
            // Byte length grows without the nonzeros to match: either the
            // nnz/len consistency check or extent tiling must fire.
            patch_u64_add(&mut b, rec + 28, 20);
            ("lying-len", b)
        }
        4 => {
            // Overlapping extents: a tile's offset rewinds into its
            // predecessor (or, with one tile, before the table end).
            patch_u64_add(&mut b, rec + 20, u64::MAX); // off -= 1
            ("overlapping-extents", b)
        }
        5 => {
            // Duplicate (or non-increasing) cell ids between records.
            if n_tiles >= 2 {
                let (first, second) = b.split_at_mut(TNSB_TABLE_AT + TNSB_RECORD);
                second[..12].copy_from_slice(&first[TNSB_TABLE_AT..TNSB_TABLE_AT + 12]);
            } else {
                // Single tile: make its cell id non-zero-minimal garbage
                // by pointing at the last grid cell twice over.
                patch_u32(&mut b, TNSB_TABLE_AT, u32::MAX);
            }
            ("duplicate-cell", b)
        }
        6 => {
            // Cell coordinate outside the grid.
            patch_u32(&mut b, rec + 4 * rng.below(3), u32::MAX);
            ("cell-out-of-range", b)
        }
        7 => {
            // Grid axis of zero, or far beyond the dimension.
            let at = TNSB_GRID_AT + 4 * rng.below(3);
            patch_u32(&mut b, at, if rng.below(2) == 0 { 0 } else { 0x7fff_ffff });
            ("bad-grid", b)
        }
        8 => {
            // Header nnz disagrees with the per-tile sum.
            patch_u64_add(&mut b, TNSB_NNZ_AT, 1);
            ("header-nnz-mismatch", b)
        }
        9 => {
            // Wrong payload version under a valid header (v1 bytes are not
            // a tile store; v0/v3 are unknown).
            patch_u32(&mut b, TNSB_VERSION_AT, *rng.pick(&[0u32, 1, 3, 99]));
            ("bad-version", b)
        }
        10 => {
            // Trailing garbage after the last declared extent.
            let junk = 1 + rng.below(24);
            for _ in 0..junk {
                b.push(rng.below(256) as u8);
            }
            ("trailing-garbage", b)
        }
        11 => {
            // Local coordinate outside its tile's span: the payload decode
            // must reject it (first local of the first tile's first entry).
            let off = u64::from_le_bytes(
                b[TNSB_TABLE_AT + 20..TNSB_TABLE_AT + 28]
                    .try_into()
                    .unwrap(),
            ) as usize;
            if off + 4 <= b.len() {
                patch_u32(&mut b, off, u32::MAX);
            }
            ("local-out-of-span", b)
        }
        _ => {
            // Single random bit flip anywhere: may survive (a value bit)
            // or trip any check, but must never panic.
            let at = rng.below(b.len());
            b[at] ^= 1 << rng.below(8);
            ("bit-flip", b)
        }
    }
}

fn join(lines: &[String]) -> Vec<u8> {
    let mut b = Vec::new();
    for l in lines {
        b.extend_from_slice(l.as_bytes());
        b.push(b'\n');
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_well_formed() {
        let mut a = FuzzRng::new(9);
        let mut b = FuzzRng::new(9);
        for _ in 0..200 {
            let ca = arb_case(&mut a);
            let cb = arb_case(&mut b);
            assert_eq!(ca.coo, cb.coo);
            assert_eq!(ca.rank, cb.rank);
            assert!(RANKS.contains(&ca.rank));
            assert!(ca.coo.dims().iter().all(|&d| d <= 4096));
            // Constructor invariant: every coordinate in range.
            for e in ca.coo.entries() {
                for m in 0..NMODES {
                    assert!((e.idx[m] as usize) < ca.coo.dims()[m]);
                }
            }
        }
    }

    #[test]
    fn all_classes_appear() {
        let mut rng = FuzzRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            seen.insert(arb_case(&mut rng).label);
        }
        assert!(seen.len() >= 8, "only saw {seen:?}");
    }

    #[test]
    fn render_roundtrips_through_the_parser() {
        let mut rng = FuzzRng::new(11);
        for _ in 0..50 {
            let case = arb_case(&mut rng);
            if case.coo.nnz() == 0 {
                continue; // dims are not encoded in .tns text
            }
            let text = render_tns(&case.coo);
            let back = tenblock_tensor::io::read_tns(text.as_bytes()).unwrap();
            assert_eq!(back.nnz(), case.coo.nnz());
            assert_eq!(back.entries(), case.coo.entries());
        }
    }

    #[test]
    fn mutants_are_deterministic() {
        let mut a = FuzzRng::new(21);
        let mut b = FuzzRng::new(21);
        for _ in 0..100 {
            assert_eq!(mutant_tns(&mut a), mutant_tns(&mut b));
            assert_eq!(mutant_tnsb(&mut a), mutant_tnsb(&mut b));
        }
    }

    #[test]
    fn tnsb_seed_is_well_formed_and_every_class_appears() {
        let mut rng = FuzzRng::new(5);
        // The unmutated seed must validate: mutants start from health.
        for _ in 0..20 {
            let bytes = seed_tnsb(&mut rng);
            tenblock_tensor::TileStore::validate_bytes(&bytes).unwrap();
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let (label, bytes) = mutant_tnsb(&mut rng);
            seen.insert(label);
            // Never panics; outcome is Ok or a typed BinError.
            let _ = tenblock_tensor::TileStore::validate_bytes(&bytes);
        }
        assert!(seen.len() >= 12, "only saw {seen:?}");
    }

    #[test]
    fn targeted_tnsb_classes_are_rejected() {
        // Classes that break structure (everything except bit flips, which
        // may land in value bytes) must come back as typed errors.
        let mut rng = FuzzRng::new(77);
        for _ in 0..300 {
            let (label, bytes) = mutant_tnsb(&mut rng);
            if label == "bit-flip" {
                continue;
            }
            assert!(
                tenblock_tensor::TileStore::validate_bytes(&bytes).is_err(),
                "{label} mutant was accepted"
            );
        }
    }
}
