//! Deterministic pseudo-random source for fuzz-case generation.
//!
//! SplitMix64: the same generator family as the proptest shim, so a fuzz
//! case is fully reproduced by its 64-bit seed. No external dependency,
//! no global state.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a stream from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..span` (`0` when `span == 0`).
    pub fn below(&mut self, span: usize) -> usize {
        if span == 0 {
            return 0;
        }
        (self.next_u64() % span as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` from the high 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[-1, 1)`.
    pub fn signed_unit(&mut self) -> f64 {
        self.unit_f64() * 2.0 - 1.0
    }

    /// One draw from `items` (panics on an empty slice — generator tables
    /// are compile-time constants here).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = FuzzRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let mut r = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            let s = r.signed_unit();
            assert!((-1.0..1.0).contains(&s));
        }
        assert_eq!(r.below(0), 0);
    }
}
