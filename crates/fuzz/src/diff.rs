//! The differential runner: every generated case goes through every
//! MTTKRP kernel in the registry (all seven kinds), the BCOO storage
//! round-trip, the tuner, and (sampled) the distributed executors,
//! cross-checked against the dense reference and the `tenblock-check`
//! oracles. Any panic, typed-error mismatch, or numeric disagreement
//! becomes a [`Finding`] with a minimized `.tns` repro.

use crate::gen::{render_tns, FuzzCase};
use crate::rng::FuzzRng;
use crate::Finding;
use std::panic::{catch_unwind, AssertUnwindSafe};
use tenblock_core::mttkrp::dense_mttkrp;
use tenblock_core::{
    try_build_kernel, try_tune, ExecPolicy, KernelConfig, KernelKind, TuneError, TuneOptions,
};
use tenblock_dist::exec::{run_3d, run_4d, DistConfig};
use tenblock_tensor::coo::perm_for_mode;
use tenblock_tensor::{CooTensor, DenseMatrix, NMODES};

/// Numeric agreement tolerance. Generated values are in `[-1, 1)` and case
/// sizes are bounded, so anything past reassociation noise is a real
/// divergence.
const TOL: f64 = 1e-7;

/// Runs `f`, converting a panic into its message. The caller installs a
/// silent panic hook for the whole fuzz run, so a caught panic does not
/// spam stderr.
pub(crate) fn catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Deterministic factor matrices for a differential run.
fn factors_for(coo: &CooTensor, rank: usize, seed: u64) -> Vec<DenseMatrix> {
    let mut rng = FuzzRng::new(seed);
    coo.dims()
        .iter()
        .map(|&d| DenseMatrix::from_fn(d, rank, |_, _| rng.signed_unit()))
        .collect()
}

/// A valid random kernel configuration for `(coo, mode)`: every grid axis
/// within its kernel-axis length, strip width from the interesting set.
fn valid_config(coo: &CooTensor, mode: usize, rank: usize, rng: &mut FuzzRng) -> KernelConfig {
    let perm = perm_for_mode(mode);
    let dims = coo.dims();
    let grid = std::array::from_fn(|ax| {
        let len = dims[perm[ax]].max(1);
        1 + rng.below(len.min(4))
    });
    let strip = *rng.pick(&[0, 1, 15, 16, 17, rank.max(1)]);
    KernelConfig {
        grid,
        strip_width: strip,
        exec: ExecPolicy::serial(),
    }
}

/// One full differential pass over a case: every kernel kind against the
/// dense reference (and each other), plus the race/invariant oracle run
/// and the BCOO storage round-trip.
/// Returns findings; pushes nothing when everything agrees.
pub(crate) fn check_kernels(case: &FuzzCase, rng: &mut FuzzRng) -> Vec<Finding> {
    let mut findings = Vec::new();
    let coo = &case.coo;
    let rank = case.rank;
    let mode = rng.below(NMODES);
    let cfg = valid_config(coo, mode, rank, rng);
    findings.extend(check_bcoo_round_trip(case, mode, &cfg));
    let factors = factors_for(coo, rank, rng.next_u64());
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];

    // Dense reference (cheap for the bounded generator sizes).
    let reference = match catch(|| dense_mttkrp(coo, &fs, mode)) {
        Ok(r) => r,
        Err(p) => {
            findings.push(Finding {
                seed: 0,
                case: format!("{}/dense-ref", case.label),
                detail: format!("dense reference panicked: {p}"),
                repro: Some(repro_text(coo, mode, rank, &cfg)),
                repro_bin: None,
            });
            return findings;
        }
    };

    for kind in KernelKind::ALL {
        let outcome = catch(|| {
            let k = try_build_kernel(kind, coo, mode, &cfg)?;
            let mut out = DenseMatrix::zeros(coo.dims()[mode], rank);
            k.mttkrp(&fs, &mut out);
            let mut checked = DenseMatrix::zeros(coo.dims()[mode], rank);
            let race = k.mttkrp_checked(&fs, &mut checked);
            Ok::<_, tenblock_core::KernelError>((out, checked, race))
        });
        let failure = match outcome {
            Err(panic_msg) => Some(format!("panicked: {panic_msg}")),
            Ok(Err(e)) => Some(format!("valid config rejected: {e}")),
            Ok(Ok((out, checked, race))) => {
                if let Err(r) = race {
                    Some(format!("oracle violation: {r}"))
                } else if !out.approx_eq(&reference, TOL) {
                    Some("diverges from the dense reference".to_string())
                } else if !checked.approx_eq(&out, TOL) {
                    Some("checked run disagrees with the plain run".to_string())
                } else {
                    None
                }
            }
        };
        if let Some(detail) = failure {
            // Shrink the tensor while the same check still fails, then
            // print the minimized case as a .tns repro.
            let small = minimize_entries(coo, &|cand| {
                kernel_check_fails(kind, cand, mode, rank, &cfg)
            });
            findings.push(Finding {
                seed: 0,
                case: format!("{}/{kind:?}", case.label),
                detail: format!("{kind:?} kernel {detail}"),
                repro: Some(repro_text(&small, mode, rank, &cfg)),
                repro_bin: None,
            });
        }
    }
    findings
}

/// The BCOO layout must round-trip losslessly (COO → BCOO → COO) for the
/// differential grid — the storage invariant every block-native kernel
/// result rests on.
fn check_bcoo_round_trip(case: &FuzzCase, mode: usize, cfg: &KernelConfig) -> Vec<Finding> {
    let coo = &case.coo;
    let failure = match catch(|| {
        let t = tenblock_tensor::BcooTensor::from_coo(coo, mode, cfg.grid);
        t.to_coo()
    }) {
        Err(p) => Some(format!("BCOO round-trip panicked: {p}")),
        Ok(back) if back != *coo => Some(format!(
            "BCOO round-trip lost data: {} entries in, {} out",
            coo.nnz(),
            back.nnz()
        )),
        Ok(_) => None,
    };
    failure
        .map(|detail| {
            let small = minimize_entries(coo, &|cand| {
                catch(|| {
                    tenblock_tensor::BcooTensor::from_coo(cand, mode, cfg.grid).to_coo() != *cand
                })
                .unwrap_or(true)
            });
            Finding {
                seed: 0,
                case: format!("{}/bcoo-round-trip", case.label),
                detail,
                repro: Some(repro_text(&small, mode, case.rank, cfg)),
                repro_bin: None,
            }
        })
        .into_iter()
        .collect()
}

/// The minimization predicate: does `kind` still fail (panic, rejection,
/// oracle violation, or dense divergence) on this shrunken tensor?
fn kernel_check_fails(
    kind: KernelKind,
    coo: &CooTensor,
    mode: usize,
    rank: usize,
    cfg: &KernelConfig,
) -> bool {
    let factors = factors_for(coo, rank, 0xfeed);
    let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
    let Ok(reference) = catch(|| dense_mttkrp(coo, &fs, mode)) else {
        return true;
    };
    match catch(|| {
        let k = try_build_kernel(kind, coo, mode, cfg)?;
        let mut out = DenseMatrix::zeros(coo.dims()[mode], rank);
        k.mttkrp(&fs, &mut out);
        Ok::<_, tenblock_core::KernelError>(out)
    }) {
        Err(_) | Ok(Err(_)) => true,
        Ok(Ok(out)) => !out.approx_eq(&reference, TOL),
    }
}

/// Greedy delta-debugging over the entry list: repeatedly drop chunks while
/// `fails` still holds. Dimensions are preserved (the kernel config's
/// validity depends on them).
pub fn minimize_entries(coo: &CooTensor, fails: &dyn Fn(&CooTensor) -> bool) -> CooTensor {
    let mut cur = coo.clone();
    let mut chunk = (cur.nnz() / 2).max(1);
    while cur.nnz() > 0 {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.nnz() {
            let mut entries = cur.entries().to_vec();
            let end = (i + chunk).min(entries.len());
            entries.drain(i..end);
            match CooTensor::try_from_entries(cur.dims(), entries) {
                Ok(cand) if fails(&cand) => {
                    cur = cand;
                    shrunk = true;
                }
                _ => i = end,
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

/// Repro text: the offending tensor in `.tns` form plus the exact request.
fn repro_text(coo: &CooTensor, mode: usize, rank: usize, cfg: &KernelConfig) -> String {
    format!(
        "# mode {mode} rank {rank} grid {:?} strip {}\n{}",
        cfg.grid,
        cfg.strip_width,
        render_tns(coo)
    )
}

/// Invalid kernel requests must come back as typed errors — never panics,
/// never silent acceptance.
pub(crate) fn check_invalid_configs(case: &FuzzCase, rng: &mut FuzzRng) -> Vec<Finding> {
    let mut findings = Vec::new();
    let coo = &case.coo;
    let base = valid_config(coo, 0, case.rank, rng);
    let mut expect_rejected = |label: &str, mode: usize, cfg: KernelConfig| {
        for kind in KernelKind::ALL {
            match catch(|| try_build_kernel(kind, coo, mode, &cfg).err()) {
                Err(p) => findings.push(Finding {
                    seed: 0,
                    case: format!("{}/{label}", case.label),
                    detail: format!("{kind:?} panicked on an invalid request: {p}"),
                    repro: Some(repro_text(coo, mode, case.rank, &cfg)),
                    repro_bin: None,
                }),
                Ok(None) => findings.push(Finding {
                    seed: 0,
                    case: format!("{}/{label}", case.label),
                    detail: format!("{kind:?} accepted an invalid request"),
                    repro: Some(repro_text(coo, mode, case.rank, &cfg)),
                    repro_bin: None,
                }),
                Ok(Some(_)) => {}
            }
        }
    };

    let bad_mode = NMODES + rng.below(5);
    expect_rejected("bad-mode", bad_mode, base.clone());

    let mut zero_grid = base.clone();
    zero_grid.grid[rng.below(NMODES)] = 0;
    expect_rejected("zero-grid", 0, zero_grid);

    let mode = rng.below(NMODES);
    let perm = perm_for_mode(mode);
    let ax = rng.below(NMODES);
    let mut oversized = base.clone();
    oversized.grid = std::array::from_fn(|a| {
        let len = coo.dims()[perm[a]].max(1);
        if a == ax {
            len + 1 + rng.below(3)
        } else {
            1
        }
    });
    expect_rejected("oversized-grid", mode, oversized);
    findings
}

/// The tuner must return `Ok` exactly on non-degenerate input, and the
/// selected configuration must satisfy the tuning oracle.
pub(crate) fn check_tuner(case: &FuzzCase, rng: &mut FuzzRng) -> Vec<Finding> {
    let mut findings = Vec::new();
    let coo = &case.coo;
    let mode = rng.below(NMODES);
    let mut opts = TuneOptions::new(case.rank);
    opts.reps = 1;
    opts.max_blocks = 4;
    opts.seed = rng.next_u64();

    let degenerate = coo.nnz() == 0 || case.rank == 0 || coo.dims().contains(&0);
    match catch(|| try_tune(coo, mode, &opts)) {
        Err(p) => findings.push(Finding {
            seed: 0,
            case: format!("{}/tune", case.label),
            detail: format!("tuner panicked: {p}"),
            repro: Some(render_tns(coo)),
            repro_bin: None,
        }),
        Ok(Ok(r)) => {
            if degenerate {
                findings.push(Finding {
                    seed: 0,
                    case: format!("{}/tune", case.label),
                    detail: "tuner accepted degenerate input".to_string(),
                    repro: Some(render_tns(coo)),
                    repro_bin: None,
                });
            } else if let Err(e) = r.validate(coo.dims(), mode, case.rank) {
                findings.push(Finding {
                    seed: 0,
                    case: format!("{}/tune", case.label),
                    detail: format!("selected configuration fails the tuning oracle: {e}"),
                    repro: Some(render_tns(coo)),
                    repro_bin: None,
                });
            }
        }
        Ok(Err(e)) => {
            let justified = match e {
                TuneError::EmptyTensor => coo.nnz() == 0,
                TuneError::RankZero => case.rank == 0,
                TuneError::ZeroAxis { mode } => coo.dims()[mode] == 0,
                TuneError::ModeOutOfRange { .. } => false, // mode < NMODES here
            };
            if !justified {
                findings.push(Finding {
                    seed: 0,
                    case: format!("{}/tune", case.label),
                    detail: format!("tuner rejected valid input: {e}"),
                    repro: Some(render_tns(coo)),
                    repro_bin: None,
                });
            }
        }
    }
    findings
}

/// Distributed execution on degenerate shapes: the partitioner and the
/// α–β model must produce finite times on anything the constructors accept.
pub(crate) fn check_dist(case: &FuzzCase, rng: &mut FuzzRng) -> Vec<Finding> {
    let mut findings = Vec::new();
    let coo = &case.coo;
    if case.rank == 0 || coo.nnz() == 0 || coo.dims().contains(&0) {
        return findings;
    }
    let cfg = DistConfig {
        reps: 1,
        ..DistConfig::new(case.rank)
    };
    let dims = coo.dims();
    let grid: [usize; NMODES] = std::array::from_fn(|m| (1 + rng.below(2)).min(dims[m]));
    let mut judge =
        |what: &str, outcome: Result<tenblock_dist::exec::DistResult, String>| match outcome {
            Err(p) => findings.push(Finding {
                seed: 0,
                case: format!("{}/{what}", case.label),
                detail: format!("{what} panicked: {p}"),
                repro: Some(render_tns(coo)),
                repro_bin: None,
            }),
            Ok(r) => {
                if !r.total_secs.is_finite() || r.total_secs < 0.0 || r.imbalance < 1.0 {
                    findings.push(Finding {
                        seed: 0,
                        case: format!("{}/{what}", case.label),
                        detail: format!(
                            "{what} produced a non-physical result: total {} imbalance {}",
                            r.total_secs, r.imbalance
                        ),
                        repro: Some(render_tns(coo)),
                        repro_bin: None,
                    });
                }
            }
        };
    judge("dist-3d", catch(|| run_3d(coo, &cfg, grid)));
    if case.rank >= 16 {
        let t = 1 + rng.below(2);
        judge("dist-4d", catch(|| run_4d(coo, &cfg, grid, t)));
    }
    findings
}
