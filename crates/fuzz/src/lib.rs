//! # tenblock-fuzz
//!
//! Zero-dependency, deterministic, structure-aware fuzzing for the
//! workspace's input boundary. Two coordinated stages per seed:
//!
//! 1. **Differential stage** — an adversarial [`CooTensor`] (empty
//!    tensors, single-slice/single-fiber shapes, all-duplicate
//!    coordinates, hyper-sparse long-tail dimensions, clustered dense
//!    blocks, ranks straddling the register block) runs through all
//!    seven MTTKRP kernels, the BCOO storage round-trip, the
//!    block-size tuner, and (sampled) the distributed executors. Results
//!    are cross-checked against the dense reference and the
//!    `tenblock-check` oracles; invalid requests must come back as typed
//!    errors ([`tenblock_core::KernelError`], [`tenblock_core::TuneError`]).
//! 2. **Parse stage** — a mutated `.tns` byte stream (non-finite values,
//!    zero/overflowing/near-`Idx::MAX` coordinates, truncations, trailing
//!    fields, non-UTF-8 bytes) goes through `read_tns`, which must return
//!    `Ok` or a typed `TnsError` — never panic. Accepted mutants small
//!    enough to allocate factors for are fed back into stage 1. A second
//!    mutator targets the `.tnsb` tile framing (truncated tile tables,
//!    lying per-tile lengths, overlapping byte extents, out-of-range
//!    cells and locals): `TileStore::validate_bytes` must likewise fail
//!    typed, never panic.
//!
//! Every violation becomes a [`Finding`] carrying a delta-debugged
//! (entry-minimized) `.tns` repro. The whole run is reproduced by its
//! base seed; there is no global state, no wall-clock dependence, and no
//! external crate.
//!
//! [`CooTensor`]: tenblock_tensor::CooTensor

pub mod diff;
pub mod gen;
pub mod rng;

pub use diff::minimize_entries;
pub use gen::{arb_case, mutant_tns, mutant_tnsb, render_tns, FuzzCase, RANKS};
pub use rng::FuzzRng;

use std::path::{Path, PathBuf};

/// Fuzzing run parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of seeds (cases) to run.
    pub seeds: u64,
    /// Base seed; seed `n` of the run derives from `base_seed + n`.
    pub base_seed: u64,
    /// Optional corpus directory: existing `.tns` files in it are replayed
    /// through the parse + differential stages and `.tnsb` files through
    /// the tile-framing validator; repro files for any findings are
    /// written back into it.
    pub corpus: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seeds: 200,
            base_seed: 0x7eb0,
            corpus: None,
        }
    }
}

/// One fuzzing violation: a panic that escaped the typed-error boundary, a
/// kernel/reference divergence, or an oracle failure.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Seed of the case that produced the finding.
    pub seed: u64,
    /// Generator class and failing component, e.g. `hyper-sparse/Mb`.
    pub case: String,
    /// What went wrong.
    pub detail: String,
    /// Minimized repro (`.tns` text with a request-parameter header), when
    /// one could be produced.
    pub repro: Option<String>,
    /// Binary repro (`.tnsb` tile-framing bytes), for findings from the
    /// binary parse stage where text cannot express the malformation.
    pub repro_bin: Option<Vec<u8>>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[seed {:#x}] {}: {}", self.seed, self.case, self.detail)?;
        if let Some(repro) = &self.repro {
            for line in repro.lines() {
                write!(f, "\n    {line}")?;
            }
        }
        if let Some(bin) = &self.repro_bin {
            write!(f, "\n    <{} bytes of .tnsb repro>", bin.len())?;
        }
        Ok(())
    }
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Differential tensor cases generated.
    pub tensor_cases: u64,
    /// Mutated `.tns` streams parsed.
    pub parse_cases: u64,
    /// Mutants the parser accepted.
    pub parse_accepted: u64,
    /// Mutants the parser rejected with a typed error.
    pub parse_rejected: u64,
    /// Mutated `.tnsb` tile-framing streams validated.
    pub tnsb_cases: u64,
    /// Tile-framing mutants the validator accepted.
    pub tnsb_accepted: u64,
    /// Tile-framing mutants the validator rejected with a typed error.
    pub tnsb_rejected: u64,
    /// Fault-injected `create_from_coo` runs (store published or typed
    /// error; never a panic or a half-written store).
    pub fault_runs: u64,
    /// Tuner differential runs.
    pub tuner_runs: u64,
    /// Distributed-executor differential runs.
    pub dist_runs: u64,
    /// Corpus files replayed.
    pub corpus_replayed: u64,
    /// Every violation found.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Whether the run found nothing (the expected steady state).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz: {} seed(s), {} tensor case(s), {} parse case(s) \
             ({} accepted / {} rejected)",
            self.seeds_run,
            self.tensor_cases,
            self.parse_cases,
            self.parse_accepted,
            self.parse_rejected
        )?;
        writeln!(
            f,
            "      {} tnsb case(s) ({} accepted / {} rejected)",
            self.tnsb_cases, self.tnsb_accepted, self.tnsb_rejected
        )?;
        writeln!(
            f,
            "      {} tuner run(s), {} dist run(s), {} fault run(s), \
             {} corpus file(s) replayed",
            self.tuner_runs, self.dist_runs, self.fault_runs, self.corpus_replayed
        )?;
        if self.findings.is_empty() {
            write!(f, "      no findings")
        } else {
            write!(f, "      {} FINDING(S):", self.findings.len())?;
            for finding in &self.findings {
                write!(f, "\n{finding}")?;
            }
            Ok(())
        }
    }
}

/// Runs the fuzzer. Deterministic in `opts`; panics inside the exercised
/// code are caught (with a silenced panic hook) and reported as findings.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport::default();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    if let Some(dir) = &opts.corpus {
        replay_corpus(dir, &mut report);
    }
    for n in 0..opts.seeds {
        let seed = opts
            .base_seed
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        run_seed(seed, &mut report);
        report.seeds_run += 1;
    }

    std::panic::set_hook(hook);
    if let Some(dir) = &opts.corpus {
        write_repros(dir, &report);
    }
    report
}

/// One seed: generate, run the differential stage, then the parse stage.
fn run_seed(seed: u64, report: &mut FuzzReport) {
    let mut rng = FuzzRng::new(seed);
    let case = gen::arb_case(&mut rng);
    report.tensor_cases += 1;
    collect(report, seed, diff::check_kernels(&case, &mut rng));
    collect(report, seed, diff::check_invalid_configs(&case, &mut rng));
    collect(report, seed, diff::check_tuner(&case, &mut rng));
    report.tuner_runs += 1;
    if rng.below(4) == 0 {
        collect(report, seed, diff::check_dist(&case, &mut rng));
        report.dist_runs += 1;
    }

    let (label, bytes) = gen::mutant_tns(&mut rng);
    report.parse_cases += 1;
    parse_stage(label, &bytes, seed, &mut rng, report);

    let (label, bytes) = gen::mutant_tnsb(&mut rng);
    report.tnsb_cases += 1;
    tnsb_stage(label, &bytes, seed, report);

    if rng.below(4) == 0 {
        fault_stage(&case, seed, &mut rng, report);
        report.fault_runs += 1;
    }
}

/// Fault stage: `TileStore::create_from_coo_with` under one randomly
/// drawn I/O fault (site × action × trigger) must publish a decodable
/// store or fail with a typed error — never panic, and never leave a
/// half-written file visible at the final path. The byte-flip action is
/// exempt from decodability (the payload is unchecksummed by design).
fn fault_stage(case: &FuzzCase, seed: u64, rng: &mut FuzzRng, report: &mut FuzzReport) {
    use tenblock_faults::{FaultAction, FaultOp, FaultPolicy, Trigger};
    if case.coo.nnz() == 0 {
        return;
    }
    let op = *rng.pick(&[FaultOp::Write, FaultOp::Sync, FaultOp::Rename]);
    let (action, flip) = *rng.pick(&[
        (FaultAction::Errno(5), false),
        (FaultAction::Errno(28), false),
        (FaultAction::ShortRead, false),
        (FaultAction::FlipByte, true),
        (FaultAction::Crash, false),
    ]);
    let trigger = if rng.below(2) == 0 {
        Trigger::Nth(rng.below(16) as u64)
    } else {
        Trigger::EveryNth(1 + rng.below(5) as u64)
    };
    let dir =
        std::env::temp_dir().join(format!("tenblock_fuzz_fault_{}_{seed}", std::process::id()));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("store.tnsb");
    let policy = FaultPolicy::new(op, action, trigger, seed);
    let outcome = diff::catch(|| {
        tenblock_tensor::TileStore::create_from_coo_with(&case.coo, [2, 2, 2], &path, policy)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let mut fail = |detail: String| {
        report.findings.push(Finding {
            seed,
            case: format!("fault/{}/{op:?}-{action:?}-{trigger:?}", case.label),
            detail,
            repro: None,
            repro_bin: None,
        });
    };
    match outcome {
        Err(p) => fail(format!("create_from_coo_with panicked: {p}")),
        Ok(_) => {
            if path.exists() && !flip {
                if let Err(e) = tenblock_tensor::TileStore::open(&path).and_then(|s| s.to_coo()) {
                    fail(format!("half-written store visible after fault: {e}"));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Binary parse-stage check: `TileStore::validate_bytes` must return `Ok`
/// or a typed [`tenblock_tensor::io_bin::BinError`] on every mutated tile
/// framing — truncated tables, lying lengths, overlapping extents — and
/// never panic. There is no size guard: validation streams the bytes it
/// is given and allocates per declared tile, which is itself under test.
fn tnsb_stage(label: &'static str, bytes: &[u8], seed: u64, report: &mut FuzzReport) {
    match diff::catch(|| tenblock_tensor::TileStore::validate_bytes(bytes)) {
        Err(p) => report.findings.push(Finding {
            seed,
            case: format!("tnsb/{label}"),
            detail: format!("validate_bytes panicked: {p}"),
            repro: None,
            repro_bin: Some(bytes.to_vec()),
        }),
        Ok(Ok(())) => report.tnsb_accepted += 1,
        Ok(Err(_)) => report.tnsb_rejected += 1,
    }
}

/// Parse-stage check: `read_tns` must not panic; accepted tensors small
/// enough to allocate factor matrices for go back through the kernels.
/// (The size guard is what keeps near-`Idx::MAX` coordinates confined to
/// the parse stage: a 4-billion-row factor matrix is an OOM, not a bug.)
fn parse_stage(
    label: &'static str,
    bytes: &[u8],
    seed: u64,
    rng: &mut FuzzRng,
    report: &mut FuzzReport,
) {
    match diff::catch(|| tenblock_tensor::io::read_tns(bytes)) {
        Err(p) => report.findings.push(Finding {
            seed,
            case: format!("tns/{label}"),
            detail: format!("read_tns panicked: {p}"),
            repro: Some(String::from_utf8_lossy(bytes).into_owned()),
            repro_bin: None,
        }),
        Ok(Ok(t)) => {
            report.parse_accepted += 1;
            if t.dims().iter().all(|&d| d <= 4096) && t.nnz() <= 2000 {
                let case = FuzzCase {
                    label: "tns-accepted",
                    coo: t,
                    rank: *rng.pick(&RANKS[1..]),
                };
                collect(report, seed, diff::check_kernels(&case, rng));
            }
        }
        Ok(Err(_)) => report.parse_rejected += 1,
    }
}

/// Stamps the seed onto stage findings and appends them.
fn collect(report: &mut FuzzReport, seed: u64, mut findings: Vec<Finding>) {
    for f in &mut findings {
        f.seed = seed;
    }
    report.findings.append(&mut findings);
}

/// Replays every `.tns` file in `dir` through the parse stage (and the
/// differential stage when small enough). Unreadable directories are
/// reported as findings rather than errors: a fuzz run should always
/// produce a report.
fn replay_corpus(dir: &Path, report: &mut FuzzReport) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            report.findings.push(Finding {
                seed: 0,
                case: "corpus".to_string(),
                detail: format!("cannot read corpus dir {}: {e}", dir.display()),
                repro: None,
                repro_bin: None,
            });
            return;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            matches!(
                p.extension().and_then(|x| x.to_str()),
                Some("tns") | Some("tnsb")
            )
        })
        .collect();
    paths.sort();
    for path in paths {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        report.corpus_replayed += 1;
        // Corpus files replay with a seed derived from their byte content,
        // so a repro file keeps exercising the same downstream choices.
        let seed = bytes
            .iter()
            .fold(0xc0f5u64, |h, &b| h.wrapping_mul(31).wrapping_add(b as u64));
        if path.extension().and_then(|x| x.to_str()) == Some("tnsb") {
            report.tnsb_cases += 1;
            tnsb_stage("corpus", &bytes, seed, report);
        } else {
            let mut rng = FuzzRng::new(seed);
            report.parse_cases += 1;
            parse_stage("corpus", &bytes, seed, &mut rng, report);
        }
    }
}

/// Writes each finding's repro into the corpus directory for replay.
fn write_repros(dir: &Path, report: &FuzzReport) {
    if report.findings.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(dir);
    for (n, f) in report.findings.iter().enumerate() {
        if let Some(repro) = &f.repro {
            let path = dir.join(format!("repro-{:016x}-{n}.tns", f.seed));
            let _ = std::fs::write(path, repro);
        }
        if let Some(bin) = &f.repro_bin {
            let path = dir.join(format!("repro-{:016x}-{n}.tnsb", f.seed));
            let _ = std::fs::write(path, bin);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::CooTensor;

    #[test]
    fn smoke_run_is_clean_and_counts() {
        let report = run(&FuzzOptions {
            seeds: 30,
            base_seed: 0x5eed,
            corpus: None,
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.seeds_run, 30);
        assert_eq!(report.tensor_cases, 30);
        assert_eq!(report.parse_cases, 30);
        assert_eq!(report.parse_accepted + report.parse_rejected, 30);
        assert_eq!(report.tnsb_cases, 30);
        assert_eq!(report.tnsb_accepted + report.tnsb_rejected, 30);
        // Nearly every framing mutation is a precise malformation the
        // validator must catch; only bit flips may land in value bytes.
        assert!(report.tnsb_rejected > report.tnsb_accepted);
        assert!(report.tuner_runs > 0);
        assert!(report.to_string().contains("no findings"));
    }

    #[test]
    fn runs_are_reproducible() {
        let opts = FuzzOptions {
            seeds: 10,
            base_seed: 7,
            corpus: None,
        };
        let a = run(&opts);
        let b = run(&opts);
        assert_eq!(a.parse_accepted, b.parse_accepted);
        assert_eq!(a.parse_rejected, b.parse_rejected);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn corpus_files_are_replayed() {
        let dir = std::env::temp_dir().join(format!("tenblock_fuzz_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.tns"), "1 1 1 2.0\n2 2 2 -1.5\n").unwrap();
        std::fs::write(dir.join("bad.tns"), "1 1 1 nan\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a tensor").unwrap();
        let report = run(&FuzzOptions {
            seeds: 1,
            base_seed: 1,
            corpus: Some(dir.clone()),
        });
        assert_eq!(report.corpus_replayed, 2);
        assert!(report.is_clean(), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn minimizer_shrinks_to_the_essential_entry() {
        let mut rng = FuzzRng::new(44);
        let dims = [8, 8, 8];
        let mut entries: Vec<tenblock_tensor::Entry> = (0..50u32)
            .map(|n| tenblock_tensor::Entry {
                idx: [rng.below(8) as u32, rng.below(8) as u32, n % 8],
                val: 0.25,
            })
            .collect();
        entries.push(tenblock_tensor::Entry {
            idx: [7, 7, 7],
            val: 9.0,
        });
        let coo = CooTensor::from_entries(dims, entries);
        let small = minimize_entries(&coo, &|t| t.entries().iter().any(|e| e.val > 5.0));
        assert_eq!(small.nnz(), 1);
        assert_eq!(small.entries()[0].val, 9.0);
    }
}
