//! Bounded job scheduler: a fixed worker pool fed by a bounded MPMC
//! channel, with explicit backpressure.
//!
//! Design decisions, in order of importance:
//!
//! * **Rejection over buffering.** `submit` uses `try_send`; a full queue
//!   returns [`SubmitError::QueueFull`] immediately instead of blocking the
//!   protocol thread or growing an unbounded backlog. Clients see a typed
//!   `queue-full` error and decide whether to retry.
//! * **Deadlines are checked at dequeue.** A job whose deadline passed
//!   while it waited in the queue fails with `deadline exceeded` without
//!   running — late answers to tuning/decomposition requests are worthless,
//!   so the worker's time goes to jobs that can still make their deadline.
//!   Running jobs are not preempted (MTTKRP loops have no safe interruption
//!   points).
//! * **Cancellation is queue-only.** `cancel` flips a queued job to
//!   `Cancelled`; the worker observes the flag at dequeue and skips it.
//!   Cancelling a running, finished, or unknown job is an error.
//!
//! The scheduler is generic over the payload and runner so its queueing
//! logic unit-tests without tensors.

use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Opaque job handle, rendered as `j-<n>` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j-{}", self.0)
    }
}

impl JobId {
    /// Parses the `j-<n>` wire form.
    pub fn parse(s: &str) -> Option<JobId> {
        s.strip_prefix("j-")?.parse().ok().map(JobId)
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState<R> {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; result attached.
    Done(R),
    /// Finished with an error (including `deadline exceeded`).
    Failed(String),
    /// Cancelled while queued.
    Cancelled,
}

impl<R> JobState<R> {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure, try again later.
    QueueFull,
    /// The scheduler has been shut down.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::Shutdown => write!(f, "scheduler is shut down"),
        }
    }
}

/// Why a cancellation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    /// No such job.
    NotFound,
    /// The job is already running; running jobs are not preempted.
    Running,
    /// The job already reached a terminal state.
    Finished,
}

impl std::fmt::Display for CancelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelError::NotFound => write!(f, "no such job"),
            CancelError::Running => write!(f, "job is already running"),
            CancelError::Finished => write!(f, "job already finished"),
        }
    }
}

struct JobRecord<R> {
    state: JobState<R>,
    deadline: Option<Instant>,
    submitted: Instant,
}

struct Table<P, R> {
    jobs: Mutex<HashMap<JobId, JobRecord<R>>>,
    /// Notified on every state transition; `wait` parks on it.
    changed: Condvar,
    _payload: std::marker::PhantomData<fn(P)>,
}

/// The scheduler. `P` is the job payload, `R` the result type.
pub struct Scheduler<P: Send + 'static, R: Clone + Send + 'static> {
    table: Arc<Table<P, R>>,
    sender: Option<crossbeam::channel::Sender<(JobId, P)>>,
    queue: crossbeam::channel::Receiver<(JobId, P)>,
    capacity: usize,
    next_id: AtomicU64,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: Send + 'static, R: Clone + Send + 'static> Scheduler<P, R> {
    /// Starts `workers` worker threads behind a queue of `capacity` slots.
    /// Each dequeued payload runs through `runner`; its `Result` becomes
    /// the job's terminal state.
    pub fn start<F>(workers: usize, capacity: usize, metrics: Arc<Metrics>, runner: F) -> Self
    where
        F: Fn(JobId, P) -> Result<R, String> + Send + Sync + 'static,
    {
        let (tx, rx) = crossbeam::channel::bounded(capacity.max(1));
        let table: Arc<Table<P, R>> = Arc::new(Table {
            jobs: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            _payload: std::marker::PhantomData,
        });
        let runner = Arc::new(runner);
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx: crossbeam::channel::Receiver<(JobId, P)> = rx.clone();
                let table = Arc::clone(&table);
                let metrics = Arc::clone(&metrics);
                let runner = Arc::clone(&runner);
                std::thread::spawn(move || {
                    while let Ok((id, payload)) = rx.recv() {
                        let submitted = {
                            let mut jobs = crate::sync::lock(&table.jobs);
                            // A missing record means the submitter's insert
                            // was rolled back; drop the stale queue entry.
                            let Some(rec) = jobs.get_mut(&id) else {
                                continue;
                            };
                            if matches!(rec.state, JobState::Cancelled) {
                                continue;
                            }
                            if rec.deadline.is_some_and(|d| Instant::now() > d) {
                                rec.state =
                                    JobState::Failed("deadline exceeded while queued".into());
                                metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                                table.changed.notify_all();
                                continue;
                            }
                            rec.state = JobState::Running;
                            table.changed.notify_all();
                            rec.submitted
                        };
                        metrics
                            .job_queue_wait
                            .observe(submitted.elapsed().as_secs_f64());
                        let run_start = Instant::now();
                        let outcome = runner(id, payload);
                        metrics.job_run.observe(run_start.elapsed().as_secs_f64());
                        metrics
                            .job_latency
                            .observe(submitted.elapsed().as_secs_f64());
                        let mut jobs = crate::sync::lock(&table.jobs);
                        let Some(rec) = jobs.get_mut(&id) else {
                            continue;
                        };
                        rec.state = match outcome {
                            Ok(r) => {
                                metrics.jobs_done.fetch_add(1, Ordering::Relaxed);
                                JobState::Done(r)
                            }
                            Err(e) => {
                                metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                                JobState::Failed(e)
                            }
                        };
                        table.changed.notify_all();
                    }
                })
            })
            .collect();
        Scheduler {
            table,
            sender: Some(tx),
            queue: rx,
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            metrics,
            workers: handles,
        }
    }

    /// Submits a job. Full queue → immediate [`SubmitError::QueueFull`].
    pub fn submit(&self, payload: P, deadline: Option<Duration>) -> Result<JobId, SubmitError> {
        let Some(sender) = &self.sender else {
            return Err(SubmitError::Shutdown);
        };
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let now = Instant::now();
        {
            let mut jobs = crate::sync::lock(&self.table.jobs);
            jobs.insert(
                id,
                JobRecord {
                    state: JobState::Queued,
                    deadline: deadline.map(|d| now + d),
                    submitted: now,
                },
            );
        }
        match sender.try_send((id, payload)) {
            Ok(()) => {
                self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                Ok(id)
            }
            Err(e) => {
                // Remove the provisional record; the job never existed as
                // far as clients are concerned.
                crate::sync::lock(&self.table.jobs).remove(&id);
                match e {
                    crossbeam::channel::TrySendError::Full(_) => {
                        self.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                        Err(SubmitError::QueueFull)
                    }
                    crossbeam::channel::TrySendError::Disconnected(_) => Err(SubmitError::Shutdown),
                }
            }
        }
    }

    /// Current state of `id` (cloned), or `None` for unknown jobs.
    pub fn status(&self, id: JobId) -> Option<JobState<R>> {
        crate::sync::lock(&self.table.jobs)
            .get(&id)
            .map(|r| r.state.clone())
    }

    /// Blocks until `id` reaches a terminal state, up to `timeout`.
    /// Returns the terminal state, or `None` on unknown job / timeout.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobState<R>> {
        let deadline = Instant::now() + timeout;
        let mut jobs = crate::sync::lock(&self.table.jobs);
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(rec) if rec.state.is_terminal() => return Some(rec.state.clone()),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            jobs = crate::sync::wait_timeout(&self.table.changed, jobs, deadline - now);
        }
    }

    /// Cancels a queued job.
    pub fn cancel(&self, id: JobId) -> Result<(), CancelError> {
        let mut jobs = crate::sync::lock(&self.table.jobs);
        let rec = jobs.get_mut(&id).ok_or(CancelError::NotFound)?;
        match rec.state {
            JobState::Queued => {
                rec.state = JobState::Cancelled;
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.table.changed.notify_all();
                Ok(())
            }
            JobState::Running => Err(CancelError::Running),
            _ => Err(CancelError::Finished),
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stops accepting jobs, drains the queue, joins the workers.
    pub fn shutdown(&mut self) {
        self.sender = None; // workers' recv() returns Err once drained
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<P: Send + 'static, R: Clone + Send + 'static> Drop for Scheduler<P, R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched<F>(workers: usize, cap: usize, f: F) -> (Scheduler<u64, u64>, Arc<Metrics>)
    where
        F: Fn(u64) -> Result<u64, String> + Send + Sync + 'static,
    {
        let metrics = Arc::new(Metrics::default());
        (
            Scheduler::start(workers, cap, Arc::clone(&metrics), move |_, x| f(x)),
            metrics,
        )
    }

    #[test]
    fn runs_jobs_to_done() {
        let (s, m) = sched(2, 8, |x| Ok(x * 2));
        let ids: Vec<_> = (0..5).map(|x| s.submit(x, None).unwrap()).collect();
        for (x, id) in ids.into_iter().enumerate() {
            match s.wait(id, Duration::from_secs(5)) {
                Some(JobState::Done(r)) => assert_eq!(r, x as u64 * 2),
                other => panic!("job {id} ended as {other:?}"),
            }
        }
        assert_eq!(m.jobs_done.load(Ordering::Relaxed), 5);
        // Every executed job contributes to all three latency histograms.
        assert_eq!(m.job_latency.snapshot().total, 5);
        assert_eq!(m.job_queue_wait.snapshot().total, 5);
        assert_eq!(m.job_run.snapshot().total, 5);
    }

    #[test]
    fn failure_is_reported() {
        let (s, m) = sched(1, 4, |_| Err("boom".to_string()));
        let id = s.submit(1, None).unwrap();
        assert_eq!(
            s.wait(id, Duration::from_secs(5)),
            Some(JobState::Failed("boom".into()))
        );
        assert_eq!(m.jobs_failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_rejects_typed() {
        // One worker parked on a gate; queue of 1.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let (s, _m) = sched(1, 1, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(0)
        });
        let running = s.submit(1, None).unwrap();
        // Wait until the worker picked job 1 up, so job 2 surely occupies
        // the single queue slot.
        while s.status(running) != Some(JobState::Running) {
            std::thread::yield_now();
        }
        let queued = s.submit(2, None).unwrap();
        assert_eq!(s.submit(3, None), Err(SubmitError::QueueFull));
        assert_eq!(s.queue_depth(), 1);

        // Open the gate; everything drains.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert!(matches!(
            s.wait(queued, Duration::from_secs(5)),
            Some(JobState::Done(_))
        ));
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let (s, _m) = sched(1, 4, move |x| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(x)
        });
        let first = s.submit(1, None).unwrap();
        while s.status(first) != Some(JobState::Running) {
            std::thread::yield_now();
        }
        let second = s.submit(2, None).unwrap();
        assert_eq!(s.cancel(second), Ok(()));
        assert_eq!(s.status(second), Some(JobState::Cancelled));
        assert_eq!(s.cancel(first), Err(CancelError::Running));
        assert_eq!(s.cancel(JobId(999)), Err(CancelError::NotFound));

        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert!(matches!(
            s.wait(first, Duration::from_secs(5)),
            Some(JobState::Done(_))
        ));
        // Cancelled job stays cancelled (worker skipped it).
        assert_eq!(s.status(second), Some(JobState::Cancelled));
        assert_eq!(s.cancel(second), Err(CancelError::Finished));
    }

    #[test]
    fn queued_deadline_expires_without_running() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let (s, m) = sched(1, 4, move |x| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(x)
        });
        let first = s.submit(1, None).unwrap();
        while s.status(first) != Some(JobState::Running) {
            std::thread::yield_now();
        }
        let doomed = s.submit(2, Some(Duration::from_millis(1))).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        match s.wait(doomed, Duration::from_secs(5)) {
            Some(JobState::Failed(msg)) => assert!(msg.contains("deadline")),
            other => panic!("expected deadline failure, got {other:?}"),
        }
        assert!(m.jobs_failed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let (mut s, m) = sched(2, 8, Ok);
        let ids: Vec<_> = (0..4).map(|x| s.submit(x, None).unwrap()).collect();
        s.shutdown();
        assert_eq!(s.submit(9, None), Err(SubmitError::Shutdown));
        for id in ids {
            assert!(matches!(s.status(id), Some(JobState::Done(_))));
        }
        assert_eq!(m.jobs_done.load(Ordering::Relaxed), 4);
    }
}
