//! Poison-recovering lock helpers.
//!
//! The serve crate keeps running after a worker panic: the panic is caught
//! at the job boundary and reported as a failed job, so a poisoned mutex
//! only means "a panic happened while the lock was held", not that the
//! guarded data is gone. These helpers recover the guard instead of
//! unwrapping, which keeps the scheduler, registry, and plan cache alive —
//! and keeps `lock().unwrap()` out of the workspace lint's findings.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Locks a mutex, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-locks an `RwLock`, recovering from poisoning.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks an `RwLock`, recovering from poisoning.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on a condvar with a timeout, recovering the guard from poisoning
/// (the timed-out flag is dropped — callers re-check their predicate).
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, dur) {
        Ok((g, _timeout)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn lock_recovers_after_a_panic_poisons_the_mutex() {
        let m: Mutex<VecDeque<u32>> = Mutex::new([1, 2].into());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(lock(&m).pop_front(), Some(1));
    }

    #[test]
    fn rwlock_helpers_round_trip() {
        let l = RwLock::new(5u32);
        *write(&l) += 1;
        assert_eq!(*read(&l), 6);
    }

    #[test]
    fn wait_timeout_returns_the_guard() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let g = lock(&m);
        let g = wait_timeout(&cv, g, Duration::from_millis(1));
        assert_eq!(*g, 0);
    }
}
