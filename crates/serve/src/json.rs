//! Minimal hand-rolled JSON: the wire format of the serve protocol and the
//! on-disk format of the plan cache. No external dependencies — the build
//! environment is offline — and no serde-style derive: the handful of
//! message types in [`crate::proto`] build and match [`Json`] values
//! directly.
//!
//! Supported: objects, arrays, strings (with `\uXXXX` escapes), finite
//! numbers, booleans, null. Not supported (rejected on parse): trailing
//! commas, comments, non-finite numbers.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are sorted (`BTreeMap`) so serialization is
/// deterministic — handy for tests and for diffable plan-cache files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str<S: Into<String>>(s: S) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num<N: Into<f64>>(n: N) -> Json {
        Json::Num(n.into())
    }

    /// Number from a usize (lossless for < 2^53, far beyond any nnz here).
    pub fn usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Field as string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Field as f64.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Field as usize (rejects negatives and non-integers).
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        let n = self.get_num(key)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// Field as u64 (rejects negatives and non-integers).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get_usize(key).map(|n| n as u64)
    }

    /// Field as bool.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a single-line string (no trailing newline).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    fn at(pos: usize, msg: &str) -> ParseError {
        ParseError {
            pos,
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(_) => Err(ParseError::at(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "invalid literal"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid utf-8 in number"))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Json::Num(n)),
        _ => Err(ParseError::at(start, "invalid number")),
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
                        // Surrogates are rejected rather than paired; the
                        // protocol never emits them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| ParseError::at(*pos, "invalid codepoint"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (1-4 bytes).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid utf-8"))?;
                let Some(c) = rest.chars().next() else {
                    return Err(ParseError::at(*pos, "unterminated string"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ParseError::at(*pos, "expected object key"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text =
            r#"{"cmd":"gen","nested":{"a":[1,2.5,-3,true,false,null],"s":"hi\n\"there\""},"n":42}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get_str("cmd"), Some("gen"));
        assert_eq!(v.get_usize("n"), Some(42));
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        let v = Json::obj([("nnz", Json::usize(3_000_000)), ("x", Json::num(0.5))]);
        let s = v.to_string_compact();
        assert_eq!(s, r#"{"nnz":3000000,"x":0.5}"#);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "01x",
            "{} extra",
            "nul",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""aAé""#).unwrap();
        assert_eq!(v, Json::Str("aAé".to_string()));
        // control characters are escaped on output and round-trip
        let s = Json::Str("a\u{1}b".into()).to_string_compact();
        assert_eq!(s, r#""a\u0001b""#);
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("a\u{1}b".into()));
    }

    #[test]
    fn typed_getters_reject_mismatches() {
        let v = Json::parse(r#"{"s":"x","n":1.5,"i":-2,"b":true}"#).unwrap();
        assert_eq!(v.get_str("n"), None);
        assert_eq!(v.get_usize("n"), None, "fractional");
        assert_eq!(v.get_usize("i"), None, "negative");
        assert_eq!(v.get_bool("b"), Some(true));
        assert_eq!(v.get("missing"), None);
    }
}
