//! Wire protocol: request parsing, dispatch, and response shaping.
//!
//! Transport-independent on purpose: [`Service::handle`] maps one request
//! [`Json`] value to one response [`Json`] value, so the whole protocol is
//! testable without a socket. `server.rs` wraps this in line-delimited
//! JSON over TCP.
//!
//! Every response carries `"ok"` and the protocol version `"v"`
//! ([`PROTOCOL_VERSION`], currently 1). Errors add `"error"`
//! (human-readable) and `"code"` (machine-readable, one of
//! [`ErrorCode`]). Long-running commands (`tune`, `mttkrp`, `decompose`)
//! submit a job and return its id; pass `"wait": true` to block for the
//! result inline (waits are clamped to [`DEFAULT_WAIT`]).

use crate::json::Json;
use crate::metrics::Metrics;
use crate::plan_cache::{PlanCache, PlanKey, TunedPlan};
use crate::registry::{Registry, RegistryError};
use crate::scheduler::{CancelError, JobId, JobState, Scheduler, SubmitError};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tenblock_core::obs::{Rec, TraceRecorder};
use tenblock_core::{build_kernel, try_tune, ExecPolicy, KernelConfig, KernelKind, TuneOptions};
use tenblock_cpd::{cp_apr, CpAls, CpAlsOptions, CpAprOptions};
use tenblock_tensor::{DenseMatrix, NMODES};

/// Wire protocol version, carried as `"v"` on every response. Bump it on
/// any change a deployed client could observe (renamed/removed fields,
/// changed semantics); purely additive fields keep the version.
pub const PROTOCOL_VERSION: usize = 1;

/// Default block time for `"wait": true` requests, and the upper bound any
/// client-supplied wait is clamped to (a connection must not be able to
/// park a protocol thread indefinitely).
pub const DEFAULT_WAIT: Duration = Duration::from_secs(600);

/// Machine-readable error codes, serialized into the `"code"` field from
/// exactly one place ([`ErrorCode::as_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or incomplete request.
    BadRequest,
    /// Unrecognized `"cmd"`.
    UnknownCmd,
    /// Named tensor or job does not exist.
    NotFound,
    /// The bounded job queue is at capacity.
    QueueFull,
    /// The request was well-formed but the tensor bytes are malformed
    /// (parse/format failure in the `.tns` / `.tnsb` readers).
    InvalidTensor,
    /// The request was well-formed but a parameter is semantically invalid
    /// for the computation (rank 0, mode out of range).
    InvalidConfig,
    /// A spilled tensor's on-disk store failed validation on reload and
    /// was quarantined; the data is unavailable until re-registered.
    SpillCorrupt,
    /// Server-side failure not attributable to the request.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownCmd => "unknown-cmd",
            ErrorCode::NotFound => "not-found",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::InvalidTensor => "invalid-tensor",
            ErrorCode::InvalidConfig => "invalid-config",
            ErrorCode::SpillCorrupt => "spill-corrupt",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Work accepted into the job queue.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// Run the Section V-C heuristic (through the plan cache).
    Tune {
        tensor: String,
        rank: usize,
        reps: usize,
        max_blocks: usize,
    },
    /// Time one mode's MTTKRP with a chosen kernel.
    Mttkrp {
        tensor: String,
        mode: usize,
        kernel: KernelKind,
        rank: usize,
        reps: usize,
    },
    /// Run CP-ALS or CP-APR.
    Decompose {
        tensor: String,
        method: Method,
        rank: usize,
        iters: usize,
        kernel: KernelKind,
    },
}

/// Decomposition algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Alternating least squares.
    Als,
    /// Poisson alternating regression (KL loss).
    Apr,
}

/// Shared read-mostly state: everything the job runner and the protocol
/// handler both touch.
pub struct ServiceCore {
    /// Resident tensors.
    pub registry: Registry,
    /// Memoized tuning plans.
    pub plans: PlanCache,
    /// Service counters.
    pub metrics: Arc<Metrics>,
    /// Span tree of the most recently finished job, served by the `trace`
    /// command. One job's worth is kept: the trace is a debugging aid, not
    /// a log.
    pub last_trace: Mutex<Option<(JobId, Json)>>,
}

/// The in-process service: core state plus the job scheduler.
pub struct Service {
    core: Arc<ServiceCore>,
    scheduler: Scheduler<JobPayload, Json>,
}

/// Resolves a kernel name (the same vocabulary as the CLI `--kernel` flag).
fn kernel_by_name(name: &str) -> Option<KernelKind> {
    match name.to_ascii_lowercase().as_str() {
        "coo" => Some(KernelKind::Coo),
        "splatt" => Some(KernelKind::Splatt),
        "mb" => Some(KernelKind::Mb),
        "rankb" => Some(KernelKind::RankB),
        "mbrankb" | "mb+rankb" => Some(KernelKind::MbRankB),
        "csf" => Some(KernelKind::Csf),
        "bcoo" => Some(KernelKind::Bcoo),
        _ => None,
    }
}

/// Rejects a rank no computation can use (0 means no factor columns).
/// Checked at parse time so the job queue never sees the request.
fn require_rank(cmd: &str, rank: usize) -> Result<usize, Json> {
    if rank == 0 {
        return Err(err(
            ErrorCode::InvalidConfig,
            format!("{cmd}: rank must be >= 1"),
        ));
    }
    Ok(rank)
}

/// Rejects a mode that names no tensor axis.
fn require_mode(cmd: &str, mode: usize) -> Result<usize, Json> {
    if mode >= NMODES {
        return Err(err(
            ErrorCode::InvalidConfig,
            format!("{cmd}: mode {mode} out of range (0..{NMODES})"),
        ));
    }
    Ok(mode)
}

/// Shapes an error response. Also used by the TCP front-end for
/// parse-level errors, so every error on the wire goes through here.
pub(crate) fn err(code: ErrorCode, msg: impl Into<String>) -> Json {
    Json::obj([
        ("v", Json::usize(PROTOCOL_VERSION)),
        ("ok", Json::Bool(false)),
        ("code", Json::str(code.as_str())),
        ("error", Json::str(msg.into())),
    ])
}

fn ok(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut o = Json::obj([
        ("v", Json::usize(PROTOCOL_VERSION)),
        ("ok", Json::Bool(true)),
    ]);
    if let Json::Obj(map) = &mut o {
        for (k, v) in fields {
            map.insert(k.to_string(), v);
        }
    }
    o
}

fn registry_err(e: RegistryError) -> Json {
    match e {
        RegistryError::NotFound(_) => err(ErrorCode::NotFound, e.to_string()),
        RegistryError::InvalidTensor(_) => err(ErrorCode::InvalidTensor, e.to_string()),
        RegistryError::SpillCorrupt(_) => err(ErrorCode::SpillCorrupt, e.to_string()),
        RegistryError::Exists(_) | RegistryError::Load(_) => {
            err(ErrorCode::BadRequest, e.to_string())
        }
    }
}

/// Executes one job payload against the shared core. Runs on a worker
/// thread; the returned JSON becomes the job's `Done` result.
///
/// Every job runs under its own [`TraceRecorder`]; the finished span tree
/// replaces [`ServiceCore::last_trace`] whether the job succeeded or not.
fn run_job(core: &ServiceCore, id: JobId, payload: JobPayload) -> Result<Json, String> {
    let tracer = Arc::new(TraceRecorder::new());
    let rec = Rec::new(Arc::clone(&tracer) as _);
    let result = run_traced(core, &rec, payload);
    let tree = Json::parse(&tracer.to_span_tree_json())
        .unwrap_or_else(|e| err(ErrorCode::Internal, format!("trace serialization: {e}")));
    *crate::sync::lock(&core.last_trace) = Some((id, tree));
    result
}

fn run_traced(core: &ServiceCore, rec: &Rec, payload: JobPayload) -> Result<Json, String> {
    match payload {
        JobPayload::Tune {
            tensor,
            rank,
            reps,
            max_blocks,
        } => {
            let _span = rec.span("job/tune");
            let entry = core.registry.get(&tensor).map_err(|e| e.to_string())?;
            let key = PlanKey {
                fingerprint: entry.fingerprint,
                rank,
            };
            let (plan, cached) = core
                .plans
                .get_or_try_compute::<String, _>(key, || {
                    let mut opts = TuneOptions::new(rank);
                    opts.reps = reps;
                    opts.max_blocks = max_blocks;
                    opts.exec = ExecPolicy::serial().with_recorder(rec.clone());
                    // Degenerate tensors (empty, zero-length mode) fail the
                    // job with a typed message instead of panicking a worker.
                    let r = try_tune(&entry.coo, 0, &opts).map_err(|e| format!("tune: {e}"))?;
                    Ok(TunedPlan {
                        kernel: r.kind.as_str().to_string(),
                        grid: r.grid,
                        strip_width: r.strip_width,
                        best_secs: r.best_secs,
                    })
                })
                .map_err(|e| format!("plan cache write failed: {e}"))??;
            if cached {
                core.metrics.plan_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                core.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Json::obj([
                ("tensor", Json::str(tensor)),
                ("rank", Json::usize(rank)),
                ("kernel", Json::str(plan.kernel.clone())),
                (
                    "grid",
                    Json::Arr(plan.grid.iter().map(|&g| Json::usize(g)).collect()),
                ),
                ("strip_width", Json::usize(plan.strip_width)),
                ("best_secs", Json::num(plan.best_secs)),
                ("cached", Json::Bool(cached)),
            ]))
        }
        JobPayload::Mttkrp {
            tensor,
            mode,
            kernel,
            rank,
            reps,
        } => {
            let _span = rec.span("job/mttkrp");
            let entry = core.registry.get(&tensor).map_err(|e| e.to_string())?;
            if mode >= NMODES {
                return Err(format!("mode {mode} out of range (0..{NMODES})"));
            }
            // Use the tuned plan when one is cached for this shape+rank;
            // otherwise the kernel defaults.
            let mut cfg = core
                .plans
                .lookup(PlanKey {
                    fingerprint: entry.fingerprint,
                    rank,
                })
                .map(|p| KernelConfig {
                    grid: p.grid,
                    strip_width: p.strip_width,
                    ..Default::default()
                })
                .unwrap_or_default();
            cfg.exec = ExecPolicy::serial().with_recorder(rec.clone());
            let k = build_kernel(kernel, &entry.coo, mode, &cfg);
            let dims = entry.coo.dims();
            let factors: Vec<DenseMatrix> = dims
                .iter()
                .map(|&d| DenseMatrix::from_fn(d, rank, |r, c| ((r * 7 + c) % 11) as f64 * 0.1))
                .collect();
            let fs: [&DenseMatrix; NMODES] = [&factors[0], &factors[1], &factors[2]];
            let mut out = DenseMatrix::zeros(dims[mode], rank);
            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                k.mttkrp(&fs, &mut out);
                let secs = t0.elapsed().as_secs_f64();
                core.metrics.mttkrp_latency.observe(secs);
                best = best.min(secs);
            }
            Ok(Json::obj([
                ("tensor", Json::str(tensor)),
                ("mode", Json::usize(mode)),
                ("kernel", Json::str(k.name())),
                ("rank", Json::usize(rank)),
                ("best_secs", Json::num(best)),
            ]))
        }
        JobPayload::Decompose {
            tensor,
            method,
            rank,
            iters,
            kernel,
        } => {
            let _span = rec.span("job/decompose");
            let entry = core.registry.get(&tensor).map_err(|e| e.to_string())?;
            let mut cfg = core
                .plans
                .lookup(PlanKey {
                    fingerprint: entry.fingerprint,
                    rank,
                })
                .map(|p| KernelConfig {
                    grid: p.grid,
                    strip_width: p.strip_width,
                    ..Default::default()
                })
                .unwrap_or(KernelConfig {
                    grid: [4, 2, 2],
                    strip_width: 16,
                    ..Default::default()
                });
            cfg.exec = ExecPolicy::auto().with_recorder(rec.clone());
            match method {
                Method::Als => {
                    let mut opts = CpAlsOptions::new(rank);
                    opts.max_iters = iters;
                    opts.kernel = kernel;
                    opts.kernel_cfg = cfg;
                    let r = CpAls::new(&entry.coo, opts).run(&entry.coo);
                    Ok(Json::obj([
                        ("tensor", Json::str(tensor)),
                        ("method", Json::str("als")),
                        ("rank", Json::usize(rank)),
                        ("fit", Json::num(*r.fit_history.last().unwrap_or(&0.0))),
                        ("iterations", Json::usize(r.iterations)),
                        ("converged", Json::Bool(r.converged)),
                    ]))
                }
                Method::Apr => {
                    let mut opts = CpAprOptions::new(rank);
                    opts.max_iters = iters;
                    opts.kernel = kernel;
                    opts.kernel_cfg = cfg;
                    let r = cp_apr(&entry.coo, &opts);
                    Ok(Json::obj([
                        ("tensor", Json::str(tensor)),
                        ("method", Json::str("apr")),
                        ("rank", Json::usize(rank)),
                        (
                            "loglik",
                            Json::num(*r.loglik_history.last().unwrap_or(&f64::NEG_INFINITY)),
                        ),
                        ("iterations", Json::usize(r.iterations)),
                        ("converged", Json::Bool(r.converged)),
                    ]))
                }
            }
        }
    }
}

impl Service {
    /// Builds a service: `workers` job threads behind a queue of
    /// `queue_capacity` slots, with `plans` as the tuned-plan cache.
    pub fn new(workers: usize, queue_capacity: usize, plans: PlanCache) -> Service {
        Service::with_registry(workers, queue_capacity, plans, Registry::new())
    }

    /// [`Service::new`] with a caller-built registry (e.g. one configured
    /// with a spill tier via [`Registry::with_spill`]).
    pub fn with_registry(
        workers: usize,
        queue_capacity: usize,
        plans: PlanCache,
        registry: Registry,
    ) -> Service {
        let metrics = Arc::new(Metrics {
            // Share the registry's degradation counters so the `metrics`
            // command sees spill failures and quarantines as they happen.
            faults: Arc::clone(registry.fault_counters()),
            ..Metrics::default()
        });
        metrics
            .plan_skipped
            .store(plans.skipped(), Ordering::Relaxed);
        let core = Arc::new(ServiceCore {
            registry,
            plans,
            metrics: Arc::clone(&metrics),
            last_trace: Mutex::new(None),
        });
        let runner_core = Arc::clone(&core);
        let scheduler = Scheduler::start(workers, queue_capacity, metrics, move |id, payload| {
            run_job(&runner_core, id, payload)
        });
        Service { core, scheduler }
    }

    /// The shared core (registry, plans, metrics).
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }

    /// Handles one request; never panics on malformed input.
    pub fn handle(&self, req: &Json) -> Json {
        self.core.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let Some(cmd) = req.get_str("cmd") else {
            return err(ErrorCode::BadRequest, "missing \"cmd\"");
        };
        match cmd {
            "load" => self.cmd_load(req),
            "gen" => self.cmd_gen(req),
            "stats" => self.cmd_stats(req),
            "list" => {
                let reg = &self.core.registry;
                let strs = |v: Vec<String>| Json::Arr(v.into_iter().map(Json::Str).collect());
                let stream = reg.stream_stats().snapshot();
                ok([
                    ("tensors", strs(reg.names())),
                    ("resident", strs(reg.resident_names())),
                    ("spilled", strs(reg.spilled_names())),
                    (
                        "stream",
                        Json::obj([
                            ("tiles_loaded", Json::num(stream.tiles_loaded as f64)),
                            ("bytes_streamed", Json::num(stream.bytes_streamed as f64)),
                            (
                                "prefetch_stall_ns",
                                Json::num(stream.prefetch_stall_ns as f64),
                            ),
                            // Additive (protocol stays v1): transient tile
                            // reloads that were retried.
                            ("tile_retries", Json::num(stream.tile_retries as f64)),
                        ]),
                    ),
                    // Additive (protocol stays v1): degradation counters.
                    ("faults", reg.fault_counters().snapshot().to_json()),
                ])
            }
            "tune" => self.submit_cmd(req, Self::parse_tune),
            "mttkrp" => self.submit_cmd(req, Self::parse_mttkrp),
            "decompose" => self.submit_cmd(req, Self::parse_decompose),
            "job-status" => self.cmd_job_status(req),
            "cancel" => self.cmd_cancel(req),
            "trace" => {
                // Clone out under the lock and release it before building
                // the response: a match-scrutinee temporary would hold the
                // guard for every arm of the surrounding match.
                let snap = crate::sync::lock(&self.core.last_trace).clone();
                match snap {
                    Some((id, tree)) => ok([("job", Json::str(id.to_string())), ("trace", tree)]),
                    None => err(ErrorCode::NotFound, "no job has finished yet"),
                }
            }
            "metrics" => ok([(
                "metrics",
                self.core
                    .metrics
                    .snapshot(self.scheduler.queue_depth(), self.scheduler.capacity())
                    .to_json(),
            )]),
            other => err(ErrorCode::UnknownCmd, format!("unknown command {other:?}")),
        }
    }

    fn cmd_load(&self, req: &Json) -> Json {
        let Some(name) = req.get_str("name") else {
            return err(ErrorCode::BadRequest, "load: missing \"name\"");
        };
        let Some(path) = req.get_str("path") else {
            return err(ErrorCode::BadRequest, "load: missing \"path\"");
        };
        match self.core.registry.load(name, path) {
            Ok(entry) => {
                self.core
                    .metrics
                    .tensors_registered
                    .fetch_add(1, Ordering::Relaxed);
                ok([
                    ("name", Json::str(name)),
                    ("nnz", Json::usize(entry.stats.nnz)),
                    (
                        "fingerprint",
                        Json::str(format!("{:016x}", entry.fingerprint)),
                    ),
                ])
            }
            Err(e) => registry_err(e),
        }
    }

    fn cmd_gen(&self, req: &Json) -> Json {
        let Some(name) = req.get_str("name") else {
            return err(ErrorCode::BadRequest, "gen: missing \"name\"");
        };
        let Some(dataset) = req.get_str("dataset") else {
            return err(ErrorCode::BadRequest, "gen: missing \"dataset\"");
        };
        let nnz = req.get_usize("nnz");
        let seed = req.get_u64("seed").unwrap_or(42);
        match self.core.registry.generate(name, dataset, nnz, seed) {
            Ok(entry) => {
                self.core
                    .metrics
                    .tensors_registered
                    .fetch_add(1, Ordering::Relaxed);
                ok([
                    ("name", Json::str(name)),
                    (
                        "dims",
                        Json::Arr(entry.stats.dims.iter().map(|&d| Json::usize(d)).collect()),
                    ),
                    ("nnz", Json::usize(entry.stats.nnz)),
                    (
                        "fingerprint",
                        Json::str(format!("{:016x}", entry.fingerprint)),
                    ),
                ])
            }
            Err(e) => registry_err(e),
        }
    }

    fn cmd_stats(&self, req: &Json) -> Json {
        let Some(name) = req.get_str("tensor") else {
            return err(ErrorCode::BadRequest, "stats: missing \"tensor\"");
        };
        match self.core.registry.get(name) {
            Ok(entry) => {
                let s = &entry.stats;
                ok([
                    ("name", Json::str(name)),
                    (
                        "dims",
                        Json::Arr(s.dims.iter().map(|&d| Json::usize(d)).collect()),
                    ),
                    ("nnz", Json::usize(s.nnz)),
                    ("sparsity", Json::num(s.sparsity)),
                    (
                        "fibers",
                        Json::Arr(s.fibers.iter().map(|&f| Json::usize(f)).collect()),
                    ),
                    (
                        "nnz_per_fiber",
                        Json::Arr(s.nnz_per_fiber.iter().map(|&f| Json::num(f)).collect()),
                    ),
                    (
                        "fingerprint",
                        Json::str(format!("{:016x}", entry.fingerprint)),
                    ),
                ])
            }
            Err(e) => registry_err(e),
        }
    }

    fn parse_tune(req: &Json) -> Result<JobPayload, Json> {
        let tensor = req
            .get_str("tensor")
            .ok_or_else(|| err(ErrorCode::BadRequest, "tune: missing \"tensor\""))?;
        let rank = require_rank("tune", req.get_usize("rank").unwrap_or(16))?;
        let reps = req.get_usize("reps").unwrap_or(2);
        let max_blocks = req.get_usize("max_blocks").unwrap_or(64);
        Ok(JobPayload::Tune {
            tensor: tensor.to_string(),
            rank,
            reps,
            max_blocks,
        })
    }

    fn parse_mttkrp(req: &Json) -> Result<JobPayload, Json> {
        let tensor = req
            .get_str("tensor")
            .ok_or_else(|| err(ErrorCode::BadRequest, "mttkrp: missing \"tensor\""))?;
        let mode = require_mode("mttkrp", req.get_usize("mode").unwrap_or(0))?;
        let kernel = kernel_by_name(req.get_str("kernel").unwrap_or("mbrankb"))
            .ok_or_else(|| err(ErrorCode::BadRequest, "mttkrp: unknown kernel name"))?;
        let rank = require_rank("mttkrp", req.get_usize("rank").unwrap_or(16))?;
        let reps = req.get_usize("reps").unwrap_or(3);
        Ok(JobPayload::Mttkrp {
            tensor: tensor.to_string(),
            mode,
            kernel,
            rank,
            reps,
        })
    }

    fn parse_decompose(req: &Json) -> Result<JobPayload, Json> {
        let tensor = req
            .get_str("tensor")
            .ok_or_else(|| err(ErrorCode::BadRequest, "decompose: missing \"tensor\""))?;
        let method = match req.get_str("method").unwrap_or("als") {
            "als" => Method::Als,
            "apr" => Method::Apr,
            other => {
                return Err(err(
                    ErrorCode::BadRequest,
                    format!("unknown method {other:?} (als|apr)"),
                ))
            }
        };
        let rank = require_rank("decompose", req.get_usize("rank").unwrap_or(16))?;
        let iters = req.get_usize("iters").unwrap_or(20);
        let kernel = kernel_by_name(req.get_str("kernel").unwrap_or("mbrankb"))
            .ok_or_else(|| err(ErrorCode::BadRequest, "decompose: unknown kernel name"))?;
        Ok(JobPayload::Decompose {
            tensor: tensor.to_string(),
            method,
            rank,
            iters,
            kernel,
        })
    }

    /// Common path for job-submitting commands: parse → submit → either
    /// return the job id or (with `"wait": true`) block for the result.
    fn submit_cmd(&self, req: &Json, parse: fn(&Json) -> Result<JobPayload, Json>) -> Json {
        let payload = match parse(req) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        // Fail fast on unknown tensors: better a not-found now than a
        // failed job later (the job re-checks; the registry never shrinks,
        // so this can't race to a false failure).
        let tensor = match &payload {
            JobPayload::Tune { tensor, .. }
            | JobPayload::Mttkrp { tensor, .. }
            | JobPayload::Decompose { tensor, .. } => tensor,
        };
        if !self.core.registry.contains(tensor) {
            return err(
                ErrorCode::NotFound,
                format!("no tensor registered as {tensor:?}"),
            );
        }
        let deadline = req.get_u64("deadline_ms").map(Duration::from_millis);
        let id = match self.scheduler.submit(payload, deadline) {
            Ok(id) => id,
            Err(SubmitError::QueueFull) => return err(ErrorCode::QueueFull, "job queue is full"),
            Err(SubmitError::Shutdown) => {
                return err(ErrorCode::Internal, "scheduler is shut down")
            }
        };
        if req.get_bool("wait").unwrap_or(false) {
            // Clamp: a client asking for a week must not pin a protocol
            // thread past the server's own patience.
            let timeout = deadline.unwrap_or(DEFAULT_WAIT).min(DEFAULT_WAIT);
            return match self.scheduler.wait(id, timeout) {
                Some(state) => self.job_response(id, state),
                // Timed out waiting: report the job's actual state (it may
                // still be queued, not running).
                None => {
                    let name = self.scheduler.status(id).map_or("running", |s| s.name());
                    ok([
                        ("job", Json::str(id.to_string())),
                        ("state", Json::str(name)),
                        ("timed_out", Json::Bool(true)),
                    ])
                }
            };
        }
        ok([
            ("job", Json::str(id.to_string())),
            ("state", Json::str("queued")),
        ])
    }

    fn job_response(&self, id: JobId, state: JobState<Json>) -> Json {
        let mut fields = vec![
            ("job", Json::str(id.to_string())),
            ("state", Json::str(state.name())),
        ];
        match state {
            JobState::Done(result) => fields.push(("result", result)),
            JobState::Failed(e) => fields.push(("error", Json::str(e))),
            _ => {}
        }
        ok(fields)
    }

    fn cmd_job_status(&self, req: &Json) -> Json {
        let Some(id) = req.get_str("job").and_then(JobId::parse) else {
            return err(
                ErrorCode::BadRequest,
                "job-status: missing or malformed \"job\"",
            );
        };
        match self.scheduler.status(id) {
            Some(state) => self.job_response(id, state),
            None => err(ErrorCode::NotFound, format!("no such job {id}")),
        }
    }

    fn cmd_cancel(&self, req: &Json) -> Json {
        let Some(id) = req.get_str("job").and_then(JobId::parse) else {
            return err(
                ErrorCode::BadRequest,
                "cancel: missing or malformed \"job\"",
            );
        };
        match self.scheduler.cancel(id) {
            Ok(()) => ok([
                ("job", Json::str(id.to_string())),
                ("state", Json::str("cancelled")),
            ]),
            Err(CancelError::NotFound) => err(ErrorCode::NotFound, format!("no such job {id}")),
            Err(e) => err(ErrorCode::BadRequest, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn svc() -> Service {
        Service::new(2, 8, PlanCache::in_memory())
    }

    fn req(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    fn gen_small(s: &Service, name: &str) {
        let r = s.handle(&req(&format!(
            r#"{{"cmd":"gen","name":"{name}","dataset":"poisson1","nnz":2000,"seed":7}}"#
        )));
        assert_eq!(r.get_bool("ok"), Some(true), "{r:?}");
    }

    #[test]
    fn gen_stats_list_roundtrip() {
        let s = svc();
        gen_small(&s, "t");
        let stats = s.handle(&req(r#"{"cmd":"stats","tensor":"t"}"#));
        assert_eq!(stats.get_bool("ok"), Some(true));
        assert!(stats.get_usize("nnz").unwrap() > 0);
        assert_eq!(stats.get_str("fingerprint").unwrap().len(), 16);
        let list = s.handle(&req(r#"{"cmd":"list"}"#));
        assert_eq!(list.get("tensors"), Some(&Json::Arr(vec![Json::str("t")])));
        // Without a spill tier everything is resident and no bytes stream.
        assert_eq!(list.get("resident"), Some(&Json::Arr(vec![Json::str("t")])));
        assert_eq!(list.get("spilled"), Some(&Json::Arr(vec![])));
        let stream = list.get("stream").unwrap();
        assert_eq!(stream.get_num("tiles_loaded"), Some(0.0));
        // duplicate handle
        let dup = s.handle(&req(
            r#"{"cmd":"gen","name":"t","dataset":"poisson1","nnz":100}"#,
        ));
        assert_eq!(dup.get_str("code"), Some("bad-request"));
    }

    #[test]
    fn list_reports_residency_and_spill_reload_counters() {
        let dir = std::env::temp_dir().join(format!("tenblock_proto_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Service::with_registry(2, 8, PlanCache::in_memory(), Registry::with_spill(&dir, 1));
        gen_small(&s, "a");
        gen_small(&s, "b");

        // Cap 1: registering "b" spilled "a", but "a" is still listed.
        let list = s.handle(&req(r#"{"cmd":"list"}"#));
        assert_eq!(
            list.get("tensors"),
            Some(&Json::Arr(vec![Json::str("a"), Json::str("b")]))
        );
        assert_eq!(list.get("resident"), Some(&Json::Arr(vec![Json::str("b")])));
        assert_eq!(list.get("spilled"), Some(&Json::Arr(vec![Json::str("a")])));

        // Using the spilled tensor streams it back transparently.
        let stats = s.handle(&req(r#"{"cmd":"stats","tensor":"a"}"#));
        assert_eq!(stats.get_bool("ok"), Some(true), "{stats:?}");
        let list = s.handle(&req(r#"{"cmd":"list"}"#));
        assert_eq!(list.get("resident"), Some(&Json::Arr(vec![Json::str("a")])));
        assert_eq!(list.get("spilled"), Some(&Json::Arr(vec![Json::str("b")])));
        let stream = list.get("stream").unwrap();
        assert!(stream.get_num("tiles_loaded").unwrap() > 0.0, "{list:?}");
        assert!(stream.get_num("bytes_streamed").unwrap() > 0.0);
        // Additive v1 fields: retry and degradation counters, all zero on
        // this healthy run.
        assert_eq!(stream.get_num("tile_retries"), Some(0.0));
        let faults = list.get("faults").unwrap();
        assert_eq!(faults.get_usize("spill_failures"), Some(0));
        assert_eq!(faults.get_usize("quarantined_stores"), Some(0));
        let m = s.handle(&req(r#"{"cmd":"metrics"}"#));
        let mf = m.get("metrics").unwrap().get("faults").unwrap();
        assert_eq!(mf.get_usize("io_retries"), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_surfaces_spill_corrupt_code() {
        let dir =
            std::env::temp_dir().join(format!("tenblock_proto_quarantine_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Service::with_registry(2, 8, PlanCache::in_memory(), Registry::with_spill(&dir, 1));
        gen_small(&s, "a");
        gen_small(&s, "b"); // spills "a"
        let spill_file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|e| e == "tnsb"))
            .unwrap();
        let mut bytes = std::fs::read(&spill_file).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&spill_file, &bytes).unwrap();

        // Touching "a" trips validation: typed spill-corrupt, no panic.
        let stats = s.handle(&req(r#"{"cmd":"stats","tensor":"a"}"#));
        assert_eq!(stats.get_bool("ok"), Some(false), "{stats:?}");
        assert_eq!(stats.get_str("code"), Some("spill-corrupt"));
        let list = s.handle(&req(r#"{"cmd":"list"}"#));
        let faults = list.get("faults").unwrap();
        assert_eq!(faults.get_usize("quarantined_stores"), Some(1), "{list:?}");
        // The service keeps serving: the healthy tensor still works.
        let ok_stats = s.handle(&req(r#"{"cmd":"stats","tensor":"b"}"#));
        assert_eq!(ok_stats.get_bool("ok"), Some(true), "{ok_stats:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_waits_and_second_call_hits_cache() {
        let s = svc();
        gen_small(&s, "t");
        let q = r#"{"cmd":"tune","tensor":"t","rank":8,"reps":1,"max_blocks":2,"wait":true}"#;
        let first = s.handle(&req(q));
        assert_eq!(first.get_str("state"), Some("done"), "{first:?}");
        assert_eq!(first.get("result").unwrap().get_bool("cached"), Some(false));
        let second = s.handle(&req(q));
        assert_eq!(second.get("result").unwrap().get_bool("cached"), Some(true));
        let m = s.handle(&req(r#"{"cmd":"metrics"}"#));
        let pc = m.get("metrics").unwrap().get("plan_cache").unwrap();
        assert_eq!(pc.get_usize("hits"), Some(1));
        assert_eq!(pc.get_usize("misses"), Some(1));
    }

    #[test]
    fn mttkrp_and_decompose_run() {
        let s = svc();
        gen_small(&s, "t");
        let r = s.handle(&req(
            r#"{"cmd":"mttkrp","tensor":"t","mode":1,"kernel":"splatt","rank":8,"reps":1,"wait":true}"#,
        ));
        assert_eq!(r.get_str("state"), Some("done"), "{r:?}");
        assert!(r.get("result").unwrap().get_num("best_secs").unwrap() >= 0.0);

        let d = s.handle(&req(
            r#"{"cmd":"decompose","tensor":"t","method":"als","rank":4,"iters":2,"wait":true}"#,
        ));
        assert_eq!(d.get_str("state"), Some("done"), "{d:?}");
        assert!(d.get("result").unwrap().get_usize("iterations").unwrap() >= 1);
    }

    #[test]
    fn job_status_lifecycle_without_wait() {
        let s = svc();
        gen_small(&s, "t");
        let sub = s.handle(&req(
            r#"{"cmd":"tune","tensor":"t","rank":8,"reps":1,"max_blocks":2}"#,
        ));
        assert_eq!(sub.get_bool("ok"), Some(true));
        let job = sub.get_str("job").unwrap().to_string();
        // Poll until terminal.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let st = s.handle(&req(&format!(r#"{{"cmd":"job-status","job":"{job}"}}"#)));
            match st.get_str("state") {
                Some("done") => break,
                Some("failed") => panic!("job failed: {st:?}"),
                _ if Instant::now() > deadline => panic!("job never finished"),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    #[test]
    fn unknown_inputs_get_typed_errors() {
        let s = svc();
        assert_eq!(
            s.handle(&req(r#"{"cmd":"frobnicate"}"#)).get_str("code"),
            Some("unknown-cmd")
        );
        assert_eq!(
            s.handle(&req(r#"{"nope":1}"#)).get_str("code"),
            Some("bad-request")
        );
        assert_eq!(
            s.handle(&req(r#"{"cmd":"tune","tensor":"ghost"}"#))
                .get_str("code"),
            Some("not-found")
        );
        assert_eq!(
            s.handle(&req(r#"{"cmd":"job-status","job":"j-999"}"#))
                .get_str("code"),
            Some("not-found")
        );
        assert_eq!(
            s.handle(&req(r#"{"cmd":"mttkrp","tensor":"ghost","kernel":"warp"}"#))
                .get_str("code"),
            Some("bad-request")
        );
    }

    #[test]
    fn every_response_carries_version() {
        let s = svc();
        gen_small(&s, "t");
        let responses = [
            s.handle(&req(r#"{"cmd":"list"}"#)),
            s.handle(&req(r#"{"cmd":"frobnicate"}"#)),
            s.handle(&req(r#"{"cmd":"stats","tensor":"ghost"}"#)),
            s.handle(&req(r#"{"cmd":"metrics"}"#)),
            s.handle(&req(r#"{"nope":1}"#)),
            s.handle(&req(r#"{"cmd":"tune","tensor":"t","rank":0}"#)),
            s.handle(&req(r#"{"cmd":"mttkrp","tensor":"t","mode":3}"#)),
        ];
        for r in responses {
            assert_eq!(r.get_usize("v"), Some(PROTOCOL_VERSION), "{r:?}");
        }
    }

    #[test]
    fn degenerate_parameters_get_invalid_config() {
        let s = svc();
        gen_small(&s, "t");
        for (q, what) in [
            (r#"{"cmd":"tune","tensor":"t","rank":0}"#, "tune rank 0"),
            (r#"{"cmd":"mttkrp","tensor":"t","rank":0}"#, "mttkrp rank 0"),
            (r#"{"cmd":"mttkrp","tensor":"t","mode":3}"#, "mttkrp mode 3"),
            (
                r#"{"cmd":"decompose","tensor":"t","rank":0}"#,
                "decompose rank 0",
            ),
        ] {
            let r = s.handle(&req(q));
            assert_eq!(r.get_str("code"), Some("invalid-config"), "{what}: {r:?}");
            assert_eq!(r.get_usize("v"), Some(PROTOCOL_VERSION), "{what}: {r:?}");
        }
        // Rejection happens at parse time: nothing was queued.
        let m = s.handle(&req(r#"{"cmd":"metrics"}"#));
        let jobs = m.get("metrics").unwrap().get("jobs").unwrap();
        assert_eq!(jobs.get_usize("submitted"), Some(0));
    }

    #[test]
    fn malformed_tensor_file_gets_invalid_tensor() {
        let dir = std::env::temp_dir().join(format!("tenblock_proto_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.tns");
        std::fs::write(&bad, "1 1 1 nan\n").unwrap();
        let s = svc();
        let r = s.handle(&req(&format!(
            r#"{{"cmd":"load","name":"b","path":"{}"}}"#,
            bad.display()
        )));
        assert_eq!(r.get_str("code"), Some("invalid-tensor"), "{r:?}");
        assert_eq!(r.get_usize("v"), Some(PROTOCOL_VERSION));
        // A nonexistent path is a bad request, not a bad tensor.
        let r = s.handle(&req(&format!(
            r#"{{"cmd":"load","name":"m","path":"{}"}}"#,
            dir.join("missing.tns").display()
        )));
        assert_eq!(r.get_str("code"), Some("bad-request"), "{r:?}");
    }

    #[test]
    fn tune_on_degenerate_tensor_fails_typed_instead_of_panicking() {
        use tenblock_tensor::CooTensor;
        let s = svc();
        s.core()
            .registry
            .register("hollow", CooTensor::empty([4, 4, 4]))
            .unwrap();
        let r = s.handle(&req(
            r#"{"cmd":"tune","tensor":"hollow","rank":8,"reps":1,"max_blocks":2,"wait":true}"#,
        ));
        assert_eq!(r.get_str("state"), Some("failed"), "{r:?}");
        assert!(
            r.get_str("error").unwrap().contains("tune:"),
            "typed tune error expected: {r:?}"
        );
    }

    #[test]
    fn trace_returns_last_job_span_tree() {
        let s = svc();
        let early = s.handle(&req(r#"{"cmd":"trace"}"#));
        assert_eq!(early.get_str("code"), Some("not-found"));

        gen_small(&s, "t");
        let r = s.handle(&req(
            r#"{"cmd":"mttkrp","tensor":"t","mode":0,"kernel":"splatt","rank":8,"reps":2,"wait":true}"#,
        ));
        assert_eq!(r.get_str("state"), Some("done"), "{r:?}");

        let t = s.handle(&req(r#"{"cmd":"trace"}"#));
        assert_eq!(t.get_bool("ok"), Some(true), "{t:?}");
        assert!(t.get_str("job").unwrap().starts_with("j-"));
        let Some(Json::Arr(roots)) = t.get("trace").unwrap().get("spans") else {
            panic!("trace has no spans array: {t:?}");
        };
        assert_eq!(roots.len(), 1, "one root span per job");
        let root = &roots[0];
        assert_eq!(root.get_str("name"), Some("job/mttkrp"));
        let Some(Json::Arr(children)) = root.get("children") else {
            panic!("root span has no children: {root:?}");
        };
        // Two reps -> two kernel spans, each carrying the byte counters.
        let kernel_spans: Vec<_> = children
            .iter()
            .filter(|c| c.get_str("name") == Some("mttkrp/SPLATT"))
            .collect();
        assert_eq!(kernel_spans.len(), 2);
        for k in kernel_spans {
            let args = k.get("args").expect("kernel span has args");
            assert!(args.get_usize("tensor_bytes").unwrap() > 0);
            assert!(args.get_usize("factor_bytes").unwrap() > 0);
        }
    }

    #[test]
    fn queue_full_is_typed() {
        // 1 worker, capacity-1 queue. Back-to-back submissions outpace the
        // worker (each decompose runs many ALS iterations), so among a
        // handful of rapid submits one must hit the full queue.
        let s = Service::new(1, 1, PlanCache::in_memory());
        gen_small(&s, "t");
        let slow = r#"{"cmd":"decompose","tensor":"t","method":"als","rank":8,"iters":500}"#;
        let mut queued = Vec::new();
        let mut rejected = None;
        for _ in 0..6 {
            let r = s.handle(&req(slow));
            if r.get_bool("ok") == Some(true) {
                queued.push(r.get_str("job").unwrap().to_string());
            } else {
                rejected = Some(r);
                break;
            }
        }
        let rejection = rejected.expect("a submission should have been rejected");
        assert_eq!(rejection.get_str("code"), Some("queue-full"));
        assert_eq!(rejection.get_str("error"), Some("job queue is full"));
        // Cancel whatever is still queued so the test doesn't wait out the
        // backlog (the running job cannot be cancelled; ignore errors).
        for job in queued {
            s.handle(&req(&format!(r#"{{"cmd":"cancel","job":"{job}"}}"#)));
        }
    }
}
