//! Tuned-plan cache: memoizes the Section V-C block-size heuristic.
//!
//! Tuning costs `O(log I_n)` timed MTTKRP runs per request — cheap next to
//! a decomposition, but pure waste when repeated for the same tensor shape
//! and rank. The cache key is the tensor's [`TensorStats::fingerprint`]
//! (dims × nnz × fiber counts) crossed with the rank; the value is the
//! selected `(grid, strip_width)` pair. Entries persist to a JSON file so
//! plans survive restarts and are shared between `tenblock serve` and the
//! `tune` / `decompose` subcommands (`--plan-cache`).
//!
//! Concurrent misses for the *same* key are coalesced by a compute lock:
//! the second requester blocks, then reads the first requester's plan as a
//! hit. The lock is global across keys — deliberate, because plan timing
//! measures wall-clock MTTKRP runs, and concurrent tuning jobs would
//! perturb each other's measurements.

use crate::json::Json;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tenblock_tensor::{TensorStats, NMODES};

/// Cache key: tensor shape fingerprint × decomposition rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`TensorStats::fingerprint`] of the tensor.
    pub fingerprint: u64,
    /// Rank the plan was tuned for.
    pub rank: usize,
}

impl PlanKey {
    /// Key for `stats` at `rank`.
    pub fn of(stats: &TensorStats, rank: usize) -> PlanKey {
        PlanKey {
            fingerprint: stats.fingerprint(),
            rank,
        }
    }
}

/// A memoized tuning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedPlan {
    /// Kernel kind the tuner selected (e.g. `"mbrankb"`, `"bcoo"`).
    /// Files written before this field existed load as `"mbrankb"`, which
    /// was the only kernel the tuner could pick back then.
    pub kernel: String,
    /// Selected MB grid (kernel axes).
    pub grid: [usize; NMODES],
    /// Selected RankB strip width in columns.
    pub strip_width: usize,
    /// Best time observed when the plan was tuned, seconds per MTTKRP.
    pub best_secs: f64,
}

impl TunedPlan {
    fn to_json(&self, key: &PlanKey) -> Json {
        Json::obj([
            (
                "fingerprint",
                Json::str(format!("{:016x}", key.fingerprint)),
            ),
            ("rank", Json::usize(key.rank)),
            ("kernel", Json::str(self.kernel.clone())),
            (
                "grid",
                Json::Arr(self.grid.iter().map(|&g| Json::usize(g)).collect()),
            ),
            ("strip_width", Json::usize(self.strip_width)),
            ("best_secs", Json::num(self.best_secs)),
        ])
    }

    fn from_json(v: &Json) -> Option<(PlanKey, TunedPlan)> {
        let fingerprint = u64::from_str_radix(v.get_str("fingerprint")?, 16).ok()?;
        let rank = v.get_usize("rank")?;
        let kernel = v.get_str("kernel").unwrap_or("mbrankb").to_string();
        let grid_arr = match v.get("grid") {
            Some(Json::Arr(items)) if items.len() == NMODES => items,
            _ => return None,
        };
        let mut grid = [0usize; NMODES];
        for (g, item) in grid.iter_mut().zip(grid_arr) {
            match item {
                Json::Num(n) if *n >= 1.0 && n.fract() == 0.0 => *g = *n as usize,
                _ => return None,
            }
        }
        let strip_width = v.get_usize("strip_width").filter(|&w| w >= 1)?;
        let best_secs = v.get_num("best_secs").unwrap_or(0.0);
        Some((
            PlanKey { fingerprint, rank },
            TunedPlan {
                kernel,
                grid,
                strip_width,
                best_secs,
            },
        ))
    }
}

/// Thread-safe plan cache with optional JSON persistence.
#[derive(Debug)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, TunedPlan>>,
    /// Serializes plan computation (see module docs).
    compute: Mutex<()>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Malformed entries skipped while loading the backing file.
    skipped: u64,
}

impl PlanCache {
    /// In-memory cache (no persistence).
    pub fn in_memory() -> PlanCache {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            compute: Mutex::new(()),
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped: 0,
        }
    }

    /// Cache backed by `path`. A missing file starts empty. A file that is
    /// not JSON, or lacks the `"plans"` array, is an error (the cache was
    /// replaced wholesale by something else — don't guess). A *malformed
    /// entry* inside an otherwise valid file is skipped and counted (see
    /// [`PlanCache::skipped`]): one bad record must not discard every good
    /// plan alongside it. Skips emit one structured warning on stderr.
    pub fn open(path: &Path) -> io::Result<PlanCache> {
        let mut cache = PlanCache::in_memory();
        cache.path = Some(path.to_path_buf());
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let doc = Json::parse(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let plans = match doc.get("plans") {
                    Some(Json::Arr(items)) => items,
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "plan cache file lacks a \"plans\" array",
                        ))
                    }
                };
                let mut map = HashMap::new();
                for item in plans {
                    match TunedPlan::from_json(item) {
                        Some((key, plan)) => {
                            map.insert(key, plan);
                        }
                        None => cache.skipped += 1,
                    }
                }
                if cache.skipped > 0 {
                    let warning = Json::obj([
                        ("warn", Json::str("plan-cache-skip")),
                        ("path", Json::str(path.display().to_string())),
                        ("skipped", Json::usize(cache.skipped as usize)),
                        ("loaded", Json::usize(map.len())),
                    ]);
                    eprintln!("{}", warning.to_string_compact());
                }
                *crate::sync::lock(&cache.plans) = map;
                Ok(cache)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(cache),
            Err(e) => Err(e),
        }
    }

    /// Malformed entries skipped when the backing file was loaded.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Raw lookup. Does not touch the hit/miss counters — use
    /// [`PlanCache::get_or_compute`] on serving paths.
    pub fn lookup(&self, key: PlanKey) -> Option<TunedPlan> {
        crate::sync::lock(&self.plans).get(&key).cloned()
    }

    /// Inserts (or replaces) a plan and persists if file-backed.
    pub fn insert(&self, key: PlanKey, plan: TunedPlan) -> io::Result<()> {
        crate::sync::lock(&self.plans).insert(key, plan);
        self.save()
    }

    /// Returns the cached plan for `key`, or computes, stores, and persists
    /// one with `compute`. The bool is `true` on a cache hit. Concurrent
    /// calls for the same key run `compute` once.
    pub fn get_or_compute<F: FnOnce() -> TunedPlan>(
        &self,
        key: PlanKey,
        compute: F,
    ) -> io::Result<(TunedPlan, bool)> {
        match self.get_or_try_compute::<std::convert::Infallible, _>(key, || Ok(compute()))? {
            Ok(hit) => Ok(hit),
            Err(never) => match never {},
        }
    }

    /// [`PlanCache::get_or_compute`] with a fallible compute step: a compute
    /// error is passed through in the inner `Result` and nothing is cached
    /// (the next request for the key retries). The outer `Result` carries
    /// persistence failures. Counts a miss whenever `compute` runs, even if
    /// it fails — a failed tune still means the cache had no answer.
    pub fn get_or_try_compute<E, F: FnOnce() -> Result<TunedPlan, E>>(
        &self,
        key: PlanKey,
        compute: F,
    ) -> io::Result<Result<(TunedPlan, bool), E>> {
        if let Some(plan) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Ok((plan, true)));
        }
        let _guard = crate::sync::lock(&self.compute);
        // Double-check: another thread may have tuned this key while we
        // waited on the compute lock.
        if let Some(plan) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Ok((plan, true)));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = match compute() {
            Ok(plan) => plan,
            Err(e) => return Ok(Err(e)),
        };
        // Persisting inside the compute lock is the single-flight
        // design: concurrent tuners for the same key must observe the
        // saved plan — lint: allow(lock-discipline)
        self.insert(key, plan.clone())?;
        Ok(Ok((plan, false)))
    }

    /// (hits, misses) since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        crate::sync::lock(&self.plans).len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the cache to its backing file (no-op when in-memory).
    /// Write-then-rename so a crash never leaves a half-written cache.
    pub fn save(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let doc = {
            let plans = crate::sync::lock(&self.plans);
            // BTreeMap keys sort, so sort entries for stable file output.
            let mut entries: Vec<_> = plans.iter().collect();
            entries.sort_by_key(|(k, _)| (k.fingerprint, k.rank));
            Json::obj([
                ("version", Json::usize(1)),
                (
                    "plans",
                    Json::Arr(entries.into_iter().map(|(k, p)| p.to_json(k)).collect()),
                ),
            ])
        };
        tenblock_tensor::atomic_write(path, (doc.to_string_compact() + "\n").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenblock_plan_cache_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan(g: usize) -> TunedPlan {
        TunedPlan {
            kernel: "mbrankb".to_string(),
            grid: [g, 2, 1],
            strip_width: 16,
            best_secs: 0.25,
        }
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = PlanCache::in_memory();
        let key = PlanKey {
            fingerprint: 0xabc,
            rank: 16,
        };
        let mut computed = 0;
        let (p1, hit1) = cache
            .get_or_compute(key, || {
                computed += 1;
                plan(4)
            })
            .unwrap();
        let (p2, hit2) = cache
            .get_or_compute(key, || {
                computed += 1;
                plan(8)
            })
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(computed, 1);
        assert_eq!(p1, p2);
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn persists_and_reloads() {
        let path = tmpdir().join("plans_roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let cache = PlanCache::open(&path).unwrap();
        cache
            .insert(
                PlanKey {
                    fingerprint: u64::MAX,
                    rank: 32,
                },
                plan(2),
            )
            .unwrap();
        cache
            .insert(
                PlanKey {
                    fingerprint: 7,
                    rank: 8,
                },
                plan(16),
            )
            .unwrap();

        let reloaded = PlanCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(
            reloaded.lookup(PlanKey {
                fingerprint: u64::MAX,
                rank: 32
            }),
            Some(plan(2)),
            "u64::MAX fingerprint survives the hex round-trip"
        );
        assert_eq!(
            reloaded.lookup(PlanKey {
                fingerprint: 7,
                rank: 8
            }),
            Some(plan(16))
        );
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let path = tmpdir().join("plans_partial.json");
        // One good entry, one with a zero grid axis, one missing its rank.
        std::fs::write(
            &path,
            concat!(
                r#"{"version":1,"plans":["#,
                r#"{"fingerprint":"00000000000000ab","rank":16,"grid":[2,2,1],"strip_width":16,"best_secs":0.5},"#,
                r#"{"fingerprint":"00000000000000cd","rank":8,"grid":[0,2,1],"strip_width":16,"best_secs":0.5},"#,
                r#"{"fingerprint":"00000000000000ef","grid":[2,2,1],"strip_width":16,"best_secs":0.5}"#,
                r#"]}"#,
            ),
        )
        .unwrap();
        let cache = PlanCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1, "the good entry survives");
        assert_eq!(cache.skipped(), 2);
        let loaded = cache
            .lookup(PlanKey {
                fingerprint: 0xab,
                rank: 16,
            })
            .unwrap();
        assert_eq!(
            loaded.kernel, "mbrankb",
            "pre-kernel-field entries load with the historical default"
        );
    }

    #[test]
    fn kernel_kind_round_trips() {
        let path = tmpdir().join("plans_kernel.json");
        let _ = std::fs::remove_file(&path);
        let cache = PlanCache::open(&path).unwrap();
        let key = PlanKey {
            fingerprint: 0x1234,
            rank: 16,
        };
        let mut p = plan(4);
        p.kernel = "bcoo".to_string();
        cache.insert(key, p.clone()).unwrap();
        let reloaded = PlanCache::open(&path).unwrap();
        assert_eq!(reloaded.lookup(key), Some(p));
    }

    #[test]
    fn failed_compute_caches_nothing_and_retries() {
        let cache = PlanCache::in_memory();
        let key = PlanKey {
            fingerprint: 1,
            rank: 4,
        };
        let r = cache
            .get_or_try_compute::<&str, _>(key, || Err("tensor too degenerate"))
            .unwrap();
        assert_eq!(r, Err("tensor too degenerate"));
        assert!(
            cache.is_empty(),
            "a failed compute must not poison the cache"
        );
        // The key is still computable afterwards.
        let (p, hit) = cache.get_or_compute(key, || plan(4)).unwrap();
        assert!(!hit);
        assert_eq!(p, plan(4));
        assert_eq!(cache.counters(), (0, 2), "both computes count as misses");
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let path = tmpdir().join("plans_corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(PlanCache::open(&path).is_err());
        std::fs::write(&path, r#"{"version":1}"#).unwrap();
        assert!(PlanCache::open(&path).is_err(), "missing plans array");
    }

    #[test]
    fn missing_file_starts_empty() {
        let path = tmpdir().join("plans_missing_never_created.json");
        let _ = std::fs::remove_file(&path);
        let cache = PlanCache::open(&path).unwrap();
        assert!(cache.is_empty());
    }
}
