//! Atomic service metrics: job counters by terminal state, queue depth,
//! plan-cache hit/miss, and per-kernel MTTKRP latency histograms.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — counters
//! tolerate torn reads across fields) so the hot path never blocks on a
//! metrics mutex. [`Metrics::snapshot`] materializes a plain struct; the
//! `metrics` protocol request serializes that.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds in microseconds (the last bucket is
/// unbounded). Chosen to straddle MTTKRP latencies from toy tensors (µs)
/// to Amazon-scale modes (seconds).
pub const LATENCY_BOUNDS_US: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    60_000_000,
    600_000_000,
];

/// A fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    ///
    /// Pathological observations — a non-finite duration from a stuck or
    /// stepped clock, or anything past the top bucket bound — land in the
    /// overflow bucket, but their contribution to `sum_us` is clamped to
    /// the top bucket bound. Without the clamp a single `f64::INFINITY`
    /// saturates the cast to `u64::MAX` and the relaxed wrapping
    /// `fetch_add` corrupts `mean_secs` for the life of the process.
    pub fn observe(&self, seconds: f64) {
        let top = LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1];
        let raw = if seconds.is_finite() {
            (seconds * 1e6).max(0.0) as u64
        } else {
            u64::MAX
        };
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| raw <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(raw.min(top), Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.each_ref().map(|c| c.load(Ordering::Relaxed)),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

/// Materialized histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations per bucket (last bucket is the overflow).
    pub counts: [u64; LATENCY_BOUNDS_US.len() + 1],
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Number of observations.
    pub total: u64,
}

impl HistogramSnapshot {
    /// Mean latency in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64 / 1e6
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "buckets_us",
                Json::Arr(
                    LATENCY_BOUNDS_US
                        .iter()
                        .map(|&b| Json::usize(b as usize))
                        .collect(),
                ),
            ),
            (
                "counts",
                Json::Arr(
                    self.counts
                        .iter()
                        .map(|&c| Json::usize(c as usize))
                        .collect(),
                ),
            ),
            ("total", Json::usize(self.total as usize)),
            ("mean_secs", Json::num(self.mean_secs())),
        ])
    }
}

/// Fault-tolerance counters, shared between the [`crate::Registry`] (which
/// increments them as it degrades gracefully) and [`Metrics`] (which
/// serializes them). An `Arc` of one instance is held by both.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Transient I/O errors that were retried (spill writes and reloads).
    pub io_retries: AtomicU64,
    /// Spill writes that failed permanently; the victim stayed resident.
    pub spill_failures: AtomicU64,
    /// Spill stores moved to a `*.quarantine/` directory after failing
    /// validation (on reload or at startup adoption).
    pub quarantined_stores: AtomicU64,
    /// Evictions skipped because the spill write failed (the memory cap
    /// is best-effort; losing the tensor is not an option).
    pub evictions_skipped: AtomicU64,
}

impl FaultCounters {
    /// Plain-data view.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            io_retries: self.io_retries.load(Ordering::Relaxed),
            spill_failures: self.spill_failures.load(Ordering::Relaxed),
            quarantined_stores: self.quarantined_stores.load(Ordering::Relaxed),
            evictions_skipped: self.evictions_skipped.load(Ordering::Relaxed),
        }
    }
}

/// Materialized [`FaultCounters`] state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// See [`FaultCounters::io_retries`].
    pub io_retries: u64,
    /// See [`FaultCounters::spill_failures`].
    pub spill_failures: u64,
    /// See [`FaultCounters::quarantined_stores`].
    pub quarantined_stores: u64,
    /// See [`FaultCounters::evictions_skipped`].
    pub evictions_skipped: u64,
}

impl FaultSnapshot {
    /// Serializes for the `metrics` / `list` responses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("io_retries", Json::usize(self.io_retries as usize)),
            ("spill_failures", Json::usize(self.spill_failures as usize)),
            (
                "quarantined_stores",
                Json::usize(self.quarantined_stores as usize),
            ),
            (
                "evictions_skipped",
                Json::usize(self.evictions_skipped as usize),
            ),
        ])
    }
}

/// All service counters. One instance lives for the life of the server.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Protocol requests handled (any command, ok or error).
    pub requests: AtomicU64,
    /// Jobs accepted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs rejected because the queue was full.
    pub jobs_rejected: AtomicU64,
    /// Jobs that finished successfully.
    pub jobs_done: AtomicU64,
    /// Jobs that finished with an error (including missed deadlines).
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled before running.
    pub jobs_cancelled: AtomicU64,
    /// Tensors resident in the registry.
    pub tensors_registered: AtomicU64,
    /// Plan-cache hits (tune answered from cache).
    pub plan_hits: AtomicU64,
    /// Plan-cache misses (heuristic actually ran).
    pub plan_misses: AtomicU64,
    /// Malformed persisted plan entries skipped when the cache was loaded.
    pub plan_skipped: AtomicU64,
    /// Latency of MTTKRP executions (the `mttkrp` job's kernel calls).
    pub mttkrp_latency: LatencyHistogram,
    /// Latency of whole jobs, queue wait included.
    pub job_latency: LatencyHistogram,
    /// Time jobs spent waiting in the queue before a worker picked them up.
    pub job_queue_wait: LatencyHistogram,
    /// Time jobs spent actually running (`job_latency` minus queue wait).
    pub job_run: LatencyHistogram,
    /// Fault-tolerance counters, shared with the registry that bumps them.
    pub faults: std::sync::Arc<FaultCounters>,
}

/// Materialized view of [`Metrics`] plus instantaneous queue state.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::jobs_submitted`].
    pub jobs_submitted: u64,
    /// See [`Metrics::jobs_rejected`].
    pub jobs_rejected: u64,
    /// See [`Metrics::jobs_done`].
    pub jobs_done: u64,
    /// See [`Metrics::jobs_failed`].
    pub jobs_failed: u64,
    /// See [`Metrics::jobs_cancelled`].
    pub jobs_cancelled: u64,
    /// See [`Metrics::tensors_registered`].
    pub tensors_registered: u64,
    /// See [`Metrics::plan_hits`].
    pub plan_hits: u64,
    /// See [`Metrics::plan_misses`].
    pub plan_misses: u64,
    /// See [`Metrics::plan_skipped`].
    pub plan_skipped: u64,
    /// Jobs waiting in the bounded queue right now.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// MTTKRP kernel-call latency.
    pub mttkrp_latency: HistogramSnapshot,
    /// Whole-job latency (queue wait + run).
    pub job_latency: HistogramSnapshot,
    /// Queue-wait portion of job latency.
    pub job_queue_wait: HistogramSnapshot,
    /// Run-time portion of job latency.
    pub job_run: HistogramSnapshot,
    /// Fault-tolerance counters.
    pub faults: FaultSnapshot,
}

impl Metrics {
    /// Materializes every counter. `queue_depth`/`queue_capacity` come from
    /// the scheduler, which owns the queue.
    pub fn snapshot(&self, queue_depth: usize, queue_capacity: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            tensors_registered: self.tensors_registered.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_skipped: self.plan_skipped.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity,
            mttkrp_latency: self.mttkrp_latency.snapshot(),
            job_latency: self.job_latency.snapshot(),
            job_queue_wait: self.job_queue_wait.snapshot(),
            job_run: self.job_run.snapshot(),
            faults: self.faults.snapshot(),
        }
    }
}

impl MetricsSnapshot {
    /// Serializes for the `metrics` protocol response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::usize(self.requests as usize)),
            (
                "jobs",
                Json::obj([
                    ("submitted", Json::usize(self.jobs_submitted as usize)),
                    ("rejected", Json::usize(self.jobs_rejected as usize)),
                    ("done", Json::usize(self.jobs_done as usize)),
                    ("failed", Json::usize(self.jobs_failed as usize)),
                    ("cancelled", Json::usize(self.jobs_cancelled as usize)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", Json::usize(self.queue_depth)),
                    ("capacity", Json::usize(self.queue_capacity)),
                ]),
            ),
            (
                "plan_cache",
                Json::obj([
                    ("hits", Json::usize(self.plan_hits as usize)),
                    ("misses", Json::usize(self.plan_misses as usize)),
                    ("skipped", Json::usize(self.plan_skipped as usize)),
                ]),
            ),
            ("tensors", Json::usize(self.tensors_registered as usize)),
            ("faults", self.faults.to_json()),
            ("mttkrp_latency", self.mttkrp_latency.to_json()),
            ("job_latency", self.job_latency.to_json()),
            ("job_queue_wait", self.job_queue_wait.to_json()),
            ("job_run", self.job_run.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = LatencyHistogram::default();
        h.observe(50e-6); // 50 us -> bucket 0
        h.observe(5e-3); // 5 ms -> bucket 2
        h.observe(2.0); // 2 s -> bucket 5
        let s = h.snapshot();
        assert_eq!(s.total, 3);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[2], 1);
        assert_eq!(s.counts[5], 1);
        let mean = s.mean_secs();
        assert!(
            (mean - (50e-6 + 5e-3 + 2.0) / 3.0).abs() < 1e-4,
            "mean {mean}"
        );
    }

    #[test]
    fn pathological_observations_cannot_corrupt_the_mean() {
        let top_secs = LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1] as f64 / 1e6;
        let h = LatencyHistogram::default();
        h.observe(f64::INFINITY);
        h.observe(f64::NAN);
        h.observe(1e30); // huge but finite: cast saturates to u64::MAX
        h.observe(-5.0); // negative clock skew clamps to zero
        h.observe(1e9); // > top bound but representable in us
        let s = h.snapshot();
        assert_eq!(s.total, 5);
        // Non-finite and huge observations land in the overflow bucket...
        assert_eq!(s.counts[LATENCY_BOUNDS_US.len()], 4);
        assert_eq!(s.counts[0], 1); // the clamped negative
                                    // ...but each contributes at most the top bucket bound to the sum,
                                    // so the mean stays within the histogram's representable range and
                                    // a second wave of sane observations still moves it.
        assert!(s.mean_secs() <= top_secs, "mean {}", s.mean_secs());
        for _ in 0..5 {
            h.observe(1e-3);
        }
        let s2 = h.snapshot();
        assert!(s2.mean_secs() < s.mean_secs());
        assert!(s2.mean_secs().is_finite());
    }

    #[test]
    fn concurrent_writers_keep_snapshots_consistent() {
        use std::sync::Arc;

        const WRITERS: usize = 4;
        const OBS_PER_WRITER: usize = 2_000;
        let m = Arc::new(Metrics::default());
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..OBS_PER_WRITER {
                        m.job_latency
                            .observe((w * OBS_PER_WRITER + i) as f64 * 1e-6);
                        m.jobs_done.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        // Snapshot continuously while writers hammer the histogram.
        // `observe` bumps the bucket before `total`, so any snapshot must
        // satisfy sum(counts) >= total — a torn snapshot that violated this
        // would mean buckets and totals disagree about what was recorded.
        for _ in 0..200 {
            let s = m.snapshot(0, 1);
            let bucket_sum: u64 = s.job_latency.counts.iter().sum();
            assert!(
                bucket_sum >= s.job_latency.total,
                "buckets {bucket_sum} < total {}",
                s.job_latency.total
            );
            assert!(s.jobs_done <= (WRITERS * OBS_PER_WRITER) as u64);
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = m.snapshot(0, 1);
        assert_eq!(s.job_latency.total, (WRITERS * OBS_PER_WRITER) as u64);
        assert_eq!(
            s.job_latency.counts.iter().sum::<u64>(),
            (WRITERS * OBS_PER_WRITER) as u64
        );
        assert_eq!(s.jobs_done, (WRITERS * OBS_PER_WRITER) as u64);
    }

    #[test]
    fn snapshot_serializes() {
        let m = Metrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.plan_hits.fetch_add(1, Ordering::Relaxed);
        m.mttkrp_latency.observe(0.001);
        let s = m.snapshot(2, 8);
        let j = s.to_json();
        assert_eq!(j.get_usize("requests"), Some(3));
        assert_eq!(j.get("queue").unwrap().get_usize("depth"), Some(2));
        assert_eq!(j.get("plan_cache").unwrap().get_usize("hits"), Some(1));
        assert_eq!(j.get("mttkrp_latency").unwrap().get_usize("total"), Some(1));
    }
}
