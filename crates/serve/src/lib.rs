//! # tenblock-serve
//!
//! Long-lived, in-process decomposition service over the `tenblock`
//! kernels. Loading a tensor, fibering it into SPLATT form, and tuning
//! block sizes are all front-loaded costs that a one-shot CLI pays on
//! every invocation; this crate keeps them resident:
//!
//! * [`registry`] — named tensors, loaded or generated once, shared
//!   (`Arc`) across concurrent jobs with precomputed stats and per-mode
//!   SPLATT builds,
//! * [`plan_cache`] — memoized Section V-C tuning decisions keyed by
//!   tensor shape fingerprint × rank, persisted as JSON,
//! * [`scheduler`] — a bounded job queue in front of a fixed worker pool,
//!   with typed queue-full rejection, per-job deadlines, and cancellation,
//! * [`metrics`] — atomic counters and latency histograms,
//! * [`proto`] — the request/response vocabulary, transport-independent,
//! * [`server`] — line-delimited JSON over TCP (`tenblock serve`),
//! * [`json`] — the self-contained JSON value type used by all of the
//!   above (the build is offline; no serde).

pub mod json;
pub mod metrics;
pub mod plan_cache;
pub mod proto;
pub mod registry;
pub mod scheduler;
pub mod server;
mod sync;

pub use json::Json;
pub use metrics::{FaultCounters, FaultSnapshot, Metrics, MetricsSnapshot};
pub use plan_cache::{PlanCache, PlanKey, TunedPlan};
pub use proto::{ErrorCode, Service, PROTOCOL_VERSION};
pub use registry::{Registry, RegistryError, TensorEntry};
pub use scheduler::{JobId, JobState, Scheduler, SubmitError};
pub use server::{Server, ServerConfig};
