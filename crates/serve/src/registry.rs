//! Tensor registry: named, shared, immutable tensor residency — with an
//! optional spill tier.
//!
//! A decomposition service repeats three expensive steps per request if it
//! is naive: parse the tensor file, compute statistics, and build the
//! fiber-compressed SPLATT views. The registry does each exactly once per
//! tensor and hands out `Arc<TensorEntry>` clones, so concurrent jobs share
//! one resident copy. Entries are keyed by a caller-chosen string handle;
//! registration is first-wins (re-registering an existing handle is an
//! error rather than a silent replace, so a handle never changes meaning
//! mid-session).
//!
//! # Spill tier
//!
//! With [`Registry::with_spill`] the registry caps how many tensors stay
//! resident. When the cap is exceeded the least-recently-used entry is
//! serialized to an on-disk [`TileStore`] (the `.tnsb` v2 tile framing)
//! and its in-memory entry dropped; a later [`Registry::get`] streams the
//! tiles back and rebuilds the entry transparently, charging the I/O to
//! the registry's [`StreamStats`]. Two invariants hold regardless of
//! residency:
//!
//! * **Names never shrink.** A spilled tensor still counts for
//!   [`Registry::contains`] / [`Registry::names`] / [`Registry::len`];
//!   the protocol layer's first-wins and fail-fast checks rely on a
//!   handle never disappearing mid-session.
//! * **Spilling is lossless.** The tile store round-trips exact `f64`
//!   bits and coordinates, so a reloaded entry has the same fingerprint
//!   and statistics as the original.
//!
//! # Fault tolerance
//!
//! Spill I/O degrades gracefully instead of taking the registry down:
//!
//! * **Eviction is best-effort.** Transient spill-write errors
//!   (`EINTR`/`EAGAIN`) retry with seeded capped backoff; a write that
//!   fails permanently leaves the victim resident (correctness over the
//!   memory cap), counted in [`FaultCounters::evictions_skipped`].
//! * **Corrupt stores are quarantined.** A spill file that fails
//!   validation on reload is moved into a sibling `<file>.quarantine/`
//!   directory and the caller gets a typed
//!   [`RegistryError::SpillCorrupt`] — never a worker panic.
//! * **Startup re-adopts the spill dir.** [`Registry::with_spill`] scans
//!   `dir`: valid `*.tnsb` stores are re-registered as spilled entries
//!   (surviving a restart), invalid ones are quarantined, and `*.tmp`
//!   litter from a crashed writer is removed.

use crate::metrics::FaultCounters;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use tenblock_core::obs::StreamStats;
use tenblock_core::tune::grid_for_tile_budget;
use tenblock_faults::{is_transient, Backoff, FaultPolicy};
use tenblock_tensor::gen::ALL_DATASETS;
use tenblock_tensor::{io, io_bin, CooTensor, SplattTensor, TensorStats, TileStore, NMODES};

/// Per-tile byte budget used when spilling (the tile grid is chosen so a
/// reload streams in modest chunks rather than one giant payload).
const SPILL_TILE_BUDGET: u64 = 8 << 20;

/// One resident tensor with everything derived from it.
#[derive(Debug)]
pub struct TensorEntry {
    /// Registry handle.
    pub name: String,
    /// The coordinate-format tensor (kernels are built from this).
    pub coo: CooTensor,
    /// Precomputed statistics (also the plan-cache fingerprint source).
    pub stats: TensorStats,
    /// Shape fingerprint, cached from `stats`.
    pub fingerprint: u64,
    /// Per-mode SPLATT builds, shared by `stats`-style queries and the
    /// baseline kernels. Built eagerly at registration: the cost is paid
    /// once, off the job workers' critical path.
    pub splatt: [SplattTensor; NMODES],
}

impl TensorEntry {
    fn build(name: &str, coo: CooTensor) -> TensorEntry {
        let stats = TensorStats::of(&coo);
        let fingerprint = stats.fingerprint();
        let splatt = [
            SplattTensor::for_mode(&coo, 0),
            SplattTensor::for_mode(&coo, 1),
            SplattTensor::for_mode(&coo, 2),
        ];
        TensorEntry {
            name: name.to_string(),
            coo,
            stats,
            fingerprint,
            splatt,
        }
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The handle is already registered (first-wins policy).
    Exists(String),
    /// No tensor under that handle.
    NotFound(String),
    /// Loading or generating the tensor failed (I/O, unknown extension or
    /// data set — the request itself, not the tensor bytes).
    Load(String),
    /// The tensor file was readable but its contents are malformed
    /// (parse or format error from the `.tns` / `.tnsb` readers).
    InvalidTensor(String),
    /// A spilled tile store failed validation on reload and was moved to
    /// its `*.quarantine/` directory. The handle stays registered but its
    /// data is gone until an operator re-registers it.
    SpillCorrupt(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(n) => write!(f, "tensor {n:?} is already registered"),
            RegistryError::NotFound(n) => write!(f, "no tensor registered as {n:?}"),
            RegistryError::Load(msg)
            | RegistryError::InvalidTensor(msg)
            | RegistryError::SpillCorrupt(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Spill-tier configuration: where evicted tensors go and how many may
/// stay resident.
#[derive(Debug, Clone)]
struct SpillConfig {
    dir: PathBuf,
    max_resident: usize,
}

/// One registered handle: resident, spilled to disk, or (transiently
/// during a reload) both.
#[derive(Debug)]
struct Slot {
    resident: Option<Arc<TensorEntry>>,
    /// Tile-store file written by a past eviction. Kept even after a
    /// reload so a second eviction can drop the entry without rewriting
    /// the (immutable) file.
    spill_path: Option<PathBuf>,
    /// Logical timestamp of the last `get`/registration (LRU ordering).
    last_used: AtomicU64,
}

/// Thread-safe name → tensor map with optional LRU spill-to-disk.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<HashMap<String, Slot>>,
    spill: Option<SpillConfig>,
    clock: AtomicU64,
    stream_stats: Arc<StreamStats>,
    /// Fault-injection hook for spill writes and reloads (no-op in
    /// production; armed by `tenblock chaos` and the fault tests).
    faults: FaultPolicy,
    /// Degradation counters, shared with the service [`crate::Metrics`].
    counters: Arc<FaultCounters>,
}

/// `name`, reduced to filesystem-safe characters for the spill filename.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Recovers the registry handle from a spill filename stem: eviction
/// writes `{sanitized-name}-{fingerprint:016x}`, so strip a trailing
/// 16-hex-digit suffix if present, else use the whole stem.
fn adopted_name(stem: &str) -> String {
    if stem.len() > 17 {
        let (head, tail) = stem.split_at(stem.len() - 17);
        if let Some(hex) = tail.strip_prefix('-') {
            if hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return head.to_string();
            }
        }
    }
    stem.to_string()
}

impl Registry {
    /// Empty registry; everything stays resident.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Empty registry that keeps at most `max_resident` tensors in
    /// memory, spilling the least recently used to tile stores in `dir`.
    ///
    /// If `dir` already holds spill stores from a previous process, valid
    /// ones are re-adopted as spilled entries (named by stripping the
    /// fingerprint suffix from the filename), invalid ones are moved to
    /// their `*.quarantine/` directory, and leftover `*.tmp` files from a
    /// crashed writer are deleted.
    pub fn with_spill<P: AsRef<Path>>(dir: P, max_resident: usize) -> Registry {
        let reg = Registry {
            spill: Some(SpillConfig {
                dir: dir.as_ref().to_path_buf(),
                max_resident: max_resident.max(1),
            }),
            ..Registry::default()
        };
        reg.adopt_spill_dir();
        reg
    }

    /// Arms a fault-injection policy over spill writes and reloads.
    pub fn with_faults(mut self, faults: FaultPolicy) -> Registry {
        self.faults = faults;
        self
    }

    /// The degradation counters this registry increments (shared into the
    /// service metrics).
    pub fn fault_counters(&self) -> &Arc<FaultCounters> {
        &self.counters
    }

    /// The stream counters charged by spill reloads.
    pub fn stream_stats(&self) -> &Arc<StreamStats> {
        &self.stream_stats
    }

    /// Scans the spill directory at startup: re-adopts valid stores as
    /// spilled entries, quarantines stores that fail validation, removes
    /// `*.tmp` crash litter. A missing or unreadable directory is fine —
    /// the first eviction will create it.
    fn adopt_spill_dir(&self) {
        let Some(cfg) = &self.spill else { return };
        let Ok(rd) = std::fs::read_dir(&cfg.dir) else {
            return;
        };
        for entry in rd.filter_map(|e| e.ok()) {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            match path.extension().and_then(|e| e.to_str()) {
                Some("tmp") => {
                    // An uncommitted temp file from a writer that died:
                    // never adoptable, safe to delete.
                    let _ = std::fs::remove_file(&path);
                }
                Some("tnsb") => match TileStore::open(&path) {
                    Ok(_) => {
                        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                        let name = adopted_name(stem);
                        let mut map = crate::sync::write(&self.entries);
                        // First wins, as everywhere else.
                        map.entry(name).or_insert_with(|| Slot {
                            resident: None,
                            spill_path: Some(path.clone()),
                            last_used: AtomicU64::new(self.tick()),
                        });
                    }
                    Err(_) => self.quarantine(&path),
                },
                _ => {}
            }
        }
    }

    /// Moves a spill store that failed validation into a sibling
    /// `<file>.quarantine/` directory so it can never be adopted again but
    /// stays available for offline inspection.
    fn quarantine(&self, path: &Path) {
        self.counters
            .quarantined_stores
            .fetch_add(1, Ordering::Relaxed);
        let Some(file) = path.file_name().and_then(|f| f.to_str()) else {
            return;
        };
        let qdir = path.with_file_name(format!("{file}.quarantine"));
        let moved =
            std::fs::create_dir_all(&qdir).and_then(|()| std::fs::rename(path, qdir.join(file)));
        match moved {
            Ok(()) => eprintln!(
                "tenblock-serve: quarantined corrupt spill store {}",
                path.display()
            ),
            Err(e) => eprintln!(
                "tenblock-serve: failed to quarantine {}: {e}",
                path.display()
            ),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts least-recently-used residents (never `exempt`) until the
    /// resident count fits the cap. Called with the write lock held; the
    /// spill write happens under the lock, which is acceptable for a
    /// registry whose churn is operator-driven, not per-request.
    fn enforce_residency(&self, map: &mut HashMap<String, Slot>, exempt: &str) {
        let Some(cfg) = &self.spill else { return };
        loop {
            let resident = map.values().filter(|s| s.resident.is_some()).count();
            if resident <= cfg.max_resident {
                return;
            }
            let victim = map
                .iter()
                .filter(|(n, s)| s.resident.is_some() && n.as_str() != exempt)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(n, _)| n.clone());
            let Some(name) = victim else { return };
            let Some(slot) = map.get_mut(&name) else {
                return;
            };
            let Some(entry) = slot.resident.clone() else {
                return;
            };
            // A past eviction already wrote the file; the tensor is
            // immutable, so dropping the entry suffices.
            if let Some(p) = &slot.spill_path {
                if p.exists() {
                    slot.resident = None;
                    continue;
                }
            }
            let path = cfg.dir.join(format!(
                "{}-{:016x}.tnsb",
                sanitize(&name),
                entry.fingerprint
            ));
            let grid = grid_for_tile_budget(entry.coo.dims(), entry.coo.nnz(), SPILL_TILE_BUDGET);
            // Transient write errors retry with seeded capped backoff;
            // permanent ones skip the eviction (counted, logged): the
            // victim stays resident rather than being lost.
            let mut backoff = Backoff::for_io(entry.fingerprint);
            let written = loop {
                let attempt = std::fs::create_dir_all(&cfg.dir)
                    .map_err(io_bin::BinError::from)
                    .and_then(|()| {
                        TileStore::create_from_coo_with(
                            &entry.coo,
                            grid,
                            &path,
                            self.faults.clone(),
                        )
                    });
                match attempt {
                    Err(io_bin::BinError::Io(e)) if is_transient(&e) => {
                        match backoff.next_delay() {
                            Some(delay) => {
                                self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(delay);
                            }
                            None => break Err(io_bin::BinError::Io(e)),
                        }
                    }
                    other => break other,
                }
            };
            match written {
                Ok(_) => {
                    slot.spill_path = Some(path);
                    slot.resident = None;
                }
                Err(e) => {
                    self.counters.spill_failures.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .evictions_skipped
                        .fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "tenblock-serve: spill of {name:?} failed ({e}); \
                         tensor stays resident over the cap"
                    );
                    return;
                }
            }
        }
    }

    /// Registers an in-memory tensor under `name`.
    pub fn register(&self, name: &str, coo: CooTensor) -> Result<Arc<TensorEntry>, RegistryError> {
        // Build outside the lock: SPLATT construction is O(nnz log nnz) and
        // must not block readers. The handle check is repeated under the
        // write lock (first insert wins).
        let entry = Arc::new(TensorEntry::build(name, coo));
        let mut map = crate::sync::write(&self.entries);
        if map.contains_key(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Slot {
                resident: Some(Arc::clone(&entry)),
                spill_path: None,
                last_used: AtomicU64::new(self.tick()),
            },
        );
        // Spilling evictees to disk under the entries lock is the
        // residency-cap design: the cap must hold atomically with the
        // insert that can breach it — lint: allow(lock-discipline)
        self.enforce_residency(&mut map, name);
        Ok(entry)
    }

    /// Loads a tensor file (`.tns` text or `.tnsb` binary) and registers it.
    pub fn load(&self, name: &str, path: &str) -> Result<Arc<TensorEntry>, RegistryError> {
        if self.contains(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let p = Path::new(path);
        // Parse/format failures become InvalidTensor (the bytes are wrong);
        // I/O failures and a bad extension stay Load (the request is wrong).
        let coo = match p.extension().and_then(|e| e.to_str()) {
            Some("tns") => io::read_tns_file(p).map_err(|e| match e {
                io::TnsError::Parse { .. } => RegistryError::InvalidTensor(e.to_string()),
                io::TnsError::Io(_) => RegistryError::Load(e.to_string()),
            })?,
            Some("tnsb") => io_bin::read_bin_file(p).map_err(|e| match e {
                io_bin::BinError::Format(_) => RegistryError::InvalidTensor(e.to_string()),
                io_bin::BinError::Io(_) => RegistryError::Load(e.to_string()),
            })?,
            other => {
                return Err(RegistryError::Load(format!(
                    "unknown tensor extension {other:?} (expected .tns or .tnsb)"
                )))
            }
        };
        self.register(name, coo)
    }

    /// Generates a Table II data-set analogue and registers it.
    pub fn generate(
        &self,
        name: &str,
        dataset: &str,
        nnz: Option<usize>,
        seed: u64,
    ) -> Result<Arc<TensorEntry>, RegistryError> {
        if self.contains(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let ds = ALL_DATASETS
            .into_iter()
            .find(|d| d.spec().name.eq_ignore_ascii_case(dataset))
            .ok_or_else(|| RegistryError::Load(format!("unknown data set {dataset:?}")))?;
        let spec = ds.spec();
        let coo = ds.generate_with(spec.default_dims, nnz.unwrap_or(spec.default_nnz), seed);
        self.register(name, coo)
    }

    /// Looks up a tensor by handle, streaming it back from the spill tier
    /// if it was evicted.
    pub fn get(&self, name: &str) -> Result<Arc<TensorEntry>, RegistryError> {
        let spill_path = {
            let map = crate::sync::read(&self.entries);
            let Some(slot) = map.get(name) else {
                return Err(RegistryError::NotFound(name.to_string()));
            };
            slot.last_used.store(self.tick(), Ordering::Relaxed);
            if let Some(entry) = &slot.resident {
                return Ok(Arc::clone(entry));
            }
            // Invariant: a registered slot is resident or spilled. Surface
            // a violation as a typed error instead of panicking a worker.
            match slot.spill_path.clone() {
                Some(p) => p,
                None => {
                    return Err(RegistryError::Load(format!(
                        "tensor {name:?} is neither resident nor spilled"
                    )))
                }
            }
        };
        // Reload outside the lock: tile streaming plus the SPLATT rebuild
        // must not block concurrent lookups of other tensors. Transient
        // I/O errors retry with backoff; a validation failure means the
        // bytes on disk are wrong — quarantine the store and surface a
        // typed error instead of panicking a worker.
        let mut backoff = Backoff::for_io(self.clock.load(Ordering::Relaxed));
        let coo = loop {
            let attempt =
                TileStore::open_with(&spill_path, self.faults.clone()).and_then(|store| {
                    let lens: Vec<u64> = (0..store.n_tiles()).map(|i| store.tile(i).len).collect();
                    store.to_coo().map(|coo| (coo, lens))
                });
            match attempt {
                Ok((coo, lens)) => {
                    // Charge the stream stats only for the attempt that
                    // succeeded; retried partial reads don't count tiles.
                    for len in lens {
                        self.stream_stats.add_tile(len);
                    }
                    break coo;
                }
                Err(io_bin::BinError::Io(e)) if is_transient(&e) => match backoff.next_delay() {
                    Some(delay) => {
                        self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(delay);
                    }
                    None => {
                        return Err(RegistryError::Load(format!(
                            "reloading spilled {name:?}: {e}"
                        )))
                    }
                },
                Err(io_bin::BinError::Format(msg)) => {
                    self.quarantine(&spill_path);
                    let mut map = crate::sync::write(&self.entries);
                    if let Some(slot) = map.get_mut(name) {
                        // The file is gone; the handle stays registered
                        // (names never shrink) but has no data to serve.
                        slot.spill_path = None;
                    }
                    return Err(RegistryError::SpillCorrupt(format!(
                        "spilled store for {name:?} failed validation and was quarantined: {msg}"
                    )));
                }
                Err(e) => {
                    return Err(RegistryError::Load(format!(
                        "reloading spilled {name:?}: {e}"
                    )))
                }
            }
        };
        let entry = Arc::new(TensorEntry::build(name, coo));
        let mut map = crate::sync::write(&self.entries);
        let Some(slot) = map.get_mut(name) else {
            return Err(RegistryError::NotFound(name.to_string()));
        };
        // First reload wins; a racing thread's entry is as good as ours.
        if let Some(existing) = &slot.resident {
            return Ok(Arc::clone(existing));
        }
        slot.resident = Some(Arc::clone(&entry));
        slot.last_used.store(self.tick(), Ordering::Relaxed);
        // Spilling evictees to disk under the entries lock is the
        // residency-cap design: the cap must hold atomically with the
        // insert that can breach it — lint: allow(lock-discipline)
        self.enforce_residency(&mut map, name);
        Ok(entry)
    }

    /// Whether `name` is registered (resident or spilled).
    pub fn contains(&self, name: &str) -> bool {
        crate::sync::read(&self.entries).contains_key(name)
    }

    /// Registered handles, sorted. Spilled tensors are included: the set
    /// of names never shrinks while the registry lives.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = crate::sync::read(&self.entries).keys().cloned().collect();
        v.sort();
        v
    }

    /// Handles currently resident in memory, sorted.
    pub fn resident_names(&self) -> Vec<String> {
        let mut v: Vec<_> = crate::sync::read(&self.entries)
            .iter()
            .filter(|(_, s)| s.resident.is_some())
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// Handles evicted to the spill tier, sorted.
    pub fn spilled_names(&self) -> Vec<String> {
        let mut v: Vec<_> = crate::sync::read(&self.entries)
            .iter()
            .filter(|(_, s)| s.resident.is_none())
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// Number of registered tensors, resident or spilled.
    pub fn len(&self) -> usize {
        crate::sync::read(&self.entries).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    fn spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tenblock_spill_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn register_get_and_first_wins() {
        let reg = Registry::new();
        let t = uniform_tensor([20, 30, 10], 500, 7);
        let e = reg.register("a", t.clone()).unwrap();
        assert_eq!(e.stats.nnz, e.coo.nnz());
        assert_eq!(e.fingerprint, e.stats.fingerprint());
        assert_eq!(e.splatt[1].dims(), [20, 30, 10]);

        let again = reg.register("a", t);
        assert_eq!(again.unwrap_err(), RegistryError::Exists("a".into()));
        assert_eq!(reg.get("a").unwrap().name, "a");
        assert!(matches!(reg.get("b"), Err(RegistryError::NotFound(_))));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        // Without a spill tier everything is resident.
        assert_eq!(reg.resident_names(), vec!["a".to_string()]);
        assert!(reg.spilled_names().is_empty());
    }

    #[test]
    fn generate_registers_dataset_analogue() {
        let reg = Registry::new();
        let e = reg.generate("p1", "poisson1", Some(2_000), 42).unwrap();
        assert!(e.stats.nnz > 0 && e.stats.nnz <= 2_000);
        assert!(matches!(
            reg.generate("p2", "nosuch", None, 0),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn load_rejects_unknown_extension() {
        let reg = Registry::new();
        assert!(matches!(
            reg.load("x", "/tmp/whatever.csv"),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn malformed_tensor_bytes_are_invalid_tensor_not_load() {
        let dir = std::env::temp_dir().join(format!("tenblock_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.tns");
        std::fs::write(&bad, "1 1 1 not-a-number\n").unwrap();
        let reg = Registry::new();
        assert!(matches!(
            reg.load("x", bad.to_str().unwrap()),
            Err(RegistryError::InvalidTensor(_))
        ));
        // A missing file is an I/O problem with the request, not bad bytes.
        let missing = dir.join("never_written.tns");
        assert!(matches!(
            reg.load("y", missing.to_str().unwrap()),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn concurrent_register_same_name_single_winner() {
        let reg = std::sync::Arc::new(Registry::new());
        let t = uniform_tensor([10, 10, 10], 200, 1);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let reg = std::sync::Arc::clone(&reg);
                    let t = t.clone();
                    s.spawn(move || reg.register("shared", t).is_ok() as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn spill_evicts_lru_and_reload_round_trips() {
        let dir = spill_dir("lru");
        let reg = Registry::with_spill(&dir, 1);
        let ta = uniform_tensor([15, 12, 9], 400, 3);
        let a = reg.register("a", ta).unwrap();
        let (a_nnz, a_fp) = (a.coo.nnz(), a.fingerprint);
        reg.register("b", uniform_tensor([8, 8, 8], 150, 5))
            .unwrap();

        // "a" was least recently used, so registering "b" spilled it —
        // but the handle stays registered.
        assert_eq!(reg.resident_names(), vec!["b".to_string()]);
        assert_eq!(reg.spilled_names(), vec!["a".to_string()]);
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("a"));

        // Reloading streams the tiles back bit-exact and evicts "b".
        let a2 = reg.get("a").unwrap();
        assert_eq!(a2.coo.nnz(), a_nnz);
        assert_eq!(a2.fingerprint, a_fp);
        assert_eq!(reg.resident_names(), vec!["a".to_string()]);
        assert_eq!(reg.spilled_names(), vec!["b".to_string()]);

        let snap = reg.stream_stats().snapshot();
        assert!(snap.tiles_loaded > 0, "reload must be counted");
        assert!(snap.bytes_streamed > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_refreshes_lru_order() {
        let dir = spill_dir("touch");
        let reg = Registry::with_spill(&dir, 2);
        reg.register("a", uniform_tensor([10, 10, 10], 100, 1))
            .unwrap();
        reg.register("b", uniform_tensor([10, 10, 10], 100, 2))
            .unwrap();
        // Touch "a" so "b" becomes the LRU victim.
        reg.get("a").unwrap();
        reg.register("c", uniform_tensor([10, 10, 10], 100, 3))
            .unwrap();
        assert_eq!(reg.resident_names(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(reg.spilled_names(), vec!["b".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_spill_keeps_victim_resident_and_counts() {
        use tenblock_faults::{FaultAction, FaultOp, Trigger};
        let dir = spill_dir("spillfail");
        // Every write fails with ENOSPC (28): eviction can never succeed.
        let reg = Registry::with_spill(&dir, 1).with_faults(FaultPolicy::new(
            FaultOp::Write,
            FaultAction::Errno(28),
            Trigger::EveryNth(1),
            3,
        ));
        reg.register("a", uniform_tensor([10, 10, 10], 200, 1))
            .unwrap();
        reg.register("b", uniform_tensor([10, 10, 10], 200, 2))
            .unwrap();
        // Over the cap, but nothing was lost: the spill failed so "a"
        // stays resident.
        assert_eq!(reg.resident_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.spilled_names().is_empty());
        let snap = reg.fault_counters().snapshot();
        assert!(snap.spill_failures >= 1, "snap: {snap:?}");
        assert!(snap.evictions_skipped >= 1);
        assert_eq!(snap.quarantined_stores, 0);
        // No half-written spill file is left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
            .unwrap_or_default();
        assert!(stray.is_empty(), "stray files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_spill_errors_retry_and_succeed() {
        use tenblock_faults::{FaultAction, FaultOp, Trigger};
        let dir = spill_dir("spillretry");
        // First two writes hit EAGAIN, then the fault heals. (EINTR would
        // be swallowed: `Write::write_all` retries `Interrupted` itself.)
        let reg = Registry::with_spill(&dir, 1).with_faults(FaultPolicy::transient(
            FaultOp::Write,
            FaultAction::Errno(11),
            Trigger::EveryNth(1),
            9,
            2,
        ));
        reg.register("a", uniform_tensor([10, 10, 10], 200, 1))
            .unwrap();
        reg.register("b", uniform_tensor([10, 10, 10], 200, 2))
            .unwrap();
        assert_eq!(reg.spilled_names(), vec!["a".to_string()]);
        let snap = reg.fault_counters().snapshot();
        assert!(snap.io_retries >= 1, "snap: {snap:?}");
        assert_eq!(snap.spill_failures, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_store_is_quarantined_with_typed_error() {
        let dir = spill_dir("quarantine");
        let reg = Registry::with_spill(&dir, 1);
        reg.register("a", uniform_tensor([12, 10, 8], 300, 3))
            .unwrap();
        reg.register("b", uniform_tensor([8, 8, 8], 100, 4))
            .unwrap();
        assert_eq!(reg.spilled_names(), vec!["a".to_string()]);
        // Corrupt the spilled store's header in place.
        let spill_file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|e| e == "tnsb"))
            .unwrap();
        let mut bytes = std::fs::read(&spill_file).unwrap();
        bytes[0] ^= 0xff; // break the magic
        std::fs::write(&spill_file, &bytes).unwrap();

        let err = reg.get("a").unwrap_err();
        assert!(
            matches!(err, RegistryError::SpillCorrupt(_)),
            "got: {err:?}"
        );
        assert_eq!(reg.fault_counters().snapshot().quarantined_stores, 1);
        // The store moved into its quarantine directory...
        assert!(!spill_file.exists());
        let qdir = spill_file.with_file_name(format!(
            "{}.quarantine",
            spill_file.file_name().unwrap().to_str().unwrap()
        ));
        assert!(qdir.join(spill_file.file_name().unwrap()).exists());
        // ...the handle stays registered (names never shrink), and a
        // second get fails typed rather than panicking.
        assert!(reg.contains("a"));
        assert!(matches!(reg.get("a"), Err(RegistryError::Load(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_adopts_valid_stores_quarantines_bad_and_sweeps_tmp() {
        let dir = spill_dir("adopt");
        {
            let reg = Registry::with_spill(&dir, 1);
            let a = reg
                .register("alpha", uniform_tensor([12, 10, 8], 250, 6))
                .unwrap();
            let _fp = a.fingerprint;
            reg.register("beta", uniform_tensor([8, 8, 8], 90, 7))
                .unwrap();
            assert_eq!(reg.spilled_names(), vec!["alpha".to_string()]);
        }
        // Simulate crash litter: a half-written temp and a corrupt store.
        std::fs::write(dir.join("halfway.tnsb.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("bad-0000000000000bad.tnsb"), b"TNSBgarbage").unwrap();

        let reg2 = Registry::with_spill(&dir, 1);
        // The valid store was re-adopted under its original name.
        assert_eq!(reg2.names(), vec!["alpha".to_string()]);
        assert_eq!(reg2.spilled_names(), vec!["alpha".to_string()]);
        let a = reg2.get("alpha").unwrap();
        assert_eq!(a.coo.nnz(), 250);
        // The corrupt store was quarantined, the tmp litter deleted.
        assert_eq!(reg2.fault_counters().snapshot().quarantined_stores, 1);
        assert!(!dir.join("halfway.tnsb.tmp").exists());
        assert!(!dir.join("bad-0000000000000bad.tnsb").exists());
        assert!(dir
            .join("bad-0000000000000bad.tnsb.quarantine")
            .join("bad-0000000000000bad.tnsb")
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adopted_name_strips_fingerprint_suffix() {
        assert_eq!(adopted_name("amazon-00deadbeef123456"), "amazon");
        assert_eq!(adopted_name("has-dashes-0123456789abcdef"), "has-dashes");
        // Not a fingerprint suffix: kept verbatim.
        assert_eq!(adopted_name("short"), "short");
        assert_eq!(adopted_name("name-notahexsuffix00"), "name-notahexsuffix00");
    }

    #[test]
    fn second_eviction_reuses_the_spill_file() {
        let dir = spill_dir("reuse");
        let reg = Registry::with_spill(&dir, 1);
        reg.register("a", uniform_tensor([12, 12, 12], 300, 4))
            .unwrap();
        reg.register("b", uniform_tensor([6, 6, 6], 80, 5)).unwrap();
        let files = || {
            let mut v: Vec<_> = std::fs::read_dir(&dir)
                .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.file_name())).collect())
                .unwrap_or_default();
            v.sort();
            v
        };
        let after_first = files();
        assert_eq!(after_first.len(), 1, "one spill file for \"a\"");
        // Ping-pong: a back in, b out; then b back in, a out again. The
        // immutable spill files are written once each and then reused.
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        assert_eq!(files().len(), 2);
        assert_eq!(reg.spilled_names(), vec!["a".to_string()]);
        let a = reg.get("a").unwrap();
        assert_eq!(a.coo.nnz(), 300);
        assert_eq!(files().len(), 2, "no third file on re-eviction");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
