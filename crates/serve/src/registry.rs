//! Tensor registry: named, shared, immutable tensor residency.
//!
//! A decomposition service repeats three expensive steps per request if it
//! is naive: parse the tensor file, compute statistics, and build the
//! fiber-compressed SPLATT views. The registry does each exactly once per
//! tensor and hands out `Arc<TensorEntry>` clones, so concurrent jobs share
//! one resident copy. Entries are keyed by a caller-chosen string handle;
//! registration is first-wins (re-registering an existing handle is an
//! error rather than a silent replace, so a handle never changes meaning
//! mid-session).

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};
use tenblock_tensor::gen::ALL_DATASETS;
use tenblock_tensor::{io, io_bin, CooTensor, SplattTensor, TensorStats, NMODES};

/// One resident tensor with everything derived from it.
#[derive(Debug)]
pub struct TensorEntry {
    /// Registry handle.
    pub name: String,
    /// The coordinate-format tensor (kernels are built from this).
    pub coo: CooTensor,
    /// Precomputed statistics (also the plan-cache fingerprint source).
    pub stats: TensorStats,
    /// Shape fingerprint, cached from `stats`.
    pub fingerprint: u64,
    /// Per-mode SPLATT builds, shared by `stats`-style queries and the
    /// baseline kernels. Built eagerly at registration: the cost is paid
    /// once, off the job workers' critical path.
    pub splatt: [SplattTensor; NMODES],
}

impl TensorEntry {
    fn build(name: &str, coo: CooTensor) -> TensorEntry {
        let stats = TensorStats::of(&coo);
        let fingerprint = stats.fingerprint();
        let splatt = [
            SplattTensor::for_mode(&coo, 0),
            SplattTensor::for_mode(&coo, 1),
            SplattTensor::for_mode(&coo, 2),
        ];
        TensorEntry {
            name: name.to_string(),
            coo,
            stats,
            fingerprint,
            splatt,
        }
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The handle is already registered (first-wins policy).
    Exists(String),
    /// No tensor under that handle.
    NotFound(String),
    /// Loading or generating the tensor failed (I/O, unknown extension or
    /// data set — the request itself, not the tensor bytes).
    Load(String),
    /// The tensor file was readable but its contents are malformed
    /// (parse or format error from the `.tns` / `.tnsb` readers).
    InvalidTensor(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(n) => write!(f, "tensor {n:?} is already registered"),
            RegistryError::NotFound(n) => write!(f, "no tensor registered as {n:?}"),
            RegistryError::Load(msg) | RegistryError::InvalidTensor(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Thread-safe name → tensor map.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<TensorEntry>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers an in-memory tensor under `name`.
    pub fn register(&self, name: &str, coo: CooTensor) -> Result<Arc<TensorEntry>, RegistryError> {
        // Build outside the lock: SPLATT construction is O(nnz log nnz) and
        // must not block readers. The handle check is repeated under the
        // write lock (first insert wins).
        let entry = Arc::new(TensorEntry::build(name, coo));
        let mut map = crate::sync::write(&self.entries);
        if map.contains_key(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Loads a tensor file (`.tns` text or `.tnsb` binary) and registers it.
    pub fn load(&self, name: &str, path: &str) -> Result<Arc<TensorEntry>, RegistryError> {
        if self.contains(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let p = Path::new(path);
        // Parse/format failures become InvalidTensor (the bytes are wrong);
        // I/O failures and a bad extension stay Load (the request is wrong).
        let coo = match p.extension().and_then(|e| e.to_str()) {
            Some("tns") => io::read_tns_file(p).map_err(|e| match e {
                io::TnsError::Parse { .. } => RegistryError::InvalidTensor(e.to_string()),
                io::TnsError::Io(_) => RegistryError::Load(e.to_string()),
            })?,
            Some("tnsb") => io_bin::read_bin_file(p).map_err(|e| match e {
                io_bin::BinError::Format(_) => RegistryError::InvalidTensor(e.to_string()),
                io_bin::BinError::Io(_) => RegistryError::Load(e.to_string()),
            })?,
            other => {
                return Err(RegistryError::Load(format!(
                    "unknown tensor extension {other:?} (expected .tns or .tnsb)"
                )))
            }
        };
        self.register(name, coo)
    }

    /// Generates a Table II data-set analogue and registers it.
    pub fn generate(
        &self,
        name: &str,
        dataset: &str,
        nnz: Option<usize>,
        seed: u64,
    ) -> Result<Arc<TensorEntry>, RegistryError> {
        if self.contains(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let ds = ALL_DATASETS
            .into_iter()
            .find(|d| d.spec().name.eq_ignore_ascii_case(dataset))
            .ok_or_else(|| RegistryError::Load(format!("unknown data set {dataset:?}")))?;
        let spec = ds.spec();
        let coo = ds.generate_with(spec.default_dims, nnz.unwrap_or(spec.default_nnz), seed);
        self.register(name, coo)
    }

    /// Looks up a tensor by handle.
    pub fn get(&self, name: &str) -> Result<Arc<TensorEntry>, RegistryError> {
        crate::sync::read(&self.entries)
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        crate::sync::read(&self.entries).contains_key(name)
    }

    /// Registered handles, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = crate::sync::read(&self.entries).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of resident tensors.
    pub fn len(&self) -> usize {
        crate::sync::read(&self.entries).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenblock_tensor::gen::uniform_tensor;

    #[test]
    fn register_get_and_first_wins() {
        let reg = Registry::new();
        let t = uniform_tensor([20, 30, 10], 500, 7);
        let e = reg.register("a", t.clone()).unwrap();
        assert_eq!(e.stats.nnz, e.coo.nnz());
        assert_eq!(e.fingerprint, e.stats.fingerprint());
        assert_eq!(e.splatt[1].dims(), [20, 30, 10]);

        let again = reg.register("a", t);
        assert_eq!(again.unwrap_err(), RegistryError::Exists("a".into()));
        assert_eq!(reg.get("a").unwrap().name, "a");
        assert!(matches!(reg.get("b"), Err(RegistryError::NotFound(_))));
        assert_eq!(reg.names(), vec!["a".to_string()]);
    }

    #[test]
    fn generate_registers_dataset_analogue() {
        let reg = Registry::new();
        let e = reg.generate("p1", "poisson1", Some(2_000), 42).unwrap();
        assert!(e.stats.nnz > 0 && e.stats.nnz <= 2_000);
        assert!(matches!(
            reg.generate("p2", "nosuch", None, 0),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn load_rejects_unknown_extension() {
        let reg = Registry::new();
        assert!(matches!(
            reg.load("x", "/tmp/whatever.csv"),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn malformed_tensor_bytes_are_invalid_tensor_not_load() {
        let dir = std::env::temp_dir().join(format!("tenblock_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.tns");
        std::fs::write(&bad, "1 1 1 not-a-number\n").unwrap();
        let reg = Registry::new();
        assert!(matches!(
            reg.load("x", bad.to_str().unwrap()),
            Err(RegistryError::InvalidTensor(_))
        ));
        // A missing file is an I/O problem with the request, not bad bytes.
        let missing = dir.join("never_written.tns");
        assert!(matches!(
            reg.load("y", missing.to_str().unwrap()),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn concurrent_register_same_name_single_winner() {
        let reg = std::sync::Arc::new(Registry::new());
        let t = uniform_tensor([10, 10, 10], 200, 1);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let reg = std::sync::Arc::clone(&reg);
                    let t = t.clone();
                    s.spawn(move || reg.register("shared", t).is_ok() as usize)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1);
        assert_eq!(reg.len(), 1);
    }
}
