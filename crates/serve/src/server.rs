//! TCP front-end: line-delimited JSON over `std::net`.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated —
//! the simplest protocol a human can drive with `nc`. Each accepted
//! connection gets its own thread (connections are long-lived sessions
//! from a handful of clients, not a web-scale fan-in, so thread-per-
//! connection is the right amount of machinery). All connections share
//! one [`Service`]; concurrency control lives in the service's scheduler
//! and registry, not in the transport.

use crate::json::Json;
use crate::plan_cache::PlanCache;
use crate::proto::{err, ErrorCode, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Job worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity.
    pub queue_capacity: usize,
    /// Optional plan-cache file shared with the `tune`/`decompose` CLI.
    pub plan_cache_path: Option<std::path::PathBuf>,
    /// Cap on in-memory tensors; beyond it the registry spills the least
    /// recently used to on-disk tile stores. `None` keeps everything
    /// resident (no spill tier).
    pub max_resident: Option<usize>,
    /// Directory for spilled tile stores. Only consulted when
    /// `max_resident` is set; defaults to a per-process temp directory.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            plan_cache_path: None,
            max_resident: None,
            spill_dir: None,
        }
    }
}

/// A running server: an accept loop plus per-connection threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

fn handle_connection(stream: TcpStream, service: &Service) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            Ok(req) => service.handle(&req),
            Err(e) => err(ErrorCode::BadRequest, format!("invalid JSON: {e}")),
        };
        let mut out = response.to_string_compact();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving. Returns once the listener is live; use [`Server::addr`]
    /// for the bound address.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let plans = match &config.plan_cache_path {
            Some(path) => PlanCache::open(path)?,
            None => PlanCache::in_memory(),
        };
        let registry = match config.max_resident {
            Some(cap) => {
                let dir = config.spill_dir.clone().unwrap_or_else(|| {
                    std::env::temp_dir().join(format!("tenblock-spill-{}", std::process::id()))
                });
                crate::registry::Registry::with_spill(dir, cap)
            }
            None => crate::registry::Registry::new(),
        };
        let service = Arc::new(Service::with_registry(
            config.workers,
            config.queue_capacity,
            plans,
            registry,
        ));
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            // Connection threads are detached: they exit when their client
            // hangs up, and the process-lifetime service outlives them.
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || handle_connection(stream, &service));
            }
        });
        Ok(Server {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (i.e. forever, absent
    /// [`Server::shutdown`] from another thread).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting connections. Existing connections finish their
    /// in-flight request and close when the client hangs up.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // `incoming()` blocks in accept(); poke it with a throwaway
        // connection so the loop observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> Json {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(&line).unwrap()
    }

    #[test]
    fn serves_over_tcp() {
        let mut server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"cmd":"gen","name":"t","dataset":"poisson1","nnz":1000,"seed":1}"#,
        );
        assert_eq!(r.get_bool("ok"), Some(true), "{r:?}");

        let stats = roundtrip(&mut stream, &mut reader, r#"{"cmd":"stats","tensor":"t"}"#);
        assert!(stats.get_usize("nnz").unwrap() > 0);

        // Malformed line gets an error response, and the connection
        // survives for the next request.
        let bad = roundtrip(&mut stream, &mut reader, "{nope");
        assert_eq!(bad.get_str("code"), Some("bad-request"));
        let list = roundtrip(&mut stream, &mut reader, r#"{"cmd":"list"}"#);
        assert_eq!(list.get_bool("ok"), Some(true));

        server.shutdown();
    }

    #[test]
    fn job_latency_histograms_populate_over_tcp() {
        let mut server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let r = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"cmd":"gen","name":"t","dataset":"poisson1","nnz":2000,"seed":3}"#,
        );
        assert_eq!(r.get_bool("ok"), Some(true), "{r:?}");
        let job = roundtrip(
            &mut stream,
            &mut reader,
            r#"{"cmd":"mttkrp","tensor":"t","mode":0,"kernel":"mbrankb","rank":8,"reps":2,"wait":true}"#,
        );
        assert_eq!(job.get_str("state"), Some("done"), "{job:?}");

        let m = roundtrip(&mut stream, &mut reader, r#"{"cmd":"metrics"}"#);
        let metrics = m.get("metrics").unwrap();
        for key in ["job_queue_wait", "job_run", "job_latency"] {
            let h = metrics.get(key).unwrap();
            assert!(
                h.get_usize("total").unwrap() >= 1,
                "{key} recorded nothing: {h:?}"
            );
        }

        server.shutdown();
    }
}
