//! A compact binary tensor format.
//!
//! FROSTT text files parse slowly at hundreds of millions of nonzeros
//! (Table II scale); this little-endian binary container loads with one
//! pass and no number parsing:
//!
//! ```text
//! magic  "TNSB"          4 bytes
//! version u32            currently 1
//! order   u32
//! dims    u64 * order
//! nnz     u64
//! coords  u32 * order * nnz   (entry-major)
//! vals    f64 * nnz
//! ```

use crate::coo::CooTensor;
use crate::nd::NdCooTensor;
use crate::{Entry, Idx, NMODES};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"TNSB";
const VERSION: u32 = 1;

/// Errors from the binary reader.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file.
    Format(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, BinError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, BinError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an N-mode tensor in the binary format.
pub fn write_bin_nd<W: Write>(t: &NdCooTensor, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, t.order() as u32)?;
    for &d in t.dims() {
        write_u64(&mut w, d as u64)?;
    }
    write_u64(&mut w, t.nnz() as u64)?;
    for n in 0..t.nnz() {
        for &c in t.coord(n) {
            write_u32(&mut w, c)?;
        }
    }
    for &v in t.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads an N-mode tensor from the binary format.
pub fn read_bin_nd<R: Read>(reader: R) -> Result<NdCooTensor, BinError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::Format("bad magic (not a TNSB file)".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(BinError::Format(format!("unsupported version {version}")));
    }
    let order = read_u32(&mut r)? as usize;
    if order == 0 || order > 64 {
        return Err(BinError::Format(format!("implausible order {order}")));
    }
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        dims.push(read_u64(&mut r)? as usize);
    }
    let nnz = read_u64(&mut r)? as usize;
    let cells: u128 = dims.iter().map(|&d| d as u128).product();
    if (nnz as u128) > cells {
        return Err(BinError::Format(format!("nnz {nnz} exceeds tensor cells")));
    }
    let mut coords: Vec<Idx> = Vec::with_capacity(nnz * order);
    for _ in 0..nnz * order {
        coords.push(read_u32(&mut r)?);
    }
    let mut vals = Vec::with_capacity(nnz);
    let mut b = [0u8; 8];
    for _ in 0..nnz {
        r.read_exact(&mut b)?;
        vals.push(f64::from_le_bytes(b));
    }
    for (n, chunk) in coords.chunks_exact(order).enumerate() {
        for (m, &c) in chunk.iter().enumerate() {
            if c as usize >= dims[m] {
                return Err(BinError::Format(format!(
                    "entry {n}: coordinate {c} out of range for mode {m}"
                )));
            }
        }
    }
    Ok(NdCooTensor::from_flat(dims, coords, vals))
}

/// Writes a 3-mode tensor in the binary format.
pub fn write_bin<W: Write>(t: &CooTensor, writer: W) -> std::io::Result<()> {
    write_bin_nd(&NdCooTensor::from_coo3(t), writer)
}

/// Reads a 3-mode tensor from the binary format.
///
/// Fails if the file's order is not 3.
pub fn read_bin<R: Read>(reader: R) -> Result<CooTensor, BinError> {
    let nd = read_bin_nd(reader)?;
    if nd.order() != NMODES {
        return Err(BinError::Format(format!(
            "expected a 3-mode tensor, file has order {}",
            nd.order()
        )));
    }
    let dims = [nd.dims()[0], nd.dims()[1], nd.dims()[2]];
    let entries = (0..nd.nnz())
        .map(|n| {
            let c = nd.coord(n);
            Entry::new(c[0], c[1], c[2], nd.value(n))
        })
        .collect();
    Ok(CooTensor::from_entries(dims, entries))
}

/// File-path conveniences.
pub fn write_bin_file<P: AsRef<Path>>(t: &CooTensor, path: P) -> std::io::Result<()> {
    write_bin(t, std::fs::File::create(path)?)
}

/// Reads a 3-mode binary tensor file.
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<CooTensor, BinError> {
    read_bin(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_tensor;
    use crate::nd::uniform_nd;

    #[test]
    fn roundtrip_3mode() {
        let t = uniform_tensor([20, 30, 40], 500, 7);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.entries(), t.entries());
    }

    #[test]
    fn roundtrip_nd() {
        let t = uniform_nd(&[5, 6, 7, 8, 9], 300, 3);
        let mut buf = Vec::new();
        write_bin_nd(&t, &mut buf).unwrap();
        let back = read_bin_nd(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_bin(b"NOPE".as_slice()),
            Err(BinError::Format(_)) | Err(BinError::Io(_))
        ));
        let mut buf = Vec::new();
        write_bin(&uniform_tensor([4, 4, 4], 10, 1), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(matches!(read_bin(buf.as_slice()), Err(BinError::Format(_))));
        // truncated payload
        let mut buf2 = Vec::new();
        write_bin(&uniform_tensor([4, 4, 4], 10, 1), &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 4);
        assert!(read_bin(buf2.as_slice()).is_err());
    }

    #[test]
    fn order_mismatch_is_reported() {
        let t = uniform_nd(&[4, 4], 8, 2);
        let mut buf = Vec::new();
        write_bin_nd(&t, &mut buf).unwrap();
        assert!(matches!(read_bin(buf.as_slice()), Err(BinError::Format(_))));
        // but the nd reader accepts it
        assert_eq!(read_bin_nd(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn file_roundtrip_and_size() {
        let t = uniform_tensor([50, 50, 50], 1_000, 9);
        let dir = std::env::temp_dir().join("tenblock_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tnsb");
        write_bin_file(&t, &path).unwrap();
        let back = read_bin_file(&path).unwrap();
        assert_eq!(back.entries(), t.entries());
        let size = std::fs::metadata(&path).unwrap().len() as usize;
        // header + 12 bytes coords + 8 bytes value per entry
        assert_eq!(size, 4 + 4 + 4 + 3 * 8 + 8 + 1_000 * (12 + 8));
    }
}
