//! A compact binary tensor container with a shared versioned header.
//!
//! FROSTT text files parse slowly at hundreds of millions of nonzeros
//! (Table II scale); this little-endian binary container loads with one
//! pass and no number parsing. Every `.tnsb` file — whatever its payload —
//! starts with the same header:
//!
//! ```text
//! magic  "TNSB"          4 bytes
//! version u32            1 = COO payload, 2 = tile-store payload
//! order   u32
//! dims    u64 * order
//! nnz     u64            total nonzeros in the file
//! ```
//!
//! Version 1 follows the header with a flat COO payload
//! (`coords u32 * order * nnz` entry-major, then `vals f64 * nnz`); the
//! version-2 tile framing lives in [`crate::tile_store`] and reuses
//! [`read_header`]/[`write_header`] plus the integer codecs here. Tensor
//! types plug into the container through [`BinCodec`], so the
//! stream/file entry points are written once and shared.

use crate::coo::CooTensor;
use crate::nd::NdCooTensor;
use crate::{Entry, NMODES};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"TNSB";
/// Header version for the flat COO payload.
pub const VERSION_COO: u32 = 1;
/// Header version for the tile-store payload ([`crate::tile_store`]).
pub const VERSION_TILES: u32 = 2;

/// Errors from the binary reader.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file.
    Format(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32, BinError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64, BinError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// The header every `.tnsb` file starts with, independent of payload
/// version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinHeader {
    /// Payload version ([`VERSION_COO`] or [`VERSION_TILES`]).
    pub version: u32,
    /// Mode lengths.
    pub dims: Vec<usize>,
    /// Total nonzeros stored in the file.
    pub nnz: u64,
}

impl BinHeader {
    /// Byte length of the encoded header.
    pub fn encoded_len(&self) -> usize {
        4 + 4 + 4 + 8 * self.dims.len() + 8
    }
}

/// Writes the shared versioned header.
pub fn write_header<W: Write>(w: &mut W, h: &BinHeader) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, h.version)?;
    write_u32(w, h.dims.len() as u32)?;
    for &d in &h.dims {
        write_u64(w, d as u64)?;
    }
    write_u64(w, h.nnz)
}

/// Reads and validates the shared header: magic, a plausible order, and
/// `nnz` within the tensor's cell count. Version dispatch is the caller's
/// job — every payload reader checks for the version it understands.
pub fn read_header<R: Read>(r: &mut R) -> Result<BinHeader, BinError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::Format("bad magic (not a TNSB file)".into()));
    }
    let version = read_u32(r)?;
    let order = read_u32(r)? as usize;
    if order == 0 || order > 64 {
        return Err(BinError::Format(format!("implausible order {order}")));
    }
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        dims.push(read_u64(r)? as usize);
    }
    let nnz = read_u64(r)?;
    let cells: u128 = dims.iter().map(|&d| d as u128).product();
    if (nnz as u128) > cells {
        return Err(BinError::Format(format!("nnz {nnz} exceeds tensor cells")));
    }
    Ok(BinHeader { version, dims, nnz })
}

/// Reads just the header of a `.tnsb` file, whatever its payload version —
/// enough to size buffers or pick a tile grid without loading the tensor.
pub fn read_bin_header_file<P: AsRef<Path>>(path: P) -> Result<BinHeader, BinError> {
    read_header(&mut BufReader::new(std::fs::File::open(path)?))
}

/// A tensor type that can live in the `.tnsb` container. Implementations
/// define the payload; the header and the stream/file plumbing are shared.
pub trait BinCodec: Sized {
    /// Writes the header and payload.
    fn encode<W: Write>(&self, writer: W) -> std::io::Result<()>;
    /// Reads the header and payload, failing typed on anything malformed.
    fn decode<R: Read>(reader: R) -> Result<Self, BinError>;
}

impl BinCodec for NdCooTensor {
    fn encode<W: Write>(&self, writer: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(writer);
        write_header(
            &mut w,
            &BinHeader {
                version: VERSION_COO,
                dims: self.dims().to_vec(),
                nnz: self.nnz() as u64,
            },
        )?;
        for n in 0..self.nnz() {
            for &c in self.coord(n) {
                write_u32(&mut w, c)?;
            }
        }
        for &v in self.values() {
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()
    }

    fn decode<R: Read>(reader: R) -> Result<Self, BinError> {
        let mut r = BufReader::new(reader);
        let h = read_header(&mut r)?;
        if h.version != VERSION_COO {
            return Err(BinError::Format(format!(
                "unsupported version {}",
                h.version
            )));
        }
        let (order, nnz) = (h.dims.len(), h.nnz as usize);
        // The header is untrusted: a wrapped nnz·order would make the
        // coordinate count disagree with the value count silently.
        let n_coords = nnz.checked_mul(order).ok_or_else(|| {
            BinError::Format(format!(
                "header claims {nnz} entries x {order} modes, which overflows"
            ))
        })?;
        let mut coords = Vec::with_capacity(n_coords);
        for _ in 0..n_coords {
            coords.push(read_u32(&mut r)?);
        }
        let mut vals = Vec::with_capacity(nnz);
        let mut b = [0u8; 8];
        for _ in 0..nnz {
            r.read_exact(&mut b)?;
            vals.push(f64::from_le_bytes(b));
        }
        NdCooTensor::try_from_flat(h.dims, coords, vals)
            .map_err(|e| BinError::Format(e.to_string()))
    }
}

impl BinCodec for CooTensor {
    fn encode<W: Write>(&self, writer: W) -> std::io::Result<()> {
        NdCooTensor::from_coo3(self).encode(writer)
    }

    fn decode<R: Read>(reader: R) -> Result<Self, BinError> {
        let nd = NdCooTensor::decode(reader)?;
        let dims: [usize; NMODES] = nd.dims().try_into().map_err(|_| {
            BinError::Format(format!(
                "expected a 3-mode tensor, file has order {}",
                nd.order()
            ))
        })?;
        let entries = (0..nd.nnz())
            .map(|n| {
                let c = nd.coord(n);
                // coord slices have len == order == 3, established above — lint: allow(panic-reach)
                Entry::new(c[0], c[1], c[2], nd.value(n))
            })
            .collect();
        // A file value can be NaN/infinite; that must surface as a typed
        // error, not the panicking constructor.
        CooTensor::try_from_entries(dims, entries).map_err(|e| BinError::Format(e.to_string()))
    }
}

/// Writes any [`BinCodec`] tensor to a file path, atomically: bytes go
/// to a same-directory temp file that a post-`sync_all` rename
/// publishes, so a crash mid-write never leaves a partial `.tnsb` under
/// the final name.
pub fn write_file<T: BinCodec, P: AsRef<Path>>(t: &T, path: P) -> std::io::Result<()> {
    let mut out = crate::persist::AtomicFile::create(path, tenblock_faults::FaultPolicy::none())?;
    t.encode(&mut out)?;
    out.commit()
}

/// Reads any [`BinCodec`] tensor from a file path.
pub fn read_file<T: BinCodec, P: AsRef<Path>>(path: P) -> Result<T, BinError> {
    T::decode(std::fs::File::open(path)?)
}

/// Writes an N-mode tensor in the binary format.
pub fn write_bin_nd<W: Write>(t: &NdCooTensor, writer: W) -> std::io::Result<()> {
    t.encode(writer)
}

/// Reads an N-mode tensor from the binary format.
pub fn read_bin_nd<R: Read>(reader: R) -> Result<NdCooTensor, BinError> {
    NdCooTensor::decode(reader)
}

/// Writes a 3-mode tensor in the binary format.
pub fn write_bin<W: Write>(t: &CooTensor, writer: W) -> std::io::Result<()> {
    t.encode(writer)
}

/// Reads a 3-mode tensor from the binary format.
///
/// Fails if the file's order is not 3.
pub fn read_bin<R: Read>(reader: R) -> Result<CooTensor, BinError> {
    CooTensor::decode(reader)
}

/// Writes a 3-mode binary tensor file.
pub fn write_bin_file<P: AsRef<Path>>(t: &CooTensor, path: P) -> std::io::Result<()> {
    write_file(t, path)
}

/// Reads a 3-mode binary tensor file.
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<CooTensor, BinError> {
    read_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_tensor;
    use crate::nd::uniform_nd;

    #[test]
    fn roundtrip_3mode() {
        let t = uniform_tensor([20, 30, 40], 500, 7);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.entries(), t.entries());
    }

    #[test]
    fn roundtrip_nd() {
        let t = uniform_nd(&[5, 6, 7, 8, 9], 300, 3);
        let mut buf = Vec::new();
        write_bin_nd(&t, &mut buf).unwrap();
        let back = read_bin_nd(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_bin(b"NOPE".as_slice()),
            Err(BinError::Format(_)) | Err(BinError::Io(_))
        ));
        let mut buf = Vec::new();
        write_bin(&uniform_tensor([4, 4, 4], 10, 1), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(matches!(read_bin(buf.as_slice()), Err(BinError::Format(_))));
        // truncated payload
        let mut buf2 = Vec::new();
        write_bin(&uniform_tensor([4, 4, 4], 10, 1), &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 4);
        assert!(read_bin(buf2.as_slice()).is_err());
    }

    #[test]
    fn order_mismatch_is_reported() {
        let t = uniform_nd(&[4, 4], 8, 2);
        let mut buf = Vec::new();
        write_bin_nd(&t, &mut buf).unwrap();
        assert!(matches!(read_bin(buf.as_slice()), Err(BinError::Format(_))));
        // but the nd reader accepts it
        assert_eq!(read_bin_nd(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn file_roundtrip_and_size() {
        let t = uniform_tensor([50, 50, 50], 1_000, 9);
        let dir = std::env::temp_dir().join("tenblock_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tnsb");
        write_bin_file(&t, &path).unwrap();
        let back = read_bin_file(&path).unwrap();
        assert_eq!(back.entries(), t.entries());
        let size = std::fs::metadata(&path).unwrap().len() as usize;
        // header + 12 bytes coords + 8 bytes value per entry
        assert_eq!(size, 4 + 4 + 4 + 3 * 8 + 8 + 1_000 * (12 + 8));
    }

    #[test]
    fn header_roundtrip_and_peek() {
        let h = BinHeader {
            version: VERSION_TILES,
            dims: vec![100, 20, 3],
            nnz: 77,
        };
        let mut buf = Vec::new();
        write_header(&mut buf, &h).unwrap();
        assert_eq!(buf.len(), h.encoded_len());
        let back = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(back, h);

        // File peek sees the header of a v1 file without reading the body.
        let t = uniform_tensor([9, 8, 7], 40, 5);
        let dir = std::env::temp_dir().join("tenblock_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peek.tnsb");
        write_bin_file(&t, &path).unwrap();
        let peek = read_bin_header_file(&path).unwrap();
        assert_eq!(peek.version, VERSION_COO);
        assert_eq!(peek.dims, vec![9, 8, 7]);
        assert_eq!(peek.nnz, t.nnz() as u64);
    }

    #[test]
    fn header_rejects_overflowing_nnz() {
        let mut buf = Vec::new();
        write_header(
            &mut buf,
            &BinHeader {
                version: VERSION_COO,
                dims: vec![2, 2, 2],
                nnz: 9,
            },
        )
        .unwrap();
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(BinError::Format(_))
        ));
    }
}
