//! BCOO: block-native coordinate storage — the data-layout form of MB.
//!
//! Where the MB kernel re-partitions *iteration order* over compressed
//! blocks, BCOO changes the bytes on disk: the tensor is a sorted table of
//! nonempty `N_A x N_B x N_C` block coordinates, each owning a contiguous
//! mini-tensor of block-local offsets (one or two bytes per coordinate,
//! with a four-byte escape for giant blocks) plus a dense value slab. The
//! inner loop of a kernel over this layout reads `(local_a, local_j,
//! local_k, val)` straight from the slab — no global index decode, no
//! per-nonzero binary search — and the block table carries the global
//! origin needed to place results.
//!
//! Within a block, entries are sorted by `(local_a, local_k, local_j)`
//! (the same key the MB grid uses), so consecutive entries sharing
//! `(a, k)` form an implicit fiber run: a register-blocked micro-kernel
//! can accumulate a whole run into one register strip before touching the
//! output row, exactly as the SPLATT fiber loop does.
//!
//! The conversion COO → BCOO → COO is lossless: each block records the
//! global index of its first row per axis (`origin`) at construction, and
//! decode is `origin + local`. The origin is deliberately stored
//! *separately* from the grid bounds — a corrupted boundary moves the
//! claims derived from `bounds`, not the rows the data actually touches,
//! which is what lets checked execution catch a drifted boundary.

use crate::coo::{perm_for_mode, CooTensor};
use crate::{Entry, Idx, NMODES};
use std::ops::Range;

/// Uniform boundaries splitting `dim` indices into `n` blocks:
/// block `t` covers `[t*dim/n, (t+1)*dim/n)` (the MB grid convention).
/// Shared by the MB/BCOO layouts and the out-of-core tile store, which
/// must agree on cell extents for streamed results to match in-memory
/// kernels bit-for-bit.
pub fn uniform_bounds(dim: usize, n: usize) -> Vec<usize> {
    // t ≤ n ≤ dim and dim is an in-memory mode length; t·dim fits usize — lint: allow(index-overflow)
    (0..=n).map(|t| t * dim / n).collect()
}

/// The block that contains index `idx` under `bounds`.
#[inline]
fn find_block(bounds: &[usize], idx: usize) -> usize {
    debug_assert!(bounds.last().is_some_and(|&end| idx < end));
    bounds.partition_point(|&b| b <= idx) - 1
}

/// One nonempty block's table entry: where the block sits in the grid and
/// where its rows start in the global index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcooBlock {
    /// Grid coordinates along the kernel axes `[slice, j, k]`.
    pub coords: [u32; NMODES],
    /// Global index of the block's first row along each kernel axis,
    /// recorded at construction. Decoding an entry never consults the
    /// bounds arithmetic — `global = origin + local` — so the stored data
    /// stays truthful even if the bounds are later corrupted.
    pub origin: [Idx; NMODES],
}

/// Storage width of the block-local offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetWidth {
    /// Every block side is at most 256 indices: one byte per coordinate.
    U8,
    /// Every block side is at most 65536 indices: two bytes per coordinate.
    U16,
    /// Escape hatch for giant blocks (a barely-blocked huge mode).
    U32,
}

/// Owned local-offset slab at the selected width. Offsets are interleaved
/// `[local_a, local_j, local_k]` per entry, in kernel-axis order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Offsets {
    U8(Vec<[u8; NMODES]>),
    U16(Vec<[u16; NMODES]>),
    U32(Vec<[u32; NMODES]>),
}

/// Borrowed view of the local-offset slab at its stored width. Kernels
/// match once per call and run a monomorphized inner loop per width.
#[derive(Debug, Clone, Copy)]
pub enum BcooOffsets<'a> {
    /// One-byte offsets.
    U8(&'a [[u8; NMODES]]),
    /// Two-byte offsets.
    U16(&'a [[u16; NMODES]]),
    /// Four-byte offsets.
    U32(&'a [[u32; NMODES]]),
}

/// A sparse tensor stored as a table of nonempty blocks, each owning a
/// contiguous mini-tensor of local offsets and values (see the module
/// docs). Constructed once per `(tensor, mode, grid)` from COO; the block
/// table is sorted slice-axis-major so a kernel can hand whole block rows
/// to parallel workers.
#[derive(Debug, Clone, PartialEq)]
pub struct BcooTensor {
    dims: [usize; NMODES],
    perm: [usize; NMODES],
    grid: [usize; NMODES],
    bounds: [Vec<usize>; NMODES],
    /// Nonempty blocks, sorted by linear block id (slice-axis major).
    blocks: Vec<BcooBlock>,
    /// Entry ranges per block: block `i` owns `ptr[i]..ptr[i+1]`.
    ptr: Vec<usize>,
    /// Block-table ranges per slice-axis row: row `a`'s blocks are
    /// `row_ptr[a]..row_ptr[a+1]`.
    row_ptr: Vec<usize>,
    offsets: Offsets,
    vals: Vec<f64>,
    /// Implicit `(local_a, local_k)` fiber runs, summed over blocks — the
    /// `F` of the paper's Equation 1 as this layout traverses it.
    fibers: usize,
}

impl BcooTensor {
    /// Partitions `coo` for the mode-`mode` MTTKRP into `grid` blocks per
    /// kernel axis and packs each nonempty block into local-offset form.
    ///
    /// # Panics
    /// Panics if any grid count is zero or exceeds the axis length (when
    /// the axis is non-empty) — the same precondition as `BlockGrid::new`.
    pub fn from_coo(coo: &CooTensor, mode: usize, grid: [usize; NMODES]) -> Self {
        let perm = perm_for_mode(mode);
        let dims = coo.dims();
        for ax in 0..NMODES {
            assert!(grid[ax] > 0, "grid counts must be positive");
            assert!(
                grid[ax] <= dims[perm[ax]].max(1),
                "grid count {} exceeds axis length {}",
                grid[ax],
                dims[perm[ax]]
            );
        }
        let bounds = [
            uniform_bounds(dims[perm[0]], grid[0]),
            uniform_bounds(dims[perm[1]], grid[1]),
            uniform_bounds(dims[perm[2]], grid[2]),
        ];

        // Bucket entries by linear block id, then sort so blocks are
        // contiguous and each block's entries run (a, k, j) — the fiber
        // order the micro-kernel consumes.
        let (nb, nc) = (grid[1], grid[2]);
        // The linear cell id must be wide enough for na·nb·nc cells. A u32
        // tag silently truncated ids on grids with ≥ 2^32 cells, scattering
        // entries into the wrong blocks; the tag is u64 with the cell count
        // checked up front so the arithmetic below cannot wrap.
        assert!(
            (grid[0] as u64)
                .checked_mul(nb as u64)
                .and_then(|x| x.checked_mul(nc as u64))
                .is_some(),
            "block grid {}x{}x{} has more than u64::MAX cells",
            grid[0],
            nb,
            nc
        );
        let mut tagged: Vec<(u64, Entry)> = coo
            .entries()
            .iter()
            .map(|e| {
                let a = find_block(&bounds[0], e.idx[perm[0]] as usize) as u64;
                let b = find_block(&bounds[1], e.idx[perm[1]] as usize) as u64;
                let c = find_block(&bounds[2], e.idx[perm[2]] as usize) as u64;
                // bounded by the checked cell count above — lint: allow(index-overflow)
                ((a * nb as u64 + b) * nc as u64 + c, *e)
            })
            .collect();
        tagged
            .sort_unstable_by_key(|&(id, e)| (id, e.idx[perm[0]], e.idx[perm[2]], e.idx[perm[1]]));

        let max_side = (0..NMODES)
            .map(|ax| {
                bounds[ax]
                    .windows(2)
                    .map(|w| w[1] - w[0])
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);

        let mut blocks = Vec::new();
        let mut ptr = vec![0usize];
        let mut locals: Vec<[u32; NMODES]> = Vec::with_capacity(tagged.len());
        let mut vals = Vec::with_capacity(tagged.len());
        let mut fibers = 0usize;
        let mut pos = 0;
        while pos < tagged.len() {
            let id = tagged[pos].0;
            let c = (id % nc as u64) as u32;
            let b = ((id / nc as u64) % nb as u64) as u32;
            // nb·nc ≤ the checked cell count — lint: allow(index-overflow)
            let a = (id / (nb as u64 * nc as u64)) as u32;
            let origin = [
                bounds[0][a as usize] as Idx,
                bounds[1][b as usize] as Idx,
                bounds[2][c as usize] as Idx,
            ];
            let mut prev_fiber = None;
            while pos < tagged.len() && tagged[pos].0 == id {
                let e = tagged[pos].1;
                let la = e.idx[perm[0]] - origin[0];
                let lj = e.idx[perm[1]] - origin[1];
                let lk = e.idx[perm[2]] - origin[2];
                locals.push([la, lj, lk]);
                vals.push(e.val);
                if prev_fiber != Some((la, lk)) {
                    fibers += 1;
                    prev_fiber = Some((la, lk));
                }
                pos += 1;
            }
            blocks.push(BcooBlock {
                coords: [a, b, c],
                origin,
            });
            ptr.push(locals.len());
        }

        let offsets = if max_side <= 1 << 8 {
            Offsets::U8(locals.iter().map(|l| l.map(|x| x as u8)).collect())
        } else if max_side <= 1 << 16 {
            Offsets::U16(locals.iter().map(|l| l.map(|x| x as u16)).collect())
        } else {
            Offsets::U32(locals)
        };

        let mut row_ptr = vec![0usize; grid[0] + 1];
        for blk in &blocks {
            row_ptr[blk.coords[0] as usize + 1] += 1;
        }
        for a in 0..grid[0] {
            row_ptr[a + 1] += row_ptr[a];
        }

        BcooTensor {
            dims,
            perm,
            grid,
            bounds,
            blocks,
            ptr,
            row_ptr,
            offsets,
            vals,
            fibers,
        }
    }

    /// Global tensor dimensions (original mode order).
    pub fn dims(&self) -> [usize; NMODES] {
        self.dims
    }

    /// The kernel orientation this layout was built for.
    pub fn perm(&self) -> [usize; NMODES] {
        self.perm
    }

    /// Block counts per kernel axis.
    pub fn grid(&self) -> [usize; NMODES] {
        self.grid
    }

    /// Total nonzeros across all blocks.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Block boundaries along kernel axis `ax` (length `grid[ax] + 1`).
    pub fn bounds(&self, ax: usize) -> &[usize] {
        &self.bounds[ax]
    }

    /// Number of nonempty blocks in the table.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The `i`-th nonempty block's table entry.
    pub fn block(&self, i: usize) -> BcooBlock {
        self.blocks[i]
    }

    /// Entry range of block `i` in the offset/value slabs.
    pub fn block_range(&self, i: usize) -> Range<usize> {
        self.ptr[i]..self.ptr[i + 1]
    }

    /// Block-table index range of slice-axis row `a` (the blocks are
    /// slice-axis major, so each row's blocks are contiguous).
    pub fn row_blocks(&self, a: usize) -> Range<usize> {
        self.row_ptr[a]..self.row_ptr[a + 1]
    }

    /// Length of block `i` along kernel axis `ax`, from the bounds.
    pub fn block_span(&self, i: usize, ax: usize) -> usize {
        let c = self.blocks[i].coords[ax] as usize;
        self.bounds[ax][c + 1] - self.bounds[ax][c]
    }

    /// The local-offset slab at its stored width.
    pub fn offsets(&self) -> BcooOffsets<'_> {
        match &self.offsets {
            Offsets::U8(o) => BcooOffsets::U8(o),
            Offsets::U16(o) => BcooOffsets::U16(o),
            Offsets::U32(o) => BcooOffsets::U32(o),
        }
    }

    /// Selected offset width.
    pub fn offset_width(&self) -> OffsetWidth {
        match self.offsets {
            Offsets::U8(_) => OffsetWidth::U8,
            Offsets::U16(_) => OffsetWidth::U16,
            Offsets::U32(_) => OffsetWidth::U32,
        }
    }

    /// Bytes per coordinate of the stored offsets (1, 2, or 4).
    pub fn offset_bytes(&self) -> usize {
        match self.offsets {
            Offsets::U8(_) => 1,
            Offsets::U16(_) => 2,
            Offsets::U32(_) => 4,
        }
    }

    /// The value slab (all blocks, contiguous).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Implicit `(a, k)` fiber runs summed over blocks — the `F` this
    /// layout's traversal sees (for the Section IV counter model).
    pub fn n_fibers(&self) -> usize {
        self.fibers
    }

    /// Global slice-axis rows touched by block `i` (decoded from stored
    /// origins + offsets, deduplicated). This is the ground truth checked
    /// execution compares against the bounds-derived claims.
    pub fn block_slice_rows(&self, i: usize) -> Vec<usize> {
        let base = self.blocks[i].origin[0] as usize;
        let range = self.block_range(i);
        let mut rows: Vec<usize> = match &self.offsets {
            Offsets::U8(o) => o[range].iter().map(|l| base + l[0] as usize).collect(),
            Offsets::U16(o) => o[range].iter().map(|l| base + l[0] as usize).collect(),
            Offsets::U32(o) => o[range].iter().map(|l| base + l[0] as usize).collect(),
        };
        rows.dedup(); // entries are sorted by local_a within a block
        rows
    }

    /// Global kernel-axis coordinates of every entry in block `i`
    /// (decoded; for the grid-blocks oracle).
    pub fn block_kernel_coords(&self, i: usize) -> Vec<[usize; NMODES]> {
        let origin = self.blocks[i].origin.map(|o| o as usize);
        let range = self.block_range(i);
        let decode = |l: [usize; NMODES]| [origin[0] + l[0], origin[1] + l[1], origin[2] + l[2]];
        match &self.offsets {
            Offsets::U8(o) => o[range]
                .iter()
                .map(|l| decode(l.map(|x| x as usize)))
                .collect(),
            Offsets::U16(o) => o[range]
                .iter()
                .map(|l| decode(l.map(|x| x as usize)))
                .collect(),
            Offsets::U32(o) => o[range]
                .iter()
                .map(|l| decode(l.map(|x| x as usize)))
                .collect(),
        }
    }

    /// Decodes the whole tensor back to COO entries in original mode
    /// order. Lossless: `CooTensor::from_entries(dims, entries)` rebuilds
    /// the source tensor exactly.
    pub fn to_entries(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.n_blocks() {
            let origin = self.blocks[i].origin;
            let range = self.block_range(i);
            let mut push = |l: [u32; NMODES], val: f64| {
                let mut idx = [0 as Idx; NMODES];
                for ax in 0..NMODES {
                    idx[self.perm[ax]] = origin[ax] + l[ax];
                }
                out.push(Entry { idx, val });
            };
            match &self.offsets {
                Offsets::U8(o) => {
                    for (l, &v) in o[range.clone()].iter().zip(&self.vals[range.clone()]) {
                        push(l.map(|x| x as u32), v);
                    }
                }
                Offsets::U16(o) => {
                    for (l, &v) in o[range.clone()].iter().zip(&self.vals[range.clone()]) {
                        push(l.map(|x| x as u32), v);
                    }
                }
                Offsets::U32(o) => {
                    for (l, &v) in o[range.clone()].iter().zip(&self.vals[range.clone()]) {
                        push(*l, v);
                    }
                }
            }
        }
        out
    }

    /// Round-trips back to a [`CooTensor`].
    pub fn to_coo(&self) -> CooTensor {
        CooTensor::from_entries(self.dims, self.to_entries())
    }

    /// Bytes this representation actually occupies: block table + entry
    /// pointers + offset slab + value slab. For comparison, COO is 20
    /// bytes per nonzero; a u8 BCOO is 11 plus the (small) table.
    pub fn actual_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<BcooBlock>()
            + (self.ptr.len() + self.row_ptr.len()) * std::mem::size_of::<usize>()
            + self
                .bounds
                .iter()
                .map(|b| b.len() * std::mem::size_of::<usize>())
                .sum::<usize>()
            + self.vals.len() * (NMODES * self.offset_bytes() + std::mem::size_of::<f64>())
    }

    /// Test hook: shifts boundary `idx` of axis `ax` by `delta` *without*
    /// re-bucketing entries or updating block origins, simulating a
    /// corrupted plan. Checked execution must catch the resulting
    /// claim/touch mismatch.
    pub fn shift_bound_for_test(&mut self, ax: usize, idx: usize, delta: isize) {
        let b = &mut self.bounds[ax][idx];
        *b = b.wrapping_add_signed(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_tensor;

    #[test]
    fn bcoo_round_trips_across_modes_and_grids() {
        let x = uniform_tensor([13, 17, 11], 300, 5);
        for mode in 0..NMODES {
            for grid in [[1, 1, 1], [3, 2, 2], [4, 4, 4], [13, 1, 1]] {
                let perm = perm_for_mode(mode);
                let g = [
                    grid[0].min(x.dims()[perm[0]]),
                    grid[1].min(x.dims()[perm[1]]),
                    grid[2].min(x.dims()[perm[2]]),
                ];
                let t = BcooTensor::from_coo(&x, mode, g);
                assert_eq!(t.nnz(), x.nnz());
                assert_eq!(t.to_coo(), x, "mode {mode} grid {g:?}");
            }
        }
    }

    #[test]
    fn bcoo_survives_grids_with_more_than_u32_cells() {
        // 2048^3 = 2^33 cells: with the old u32 tag, block (1024, 0, 0)
        // (linear id 1024 * 2048 * 2048 = 2^32) aliased block (0, 0, 0),
        // so both entries landed in one block — and the second entry's
        // local offset (1024) wrapped the narrow offset encoding, silently
        // corrupting its coordinates. The bounds arrays stay tiny (3 ×
        // 2049 usize), so the adversarial grid is cheap to test.
        let dims = [2048, 2048, 2048];
        let x = CooTensor::from_entries(
            dims,
            vec![Entry::new(0, 0, 0, 1.0), Entry::new(1024, 0, 0, 2.0)],
        );
        let t = BcooTensor::from_coo(&x, 0, [2048, 2048, 2048]);
        assert_eq!(t.n_blocks(), 2, "distinct cells must stay distinct");
        assert_eq!(t.to_coo(), x);
    }

    #[test]
    fn bcoo_empty_and_zero_dim_tensors() {
        let e = CooTensor::empty([4, 5, 6]);
        let t = BcooTensor::from_coo(&e, 1, [2, 2, 2]);
        assert_eq!(t.n_blocks(), 0);
        assert_eq!(t.to_coo(), e);

        let z = CooTensor::empty([0, 3, 0]);
        let t = BcooTensor::from_coo(&z, 0, [1, 1, 1]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.to_coo(), z);
    }

    #[test]
    fn bcoo_offset_width_tracks_largest_block_side() {
        let small = uniform_tensor([64, 64, 64], 200, 1);
        assert_eq!(
            BcooTensor::from_coo(&small, 0, [1, 1, 1]).offset_width(),
            OffsetWidth::U8
        );
        // One 300-long side forces two-byte offsets; splitting it back
        // under 256 restores one-byte storage.
        let long = uniform_tensor([300, 8, 8], 200, 2);
        let wide = BcooTensor::from_coo(&long, 0, [1, 1, 1]);
        assert_eq!(wide.offset_width(), OffsetWidth::U16);
        assert_eq!(wide.to_coo(), long);
        let split = BcooTensor::from_coo(&long, 0, [2, 1, 1]);
        assert_eq!(split.offset_width(), OffsetWidth::U8);
        assert_eq!(split.to_coo(), long);
        assert!(split.actual_bytes() < wide.actual_bytes());
    }

    #[test]
    fn bcoo_block_table_is_slice_axis_major_and_rows_partition_it() {
        let x = uniform_tensor([20, 15, 10], 400, 9);
        let t = BcooTensor::from_coo(&x, 0, [4, 3, 2]);
        let mut seen = 0;
        for a in 0..4 {
            for i in t.row_blocks(a) {
                assert_eq!(t.block(i).coords[0] as usize, a);
                assert_eq!(i, seen);
                seen += 1;
            }
        }
        assert_eq!(seen, t.n_blocks());
        // Entry ranges partition the slabs and every block is nonempty.
        let total: usize = (0..t.n_blocks()).map(|i| t.block_range(i).len()).sum();
        assert_eq!(total, t.nnz());
        assert!((0..t.n_blocks()).all(|i| !t.block_range(i).is_empty()));
    }

    #[test]
    fn bcoo_block_slice_rows_match_decoded_entries() {
        let x = uniform_tensor([12, 9, 9], 250, 3);
        let t = BcooTensor::from_coo(&x, 0, [3, 2, 2]);
        for i in 0..t.n_blocks() {
            let rows = t.block_slice_rows(i);
            let mut expect: Vec<usize> = t.block_kernel_coords(i).iter().map(|c| c[0]).collect();
            expect.dedup();
            assert_eq!(rows, expect);
            // Healthy bounds contain every touched row.
            let (lo, hi) = {
                let c = t.block(i).coords[0] as usize;
                (t.bounds(0)[c], t.bounds(0)[c + 1])
            };
            assert!(rows.iter().all(|&r| lo <= r && r < hi));
        }
    }

    #[test]
    fn bcoo_shift_bound_moves_claims_not_data() {
        let x = uniform_tensor([12, 8, 8], 300, 7);
        let mut t = BcooTensor::from_coo(&x, 0, [3, 2, 2]);
        let before = t.to_coo();
        t.shift_bound_for_test(0, 1, 1);
        // Decode is origin-based, so the data is untouched...
        assert_eq!(t.to_coo(), before);
        // ...but the claim boundary moved.
        assert_eq!(t.bounds(0)[1], uniform_bounds(12, 3)[1] + 1);
    }

    #[test]
    fn bcoo_fiber_count_matches_splatt_fibers_when_unblocked() {
        let x = uniform_tensor([10, 10, 10], 150, 11);
        let t = BcooTensor::from_coo(&x, 0, [1, 1, 1]);
        assert_eq!(t.n_fibers(), x.count_fibers(perm_for_mode(0)));
    }
}
